//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched, iter_batched_ref}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros —
//! measured with plain wall-clock timing:
//!
//! 1. warm up for `warm_up_time`,
//! 2. pick an iteration count so one sample spans roughly
//!    `measurement_time / sample_size`,
//! 3. collect `sample_size` samples and report min / mean / max
//!    per-iteration time.
//!
//! No statistics engine, plots, or saved baselines — the output format
//! (`name  time: [low mean high]`) matches criterion closely enough
//! for eyeballs and scripts that grep the mean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use core::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Parses command-line arguments. The real crate supports filters
    /// and baselines; offline this only swallows cargo-bench's
    /// `--bench` flag so `cargo bench` works unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if !selected(&id) {
            return self;
        }
        let mut bencher = Bencher {
            config: self.clone(),
            report: None,
        };
        f(&mut bencher);
        if let Some(report) = bencher.report {
            println!("{}", report.render(&id));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// Returns true when `id` passes the (optional) substring filter given
/// on the command line, as `cargo bench <filter>` does.
fn selected(id: &str) -> bool {
    let mut saw_flag = false;
    for arg in std::env::args().skip(1) {
        if arg == "--bench" || arg.starts_with('-') {
            saw_flag = true;
            continue;
        }
        let _ = saw_flag;
        return id.contains(&arg);
    }
    true
}

/// A named collection of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs one benchmark within the group (`group/name` id).
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config = config.sample_size(n);
        }
        if let Some(t) = self.measurement_time {
            config = config.measurement_time(t);
        }
        let full = format!("{}/{}", self.name, id.into());
        config.bench_function(full, f);
        self
    }

    /// Finishes the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost. Offline, only the
/// batch-size heuristic differs; all variants time the routine alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: one setup per few iterations.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

struct Report {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Report {
    fn render(&self, id: &str) -> String {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted.first().copied().unwrap_or(0.0);
        let max = sorted.last().copied().unwrap_or(0.0);
        let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
        format!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures; handed to each benchmark function.
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate the per-iteration cost.
        let warm_until = Instant::now() + self.config.warm_up_time.min(Duration::from_secs(1));
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warm_until || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let samples = self.config.sample_size;
        let budget_ns = self.config.measurement_time.as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((budget_ns / est_ns).round() as u64).clamp(1, 10_000_000);

        let mut report = Report {
            samples: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            report.samples.push(elapsed / iters_per_sample as f64);
        }
        self.report = Some(report);
    }

    /// Times `routine` over owned inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let samples = self.config.sample_size;
        let mut report = Report {
            samples: Vec::with_capacity(samples),
        };
        // One setup + timed call per sample: simple and predictable.
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            report.samples.push(start.elapsed().as_nanos() as f64);
        }
        self.report = Some(report);
    }

    /// Times `routine` over mutable references to inputs built by
    /// `setup`; setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let samples = self.config.sample_size;
        let mut report = Report {
            samples: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            report.samples.push(start.elapsed().as_nanos() as f64);
        }
        self.report = Some(report);
    }
}

/// An owned benchmark id (`BenchmarkId::new("group", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.0
    }
}

/// Declares a group of benchmark functions, with optional config:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_report() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut hits = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0, "routine must have run");
    }

    #[test]
    fn iter_batched_ref_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut setups = 0u64;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched_ref(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.pop(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
