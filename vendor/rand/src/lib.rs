//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the small slice of `rand` 0.9's API it actually uses:
//!
//! * [`rngs::SmallRng`] / [`rngs::StdRng`] — xoshiro256++ seeded via
//!   SplitMix64 (the same generator family `rand` 0.9 uses for
//!   `SmallRng` on 64-bit targets),
//! * [`Rng::random`] and [`Rng::random_range`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates),
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//!
//! Everything is deterministic per seed, which is all the simulator
//! needs: traces are reproducible, not cryptographic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A source of random `u64`s plus the typed convenience methods the
/// workspace uses. Implemented by every RNG in [`rngs`].
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of a primitive type.
    /// `f64`/`f32` are uniform in `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Draws a value uniformly from `range` (half-open). Unbiased via
    /// rejection sampling on the widening-multiply method.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(range, &mut || self.next_u64())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::random`] can produce from 64 raw bits.
pub trait Standard {
    /// Converts 64 uniform bits into a uniform value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 56) as u8
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

/// Integer types [`Rng::random_range`] can sample.
pub trait UniformInt: Sized {
    /// Samples uniformly from the half-open range using the provided
    /// 64-bit source.
    fn sample_range(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Widening multiply with rejection of the biased zone.
                let zone = span.wrapping_neg() % span;
                loop {
                    let raw = next();
                    let wide = (raw as u128) * (span as u128);
                    if (wide as u64) >= zone {
                        return range.start + ((wide >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }

    /// The "standard" RNG. The real crate uses ChaCha12; offline we
    /// only promise determinism, not crypto, so this is the same
    /// xoshiro generator under a different seed schedule.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(SmallRng);

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(SmallRng::from_seed(seed))
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing `shuffle` on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates, unbiased).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Convenience: a generator seeded from entropy. Offline builds have
/// no OS entropy guarantee, so this seeds from the system clock —
/// callers that need reproducibility use [`SeedableRng`] anyway.
pub fn rng() -> rngs::SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_is_unbiased_and_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            let v = rng.random_range(10u64..15);
            assert!((10..15).contains(&v));
            counts[(v - 10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }
}
