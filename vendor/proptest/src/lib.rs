//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: value
//! strategies ([`any`], integer ranges, tuples, [`collection::vec`],
//! [`Strategy::prop_map`], [`prop_oneof!`]), the [`proptest!`] macro,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the panic
//!   message includes the case's seed so it can be replayed with
//!   `PROPTEST_SEED=<seed>`.
//! * Case count comes from [`test_runner::ProptestConfig::with_cases`]
//!   or the `PROPTEST_CASES` environment variable (default 256).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG driving a test case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for one case from its seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.random_range(0..bound)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with a
    /// common value type can be mixed (see [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among type-erased strategies ([`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs, and the base seed.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed; each case perturbs it deterministically.
        pub seed: u64,
    }

    impl ProptestConfig {
        /// The default configuration with a different case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE);
            ProptestConfig { cases, seed }
        }
    }
}

/// Runs one property over `config.cases` generated cases. Used by the
/// [`proptest!`] macro; not part of the public `proptest` API.
pub fn run_property<S, F>(name: &str, config: test_runner::ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value),
{
    for case in 0..config.cases {
        // Derive a per-case seed; replayable via PROPTEST_SEED with
        // PROPTEST_CASES=1 after a failure report.
        let case_seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1));
        let mut rng = TestRng::from_seed(case_seed);
        let value = strategy.generate(&mut rng);
        let debugged = format!("{value:#?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(panic) = result {
            eprintln!(
                "proptest: property `{name}` failed at case {case}/{} \
                 (replay with PROPTEST_SEED={case_seed} PROPTEST_CASES=1)\n\
                 input: {debugged}",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, collection, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly chooses among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Supports the subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in other) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                stringify!($name),
                $config,
                ($($strategy,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B(u16),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vecs_respect_length(v in prop::collection::vec(any::<u8>(), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }

        #[test]
        fn oneof_and_map_mix(ops in prop::collection::vec(prop_oneof![
            any::<u8>().prop_map(Op::A),
            any::<u16>().prop_map(Op::B),
        ], 1..30)) {
            prop_assert!(ops.iter().all(|op| matches!(op, Op::A(_) | Op::B(_))));
        }
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        use crate::{Strategy, TestRng};
        let strat = crate::collection::vec(crate::any::<u16>(), 1..10);
        let a = strat.generate(&mut TestRng::from_seed(1));
        let b = strat.generate(&mut TestRng::from_seed(1));
        assert_eq!(a, b);
    }
}
