//! Library-level differential-fuzz smoke tests: a handful of seeds
//! through the full oracle grid must come back clean, and a seed's
//! outcome must be bit-identical no matter how many worker threads the
//! fan-out uses (the `ZSSD_THREADS=1` vs parallel guarantee `zssd
//! fuzz` inherits from `zssd_bench::run_jobs`).

use zombie_ssd::oracle::{fuzz_seed, standard_grid, SeedOutcome};
use zssd_bench::run_jobs_with_threads;

const SEEDS: usize = 4;
const BUDGET: usize = 600;
const CHECK_EVERY: usize = 16;

fn fan_out(threads: usize) -> Vec<SeedOutcome> {
    run_jobs_with_threads(SEEDS, threads, |i| {
        fuzz_seed(0xF00D + i as u64, BUDGET, CHECK_EVERY)
    })
}

#[test]
fn fuzz_grid_is_clean_and_thread_count_invariant() {
    let serial = fan_out(1);
    let parallel = fan_out(4);
    assert_eq!(
        serial, parallel,
        "seed outcomes must be bit-identical across thread counts"
    );
    let cells = standard_grid(0xF00D).len();
    for outcome in &serial {
        assert!(
            outcome.ok(),
            "seed {:#x} diverged: {:?}",
            outcome.seed,
            outcome.failures
        );
        assert_eq!(outcome.commands, BUDGET as u64);
        assert_eq!(outcome.cells.len(), cells, "every grid cell reports");
        // The adversarial generator must actually exercise the
        // mechanisms under test somewhere in the grid.
        let total = |f: fn(&zombie_ssd::oracle::DiffSummary) -> u64| -> u64 {
            outcome.cells.iter().map(|(_, s)| f(s)).sum()
        };
        assert!(total(|s| s.reads_checked) > 0, "reads are being checked");
        assert!(total(|s| s.invariant_checks) > 0, "invariants are swept");
        assert!(total(|s| s.revived_writes) > 0, "revival fires in the grid");
        assert!(total(|s| s.deduped_writes) > 0, "dedup fires in the grid");
        assert!(total(|s| s.trims) > 0, "trims fire in the grid");
    }
}

#[test]
fn fuzz_seed_is_a_pure_function_of_its_inputs() {
    let a = fuzz_seed(0xD15C, 300, 0);
    let b = fuzz_seed(0xD15C, 300, 0);
    assert_eq!(a, b);
    let c = fuzz_seed(0xD15D, 300, 0);
    assert_ne!(
        a.cells, c.cells,
        "different seeds must generate different traffic"
    );
}
