//! Integration tests for the observability layer (DESIGN.md §13):
//! the exports must be deterministic — bit-identical for the same seed
//! regardless of `ZSSD_THREADS` — and the event stream must agree with
//! the run's counters.

use zssd_bench::{
    config_for, grid_for, grid_metrics_json, run_grid_with_threads, trace_for, METRICS_WINDOW,
};
use zssd_core::SystemKind;
use zssd_ftl::Ssd;
use zssd_metrics::{events_to_csv, events_to_json, windows_from_json, windows_to_json, Json};
use zssd_trace::WorkloadProfile;

fn tiny_profiles() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile::paper_set().remove(0).scaled(0.002),
        WorkloadProfile::mail().scaled(0.002),
    ]
}

#[test]
fn grid_export_is_bit_identical_across_thread_counts() {
    let systems = [SystemKind::Baseline, SystemKind::MqDvp { entries: 64 }];
    let mut cells = grid_for(&tiny_profiles(), &systems);
    for cell in &mut cells {
        cell.config.trace_events = true;
    }
    let serial = run_grid_with_threads(cells.clone(), 1).expect("serial grid");
    let parallel = run_grid_with_threads(cells.clone(), 4).expect("parallel grid");
    let serial_json = grid_metrics_json(&cells, &serial);
    let parallel_json = grid_metrics_json(&cells, &parallel);
    assert_eq!(
        serial_json, parallel_json,
        "metrics export must be byte-identical for any ZSSD_THREADS"
    );
    // Event streams — the most order-sensitive part of a report — are
    // identical cell by cell, too.
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(!s.events.is_empty(), "traced cells record events");
        assert_eq!(events_to_csv(&s.events), events_to_csv(&p.events));
    }
}

#[test]
fn gc_episode_series_round_trips_through_the_json_exporter() {
    let profile = WorkloadProfile::mail().scaled(0.002);
    let trace = trace_for(&profile);
    let report = Ssd::new(config_for(&profile, SystemKind::Baseline))
        .expect("drive")
        .run_trace(trace.records())
        .expect("run");
    let windows = report.timeline.windows(METRICS_WINDOW);
    assert!(!windows.is_empty(), "the run spans at least one window");
    let text = windows_to_json(METRICS_WINDOW, &windows).to_string();
    let parsed = Json::parse(&text).expect("exporter emits valid JSON");
    let (window, recovered) = windows_from_json(&parsed).expect("well-formed series");
    assert_eq!(window, METRICS_WINDOW);
    assert_eq!(recovered, windows, "lossless series round-trip");
}

#[test]
fn event_stream_agrees_with_the_run_counters() {
    let profile = WorkloadProfile::mail().scaled(0.002);
    let trace = trace_for(&profile);
    let run = || {
        Ssd::new(config_for(&profile, SystemKind::MqDvp { entries: 64 }).with_event_tracing(true))
            .expect("drive")
            .run_trace(trace.records())
            .expect("run")
    };
    let report = run();
    let count = |kind: &str| {
        report
            .events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count() as u64
    };
    assert_eq!(count("host_write"), report.host_writes);
    assert_eq!(count("host_read"), report.host_reads);
    assert_eq!(count("revive"), report.revived_writes);
    assert!(report.revived_writes > 0, "mail revives zombie pages");
    assert_eq!(count("gc_erase"), report.erases);
    assert_eq!(count("gc_relocate"), report.gc_programs);
    // Timestamps never precede the run start and seqs are gapless.
    for (i, e) in report.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    // The same seed reproduces the stream bit for bit.
    let again = run();
    assert_eq!(
        events_to_json(&report.events).to_string(),
        events_to_json(&again.events).to_string()
    );
    // And the full report export is reproducible too.
    assert_eq!(
        report.to_json(METRICS_WINDOW).to_string(),
        again.to_json(METRICS_WINDOW).to_string()
    );
}
