//! Replays every checked-in corpus trace (`tests/corpus/*.trace`)
//! through the full differential grid with per-command invariant
//! sweeps. Corpus entries are minimal traces produced by the oracle's
//! shrinker — either minimized divergences written by `zssd fuzz`, or
//! behavior-preserving seeds from [`regenerate_corpus`] that pin the
//! interesting drive paths (revival, dedup, trim storms, GC, faults)
//! with the fewest commands that still reach them.

use std::path::PathBuf;

use zombie_ssd::core::SystemKind;
use zombie_ssd::flash::FaultConfig;
use zombie_ssd::oracle::{
    fuzz_config, generate, load_corpus, normalize, run_diff, shrink, standard_grid, write_corpus,
    GenConfig, FUZZ_LOGICAL_PAGES,
};
use zombie_ssd::trace::ArrivalProcess;
use zombie_ssd::types::SimDuration;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every corpus trace must agree with the oracle on every cell of the
/// standard grid, with the invariant sweep running after every single
/// command.
#[test]
fn corpus_replay() {
    let corpus = load_corpus(corpus_dir()).expect("corpus directory readable");
    assert!(
        corpus.len() >= 3,
        "expected the checked-in corpus; run \
         `cargo test --release --test corpus_replay -- --ignored` to regenerate"
    );
    for (name, records) in &corpus {
        assert!(!records.is_empty(), "{name}: empty trace");
        assert!(
            records.iter().all(|r| r.arrival.is_some()),
            "{name}: corpus traces must carry @nanos stamps"
        );
        for cell in standard_grid(0xC0) {
            run_diff(&cell.config, records, 1)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", cell.label));
        }
    }
}

/// Corpus traces replay identically run-to-run: same summary, same
/// (absent) divergence.
#[test]
fn corpus_replay_is_deterministic() {
    let corpus = load_corpus(corpus_dir()).expect("corpus directory readable");
    let cell = &standard_grid(0xC0)[standard_grid(0xC0).len() - 1];
    for (name, records) in &corpus {
        let first = run_diff(&cell.config, records, 1);
        let second = run_diff(&cell.config, records, 1);
        assert_eq!(first, second, "{name}: replay must be deterministic");
    }
}

/// Rebuilds `tests/corpus/` from scratch: generates adversarial
/// traces, shrinks each against a behavior-preserving predicate, and
/// writes the minimized, normalized result. Run manually after a
/// generator or shrinker change:
///
/// ```text
/// cargo test --release --test corpus_replay -- --ignored
/// ```
#[test]
#[ignore = "writes tests/corpus/; run manually to regenerate the corpus"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    let gap = ArrivalProcess::constant(SimDuration::from_micros(50));
    let clean = FaultConfig::none();
    let dvp = fuzz_config(SystemKind::MqDvp { entries: 64 }, clean, gap);
    let dedup = fuzz_config(SystemKind::Dedup, clean, gap);
    let base = fuzz_config(SystemKind::Baseline, clean, gap);
    let hot_faults = FaultConfig::none()
        .with_program_fail(2e-3)
        .with_erase_fail(5e-3)
        .with_seed(0xBADD1E);
    let faulty = fuzz_config(SystemKind::MqDvp { entries: 64 }, hot_faults, gap);

    // (name, source seed, predicate the shrunk trace must preserve)
    type Keep = Box<dyn Fn(&[zombie_ssd::trace::TraceRecord]) -> bool>;
    let entries: Vec<(&str, u64, String, Keep)> = vec![
        (
            "revive-minimal",
            0x5EED_0001,
            "shrunk to the fewest commands that still revive >= 2 zombies on DVP".into(),
            Box::new(move |t| run_diff(&dvp, t, 1).is_ok_and(|s| s.revived_writes >= 2)),
        ),
        (
            "dedup-minimal",
            0x5EED_0002,
            "shrunk to the fewest commands that still dedup >= 2 writes".into(),
            Box::new(move |t| run_diff(&dedup, t, 1).is_ok_and(|s| s.deduped_writes >= 2)),
        ),
        (
            "trim-storm",
            0x5EED_0003,
            "shrunk to the fewest commands keeping >= 6 trims and a checked read".into(),
            Box::new({
                let base = base.clone();
                move |t| run_diff(&base, t, 1).is_ok_and(|s| s.trims >= 6 && s.reads_checked >= 1)
            }),
        ),
        (
            "gc-pressure",
            0x5EED_0004,
            "shrunk to the fewest commands that still force a GC erase".into(),
            Box::new(move |t| run_diff(&base, t, 1).is_ok_and(|s| s.erases >= 1)),
        ),
        (
            "fault-paths",
            0x5EED_0005,
            "shrunk to the fewest commands still hitting program+erase failures".into(),
            Box::new(move |t| {
                run_diff(&faulty, t, 1)
                    .is_ok_and(|s| s.program_failures >= 1 && s.erase_failures >= 1)
            }),
        ),
    ];

    for (name, seed, what, keep) in entries {
        let trace = generate(seed, &GenConfig::standard(2_000));
        assert!(
            keep(&trace),
            "{name}: source trace must exhibit the property"
        );
        let shrunk = shrink(&trace, 8_192, &keep);
        assert!(keep(&shrunk.records), "{name}: shrinking must preserve it");
        let normalized = normalize(&shrunk.records, FUZZ_LOGICAL_PAGES, true);
        assert!(
            keep(&normalized),
            "{name}: normalization must preserve it too"
        );
        let header = vec![
            format!("generated by regenerate_corpus (tests/corpus_replay.rs), seed {seed:#x}"),
            what,
            format!(
                "{} of {} generated commands ({} shrink evaluations)",
                normalized.len(),
                trace.len(),
                shrunk.evaluations
            ),
        ];
        let path = write_corpus(&dir, name, &header, &normalized).expect("corpus writable");
        println!(
            "{name}: {} commands -> {}",
            normalized.len(),
            path.display()
        );
    }
}
