//! Property-based tests (proptest) on the core invariants: pools never
//! fabricate or duplicate garbage pages, flash page accounting is
//! conserved, the device always reads back what was written, and the
//! measurement utilities are monotone.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use zombie_ssd::core::{
    DeadValuePool, IdealPool, LruDeadValuePool, LxSsdConfig, LxSsdPool, MqConfig, MqDeadValuePool,
    SystemKind,
};
use zombie_ssd::flash::FaultConfig;
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::metrics::{Cdf, LatencyRecorder, ShareCurve};
use zombie_ssd::trace::{ArrivalProcess, SyntheticTrace, TraceRecord, WorkloadProfile};
use zombie_ssd::types::{
    Fingerprint, Lpn, PopularityDegree, Ppn, SimDuration, SimTime, ValueId, WriteClock,
};
use zssd_bench::{run_grid_with_threads, GridCell};

/// One step of the pool-model exercise.
#[derive(Debug, Clone)]
enum PoolOp {
    /// Offer a dead page (value id, ppn chosen by index, popularity).
    Insert(u8, u16, u8),
    /// Look up a value's hash.
    Take(u8),
    /// GC-remove a ppn.
    Remove(u16),
    /// Touch an address (read), LX-SSD-only behaviour.
    Note(u16),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(|(v, p, d)| PoolOp::Insert(v, p, d)),
        any::<u8>().prop_map(PoolOp::Take),
        any::<u16>().prop_map(PoolOp::Remove),
        any::<u16>().prop_map(PoolOp::Note),
    ]
}

/// Drives any pool through an arbitrary op sequence against a simple
/// model: a multiset of (fingerprint -> live-in-pool ppns). Checks
/// that every hit returns a ppn that was inserted with that exact
/// fingerprint and not yet consumed/removed, and that no ppn is ever
/// handed out twice.
fn check_pool_against_model<P: DeadValuePool>(mut pool: P, ops: Vec<PoolOp>) {
    let mut clock = WriteClock::ZERO;
    // What the pool *may* return for each fingerprint (superset of
    // what it will: bounded pools evict silently).
    let mut may_return: HashMap<Fingerprint, HashSet<Ppn>> = HashMap::new();
    let mut owner: HashMap<Ppn, Fingerprint> = HashMap::new();
    let mut handed_out: HashSet<Ppn> = HashSet::new();

    for op in ops {
        let now = clock.tick();
        match op {
            PoolOp::Insert(v, p, d) => {
                let fp = Fingerprint::of_value(ValueId::new(u64::from(v)));
                let ppn = Ppn::new(u64::from(p));
                if owner.contains_key(&ppn) {
                    // A ppn can only hold one value at a time; the FTL
                    // never re-offers a tracked page. Skip like the
                    // FTL would.
                    continue;
                }
                pool.insert_dead(
                    fp,
                    ppn,
                    Lpn::new(u64::from(p)),
                    PopularityDegree::new(d),
                    now,
                );
                // The pool may or may not retain it (eviction), but if
                // it returns it later, it must be for this fp.
                may_return.entry(fp).or_default().insert(ppn);
                owner.insert(ppn, fp);
            }
            PoolOp::Take(v) => {
                let fp = Fingerprint::of_value(ValueId::new(u64::from(v)));
                if let Some(ppn) = pool.take_match(fp, now) {
                    assert!(
                        may_return.get(&fp).is_some_and(|s| s.contains(&ppn)),
                        "pool returned {ppn} never inserted for this fingerprint"
                    );
                    assert!(handed_out.insert(ppn), "ppn {ppn} handed out twice");
                    may_return.get_mut(&fp).expect("entry").remove(&ppn);
                    owner.remove(&ppn);
                }
            }
            PoolOp::Remove(p) => {
                let ppn = Ppn::new(u64::from(p));
                pool.remove_ppn(ppn);
                if let Some(fp) = owner.remove(&ppn) {
                    may_return.get_mut(&fp).expect("entry").remove(&ppn);
                }
            }
            PoolOp::Note(p) => {
                pool.note_lpn_access(Lpn::new(u64::from(p)), now);
            }
        }
        if let Some(cap) = pool.capacity() {
            assert!(pool.len() <= cap, "pool exceeded its capacity");
        }
        assert!(pool.tracked_ppns() >= pool.len().min(1) * usize::from(pool.len() > 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mq_pool_honours_the_model(ops in prop::collection::vec(pool_op(), 1..400)) {
        let pool = MqDeadValuePool::new(MqConfig {
            num_queues: 4,
            capacity: 32,
            initial_hottest_interval: 8,
        });
        check_pool_against_model(pool, ops);
    }

    #[test]
    fn lru_pool_honours_the_model(ops in prop::collection::vec(pool_op(), 1..400)) {
        check_pool_against_model(LruDeadValuePool::new(16), ops);
    }

    #[test]
    fn ideal_pool_honours_the_model(ops in prop::collection::vec(pool_op(), 1..400)) {
        check_pool_against_model(IdealPool::new(), ops);
    }

    #[test]
    fn lxssd_pool_honours_the_model(ops in prop::collection::vec(pool_op(), 1..400)) {
        let pool = LxSsdPool::new(LxSsdConfig::default().with_capacity(16));
        check_pool_against_model(pool, ops);
    }

    #[test]
    fn ideal_pool_never_misses_a_tracked_value(
        inserts in prop::collection::vec((any::<u8>(), any::<u16>()), 1..100)
    ) {
        let mut pool = IdealPool::new();
        let mut seen = HashSet::new();
        let mut inserted_values = HashSet::new();
        let mut clock = WriteClock::ZERO;
        for (v, p) in &inserts {
            let ppn = Ppn::new(u64::from(*p));
            // A ppn holds one value at a time; duplicates are skipped
            // exactly as the FTL would skip re-offering a tracked page.
            if seen.insert(ppn) {
                pool.insert_dead(
                    Fingerprint::of_value(ValueId::new(u64::from(*v))),
                    ppn,
                    Lpn::new(0),
                    PopularityDegree::ZERO,
                    clock.tick(),
                );
                inserted_values.insert(*v);
            }
        }
        // Every value actually inserted must be matchable at least once.
        for v in inserted_values {
            prop_assert!(pool
                .take_match(Fingerprint::of_value(ValueId::new(u64::from(v))), clock.tick())
                .is_some());
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded(samples in prop::collection::vec(0u64..1000, 1..200)) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let mut last = 0.0;
        for x in [0u64, 1, 5, 10, 100, 500, 999, 1000] {
            let f = cdf.fraction_le(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last);
            last = f;
        }
        prop_assert_eq!(cdf.fraction_le(1000), 1.0);
        let max = cdf.max().expect("nonempty");
        prop_assert_eq!(cdf.quantile(1.0), max);
    }

    #[test]
    fn share_curve_is_monotone_and_complete(weights in prop::collection::vec(0u64..1000, 1..200)) {
        let curve = ShareCurve::from_weights(weights.iter().copied());
        let mut last = 0.0;
        for i in 1..=10 {
            let share = curve.share_of_top(i as f64 / 10.0);
            prop_assert!(share + 1e-12 >= last, "share must not decrease");
            last = share;
        }
        let total: u64 = weights.iter().sum();
        if total > 0 {
            prop_assert!((curve.share_of_top(1.0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn latency_percentiles_are_ordered(samples in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(SimDuration::from_nanos(s));
        }
        let summary = rec.summary();
        prop_assert!(summary.p50 <= summary.p99);
        prop_assert!(summary.p99 <= summary.max);
        prop_assert!(summary.mean <= summary.max);
        prop_assert_eq!(summary.count, samples.len() as u64);
    }

    #[test]
    fn device_reads_back_writes_under_arbitrary_sequences(
        ops in prop::collection::vec((0u64..192, 0u64..40, 0u8..8), 1..250),
        system_pick in 0usize..8,
    ) {
        let system = [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 24 },
            SystemKind::LruDvp { entries: 24 },
            SystemKind::Ideal,
            SystemKind::LxSsd { entries: 24 },
            SystemKind::Dedup,
            SystemKind::DvpPlusDedup { entries: 24 },
            SystemKind::AdaptiveDvp { min_entries: 8, max_entries: 64 },
        ][system_pick];
        let mut ssd = Ssd::new(
            SsdConfig::small_test()
                .without_precondition()
                .with_system(system),
        ).expect("valid drive");
        let mut shadow: HashMap<Lpn, ValueId> = HashMap::new();
        let mut at = SimTime::ZERO;
        for (lpn, value, action) in ops {
            let lpn = Lpn::new(lpn);
            match action {
                // Writes dominate; occasionally trim, otherwise read.
                0..=4 => {
                    at = ssd.write(lpn, ValueId::new(value), at).expect("write");
                    shadow.insert(lpn, ValueId::new(value));
                }
                5 => {
                    ssd.trim(lpn).expect("trim");
                    shadow.remove(&lpn);
                }
                _ => {
                    let (got, done) = ssd.read(lpn, at).expect("read");
                    at = done;
                    if let Some(&expect) = shadow.get(&lpn) {
                        prop_assert_eq!(got, expect, "{} mismatch at {}", system, lpn);
                    }
                }
            }
        }
        // Page-state conservation on the tiny drive.
        let flash = ssd.flash();
        let geom = flash.geometry();
        let mut valid = 0u64;
        let mut counted = 0u64;
        for (_, info) in flash.blocks() {
            valid += u64::from(info.valid_pages);
            counted += u64::from(info.valid_pages)
                + u64::from(info.invalid_pages)
                + u64::from(info.free_pages)
                + u64::from(info.bad_pages);
        }
        prop_assert_eq!(counted, geom.total_pages(), "page states partition the device");
        if !system.uses_dedup() {
            prop_assert_eq!(valid, shadow.len() as u64, "one valid page per mapped LPN");
        }
    }

    /// The dense `Vec`-backed reverse map is a pure representation
    /// change: driven through an arbitrary write/trim/read sequence it
    /// must be observationally identical to the `HashMap` fallback
    /// (`with_sparse_rmap(true)`), down to the full `RunReport`.
    #[test]
    fn dense_and_sparse_rmaps_are_observationally_identical(
        ops in prop::collection::vec((0u64..192, 0u64..40, 0u8..8), 1..250),
        system_pick in 0usize..8,
    ) {
        let system = [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 24 },
            SystemKind::LruDvp { entries: 24 },
            SystemKind::Ideal,
            SystemKind::LxSsd { entries: 24 },
            SystemKind::Dedup,
            SystemKind::DvpPlusDedup { entries: 24 },
            SystemKind::AdaptiveDvp { min_entries: 8, max_entries: 64 },
        ][system_pick];
        let config = SsdConfig::small_test()
            .without_precondition()
            .with_system(system);
        let mut dense = Ssd::new(config.clone()).expect("dense drive");
        let mut sparse = Ssd::new(config.with_sparse_rmap(true)).expect("sparse drive");
        let mut at_dense = SimTime::ZERO;
        let mut at_sparse = SimTime::ZERO;
        for (lpn, value, action) in ops {
            let lpn = Lpn::new(lpn);
            match action {
                0..=4 => {
                    at_dense = dense.write(lpn, ValueId::new(value), at_dense).expect("write");
                    at_sparse = sparse.write(lpn, ValueId::new(value), at_sparse).expect("write");
                }
                5 => {
                    dense.trim(lpn).expect("trim");
                    sparse.trim(lpn).expect("trim");
                }
                _ => {
                    let (got_dense, done_dense) = dense.read(lpn, at_dense).expect("read");
                    let (got_sparse, done_sparse) = sparse.read(lpn, at_sparse).expect("read");
                    prop_assert_eq!(got_dense, got_sparse, "read value diverged at {}", lpn);
                    prop_assert_eq!(done_dense, done_sparse, "read latency diverged at {}", lpn);
                    at_dense = done_dense;
                    at_sparse = done_sparse;
                }
            }
        }
        prop_assert_eq!(dense.into_report(), sparse.into_report());
    }
}

proptest! {
    // Full synthetic-trace replays are heavier than the op-sequence
    // cases above, so run fewer of them.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same equivalence, end to end: a randomly seeded synthetic trace
    /// replayed through both reverse-map representations yields the
    /// exact same `RunReport`.
    #[test]
    fn dense_rmap_matches_sparse_on_random_traces(
        seed in any::<u64>(),
        system_pick in 0usize..8,
    ) {
        let system = [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 512 },
            SystemKind::LruDvp { entries: 512 },
            SystemKind::Ideal,
            SystemKind::LxSsd { entries: 512 },
            SystemKind::Dedup,
            SystemKind::DvpPlusDedup { entries: 512 },
            SystemKind::AdaptiveDvp { min_entries: 64, max_entries: 1024 },
        ][system_pick];
        let profile = WorkloadProfile::mail().scaled(0.001).with_days(1);
        let trace = SyntheticTrace::generate(&profile, seed);
        let config = SsdConfig::for_footprint(profile.lpn_space).with_system(system);
        let dense = Ssd::new(config.clone()).expect("dense drive");
        let sparse = Ssd::new(config.with_sparse_rmap(true)).expect("sparse drive");
        let dense_report = dense.run_trace(trace.records()).expect("dense run");
        let sparse_report = sparse.run_trace(trace.records()).expect("sparse run");
        prop_assert_eq!(dense_report, sparse_report);
    }

    /// Backward-compatibility oracle for the timing rework: stamping
    /// every record with the constant process must be report-identical
    /// to leaving records unstamped and configuring the same interval
    /// on the drive.
    #[test]
    fn stamped_constant_arrivals_match_interval_replay(
        seed in any::<u64>(),
        interval_us in 1u64..5_000,
    ) {
        let profile = WorkloadProfile::mail().scaled(0.001).with_days(1);
        let trace = SyntheticTrace::generate(&profile, seed);
        let interval = SimDuration::from_micros(interval_us);
        let mut stamped = trace.records().to_vec();
        ArrivalProcess::constant(interval).stamp(&mut stamped);
        let config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(SystemKind::MqDvp { entries: 512 });
        let unstamped_report = Ssd::new(config.clone().with_arrival_interval(interval))
            .expect("drive")
            .run_trace(trace.records())
            .expect("unstamped run");
        // The stamped drive keeps the default interval: stamps win.
        let stamped_report = Ssd::new(config)
            .expect("drive")
            .run_trace(&stamped)
            .expect("stamped run");
        prop_assert_eq!(unstamped_report, stamped_report);
    }

    /// A seeded fault plan is part of the experiment configuration:
    /// the same fault seed must reproduce the exact same report run
    /// after run, and — because fault state lives inside each drive's
    /// own flash array — whether the runs execute serially or race
    /// each other on the parallel grid.
    #[test]
    fn fault_injection_is_seed_deterministic_across_thread_counts(fault_seed in any::<u64>()) {
        let faults = FaultConfig::none()
            .with_program_fail(1e-3)
            .with_erase_fail(5e-3)
            .with_read_error(1e-3)
            .with_seed(fault_seed);
        let profile = WorkloadProfile::mail().scaled(0.001).with_days(1);
        let records: Arc<[TraceRecord]> =
            SyntheticTrace::generate(&profile, 9).into_records().into();
        let config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(SystemKind::MqDvp { entries: 512 })
            .with_faults(faults);
        let cells: Vec<GridCell> = (0..3)
            .map(|i| GridCell::new("mail", format!("run{i}"), config.clone(), records.clone()))
            .collect();
        let serial = run_grid_with_threads(cells.clone(), 1).expect("serial grid");
        let parallel = run_grid_with_threads(cells, 3).expect("parallel grid");
        prop_assert_eq!(&serial, &parallel, "thread count must not leak into fault decisions");
        prop_assert_eq!(&serial[0], &serial[1], "same fault seed, same report");
        prop_assert_eq!(&serial[1], &serial[2], "same fault seed, same report");
    }

    /// A fault plan with every rate at zero must be indistinguishable
    /// from no fault plan at all, whatever its seed — the fault layer
    /// may not perturb a single byte of a faultless run's report.
    #[test]
    fn zero_rate_faults_are_byte_identical_to_faultless(fault_seed in any::<u64>()) {
        let profile = WorkloadProfile::mail().scaled(0.001).with_days(1);
        let trace = SyntheticTrace::generate(&profile, 9);
        let config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(SystemKind::MqDvp { entries: 512 });
        let plain = Ssd::new(config.clone().with_faults(FaultConfig::none()))
            .expect("drive")
            .run_trace(trace.records())
            .expect("faultless run");
        let zeroed = Ssd::new(config.with_faults(FaultConfig::none().with_seed(fault_seed)))
            .expect("drive")
            .run_trace(trace.records())
            .expect("zero-rate run");
        prop_assert_eq!(plain, zeroed);
    }

    /// Reads that complete only after an ECC retry (and the scrub
    /// relocation it triggers) must still return exactly the values
    /// the trace recorded, and leave the drive coherent.
    #[test]
    fn retried_reads_return_trace_recorded_values(fault_seed in any::<u64>()) {
        let profile = WorkloadProfile::web().scaled(0.001).with_days(1);
        let trace = SyntheticTrace::generate(&profile, 9);
        let config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(SystemKind::MqDvp { entries: 512 })
            .with_faults(FaultConfig::none().with_read_error(0.05).with_seed(fault_seed));
        let mut ssd = Ssd::new(config).expect("drive");
        ssd.replay(trace.records()).expect("run");
        ssd.check_invariants()
            .unwrap_or_else(|e| panic!("invariants violated: {e}"));
        let report = ssd.into_report();
        prop_assert_eq!(report.read_mismatches, 0, "retried reads must stay correct");
        prop_assert!(report.read_retries > 0, "a 5% ECC rate must fire on this trace");
        prop_assert_eq!(
            report.flash_programs,
            report.host_programs + report.gc_programs + report.scrub_programs
        );
    }

    /// Poisson replay: the same seed reproduces the exact report, the
    /// latency tail stays ordered, and reads stay content-consistent
    /// under the irregular arrival spacing.
    #[test]
    fn poisson_replay_is_seed_deterministic_with_ordered_tail(seed in any::<u64>()) {
        let profile = WorkloadProfile::mail().scaled(0.001).with_days(1);
        let trace = SyntheticTrace::generate(&profile, 9);
        let config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(SystemKind::Baseline)
            .with_arrival(ArrivalProcess::poisson(SimDuration::from_micros(500), seed));
        let a = Ssd::new(config.clone())
            .expect("drive")
            .run_trace(trace.records())
            .expect("first run");
        let b = Ssd::new(config)
            .expect("drive")
            .run_trace(trace.records())
            .expect("second run");
        prop_assert!(a.all_latency.p99 >= a.all_latency.p50);
        prop_assert_eq!(a.read_mismatches, 0);
        prop_assert_eq!(a, b);
    }
}
