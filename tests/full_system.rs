//! Cross-crate integration tests: the full device model driven by
//! generated traces, checked for conservation invariants, content
//! correctness, and the orderings the paper's design relies on.

use std::collections::HashMap;

use zombie_ssd::core::SystemKind;
use zombie_ssd::ftl::{RunReport, Ssd, SsdConfig};
use zombie_ssd::trace::{IoOp, SyntheticTrace, WorkloadProfile};
use zombie_ssd::types::{Lpn, SimTime, ValueId};

const ALL_SYSTEMS: [SystemKind; 7] = [
    SystemKind::Baseline,
    SystemKind::MqDvp { entries: 512 },
    SystemKind::LruDvp { entries: 512 },
    SystemKind::Ideal,
    SystemKind::LxSsd { entries: 512 },
    SystemKind::Dedup,
    SystemKind::DvpPlusDedup { entries: 512 },
];

fn small_trace(profile: WorkloadProfile, seed: u64) -> SyntheticTrace {
    SyntheticTrace::generate(&profile.scaled(0.004), seed)
}

/// Replays the trace and — before finalizing the report — checks the
/// drive's cross-structure invariants, so every scenario below doubles
/// as a consistency audit (mapping ↔ reverse map, pool hygiene, block
/// accounting; see `Ssd::check_invariants`).
fn run(profile: &WorkloadProfile, trace: &SyntheticTrace, system: SystemKind) -> RunReport {
    let mut ssd = Ssd::new(SsdConfig::for_footprint(profile.lpn_space).with_system(system))
        .unwrap_or_else(|e| panic!("{system}: construction failed: {e}"));
    ssd.replay(trace.records())
        .unwrap_or_else(|e| panic!("{system}: run failed: {e}"));
    ssd.check_invariants()
        .unwrap_or_else(|e| panic!("{system}: invariants violated: {e}"));
    ssd.into_report()
}

#[test]
fn every_system_survives_every_workload() {
    for profile in WorkloadProfile::paper_set() {
        let scaled = profile.scaled(0.003);
        let trace = SyntheticTrace::generate(&scaled, 7);
        for system in ALL_SYSTEMS {
            let report = run(&scaled, &trace, system);
            assert_eq!(
                report.host_writes + report.host_reads,
                trace.records().len() as u64,
                "{system} on {}: all requests serviced",
                profile.name
            );
        }
    }
}

#[test]
fn content_read_back_matches_shadow_model_for_all_systems() {
    let profile = WorkloadProfile::mail().scaled(0.003);
    let trace = SyntheticTrace::generate(&profile, 21);
    for system in ALL_SYSTEMS {
        let mut ssd = Ssd::new(SsdConfig::for_footprint(profile.lpn_space).with_system(system))
            .expect("drive");
        let mut shadow: HashMap<Lpn, ValueId> = HashMap::new();
        let mut at = SimTime::ZERO;
        for record in trace.records() {
            match record.op {
                IoOp::Write => {
                    at = ssd.write(record.lpn, record.value, at).expect("write");
                    shadow.insert(record.lpn, record.value);
                }
                IoOp::Read => {
                    let (value, done) = ssd.read(record.lpn, at).expect("read");
                    at = done;
                    if let Some(&expect) = shadow.get(&record.lpn) {
                        assert_eq!(value, expect, "{system}: content at {}", record.lpn);
                    }
                }
                IoOp::Trim => {
                    ssd.trim(record.lpn).expect("trim");
                    shadow.remove(&record.lpn);
                }
            }
        }
        // Final sweep: every shadow entry reads back exactly.
        for (&lpn, &expect) in &shadow {
            let (value, _) = ssd.read(lpn, at).expect("read");
            assert_eq!(value, expect, "{system}: final content at {lpn}");
        }
        ssd.check_invariants()
            .unwrap_or_else(|e| panic!("{system}: invariants violated: {e}"));
    }
}

#[test]
fn valid_page_conservation_without_dedup() {
    let profile = WorkloadProfile::web().scaled(0.003);
    let trace = SyntheticTrace::generate(&profile, 3);
    for system in [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries: 512 },
        SystemKind::Ideal,
    ] {
        let mut ssd = Ssd::new(SsdConfig::for_footprint(profile.lpn_space).with_system(system))
            .expect("drive");
        let mut at = SimTime::ZERO;
        for record in trace.records().iter().filter(|r| r.is_write()) {
            at = ssd.write(record.lpn, record.value, at).expect("write");
        }
        // One-to-one mapping: every mapped LPN owns exactly one valid
        // physical page (preconditioning mapped every logical page).
        assert_eq!(
            ssd.flash().total_valid_pages(),
            profile.lpn_space,
            "{system}: valid pages == mapped logical pages"
        );
        ssd.check_invariants()
            .unwrap_or_else(|e| panic!("{system}: invariants violated: {e}"));
    }
}

#[test]
fn dvp_reduces_programs_and_erases_on_redundant_traces() {
    let profile = WorkloadProfile::mail().scaled(0.005);
    let trace = SyntheticTrace::generate(&profile, 11);
    let baseline = run(&profile, &trace, SystemKind::Baseline);
    let dvp = run(&profile, &trace, SystemKind::MqDvp { entries: 2048 });
    assert!(
        dvp.flash_programs < baseline.flash_programs,
        "DVP must cut programs: {} vs {}",
        dvp.flash_programs,
        baseline.flash_programs
    );
    assert!(
        dvp.erases <= baseline.erases,
        "fewer programs cannot need more erases: {} vs {}",
        dvp.erases,
        baseline.erases
    );
    assert!(dvp.revived_writes > 0);
    assert!(
        dvp.mean_latency() <= baseline.mean_latency(),
        "write elimination must not hurt mean latency"
    );
}

#[test]
fn bigger_pools_never_revive_less() {
    let profile = WorkloadProfile::mail().scaled(0.005);
    let trace = SyntheticTrace::generate(&profile, 13);
    let small = run(&profile, &trace, SystemKind::MqDvp { entries: 64 });
    let large = run(&profile, &trace, SystemKind::MqDvp { entries: 8192 });
    let ideal = run(&profile, &trace, SystemKind::Ideal);
    assert!(small.revived_writes <= large.revived_writes);
    assert!(large.revived_writes <= ideal.revived_writes);
}

#[test]
fn dvp_plus_dedup_beats_dedup_alone() {
    let profile = WorkloadProfile::mail().scaled(0.005);
    let trace = SyntheticTrace::generate(&profile, 17);
    let dedup = run(&profile, &trace, SystemKind::Dedup);
    let combo = run(&profile, &trace, SystemKind::DvpPlusDedup { entries: 4096 });
    assert!(
        combo.flash_programs <= dedup.flash_programs,
        "recycling garbage is complementary to dedup (SVII): {} vs {}",
        combo.flash_programs,
        dedup.flash_programs
    );
    assert!(
        combo.revived_writes > 0,
        "the pool must fire on top of dedup"
    );
}

#[test]
fn reports_are_internally_consistent() {
    let profile = WorkloadProfile::home().scaled(0.003);
    let trace = SyntheticTrace::generate(&profile, 23);
    for system in ALL_SYSTEMS {
        let report = run(&profile, &trace, system);
        assert_eq!(
            report.flash_programs,
            report.host_programs + report.gc_programs + report.scrub_programs,
            "{system}: program breakdown adds up"
        );
        assert_eq!(
            report.host_writes,
            report.host_programs + report.revived_writes + report.deduped_writes,
            "{system}: every write is programmed, revived, or deduped"
        );
        assert_eq!(
            report.all_latency.count,
            report.host_writes + report.host_reads,
            "{system}: every request has a latency sample"
        );
        assert!(report.all_latency.p99 >= report.all_latency.p50);
        assert!(report.all_latency.max >= report.all_latency.p99);
    }
}

#[test]
fn wear_and_trim_surface_in_reports() {
    let profile = WorkloadProfile::mail().scaled(0.005);
    let trace = SyntheticTrace::generate(&profile, 29);
    let report = run(&profile, &trace, SystemKind::Baseline);
    assert!(report.erases > 0);
    assert!(
        report.wear.max_erases > 0,
        "wear must accumulate once GC runs"
    );
    assert!(report.wear.mean_erases > 0.0);
    assert!(report.wear.imbalance() >= 1.0);
    // Timeline covers every request.
    assert_eq!(
        report.timeline.len() as u64,
        report.host_writes + report.host_reads
    );
}

#[test]
fn trim_heavy_traces_replay_cleanly() {
    let profile = WorkloadProfile::mail().scaled(0.004).with_trim_ratio(0.1);
    let trace = SyntheticTrace::generate(&profile, 37);
    let trims_in_trace = trace.records().iter().filter(|r| r.is_trim()).count() as u64;
    assert!(trims_in_trace > 0, "trim ratio must emit trims");
    for system in [SystemKind::Baseline, SystemKind::MqDvp { entries: 512 }] {
        let report = run(&profile, &trace, system);
        assert_eq!(
            report.trims, trims_in_trace,
            "{system}: every trim serviced"
        );
        assert_eq!(
            report.read_mismatches, 0,
            "{system}: content stays consistent"
        );
        assert_eq!(
            report.host_writes + report.host_reads + report.trims,
            trace.records().len() as u64,
            "{system}: every record serviced"
        );
        // Trims are mapping-table operations: no latency sample.
        assert_eq!(
            report.all_latency.count,
            report.host_writes + report.host_reads,
            "{system}: trims record no latency"
        );
    }
}

#[test]
fn run_reports_are_deterministic() {
    let profile = WorkloadProfile::trans().scaled(0.003);
    let trace = SyntheticTrace::generate(&profile, 31);
    let a = run(&profile, &trace, SystemKind::MqDvp { entries: 1024 });
    let b = run(&profile, &trace, SystemKind::MqDvp { entries: 1024 });
    assert_eq!(a.flash_programs, b.flash_programs);
    assert_eq!(a.erases, b.erases);
    assert_eq!(a.revived_writes, b.revived_writes);
    assert_eq!(a.all_latency.mean, b.all_latency.mean);
}

#[test]
fn multi_day_traces_replay_day_by_day() {
    let profile = WorkloadProfile::web().scaled(0.002);
    let trace = small_trace(WorkloadProfile::web(), 5);
    let _ = profile;
    let mut ssd = Ssd::new(
        SsdConfig::for_footprint(
            trace
                .records()
                .iter()
                .map(|r| r.lpn.index() + 1)
                .max()
                .unwrap(),
        )
        .with_system(SystemKind::MqDvp { entries: 512 }),
    )
    .expect("drive");
    let mut at = SimTime::ZERO;
    for day in 0..trace.num_days() {
        for record in trace.day(day) {
            match record.op {
                IoOp::Write => at = ssd.write(record.lpn, record.value, at).expect("write"),
                IoOp::Read => at = ssd.read(record.lpn, at).expect("read").1,
                IoOp::Trim => ssd.trim(record.lpn).expect("trim"),
            }
        }
    }
    assert_eq!(
        ssd.stats().host_writes + ssd.stats().host_reads,
        trace.records().len() as u64
    );
    ssd.check_invariants()
        .unwrap_or_else(|e| panic!("invariants violated: {e}"));
}

#[test]
fn trimmed_page_on_a_retired_block_stays_coherent() {
    // Regression for the trim × fault interaction: trim an LBA, then
    // force the GC onto the block holding the trimmed (dead) page
    // with every erase attempt failing, so the block double-faults
    // and retires with the zombie still on it. The pool must not keep
    // a claim on the retired page, and the LBA must keep full
    // read/write semantics afterwards.
    let faults = zombie_ssd::flash::FaultConfig::none()
        .with_erase_fail(1.0)
        .with_seed(11);
    // GC early (high watermark): erases never succeed here, so free
    // pages only shrink — retirement must happen while there is still
    // headroom for the post-retirement writes below.
    let mut config = SsdConfig::small_test()
        .without_precondition()
        .with_system(SystemKind::MqDvp { entries: 64 })
        .with_faults(faults);
    config.gc_low_watermark = 4;
    let mut ssd = Ssd::new(config).expect("drive");
    let at = SimTime::ZERO;
    let trimmed_value = ValueId::new(7);
    ssd.write(Lpn::new(0), trimmed_value, at).expect("seed L0");
    // Fill out the planes' first blocks, then trim everything: both
    // first blocks go all-invalid, making them the GC's first victims.
    for i in 1..32u64 {
        ssd.write(Lpn::new(i), ValueId::new(100 + i), at)
            .expect("fill");
    }
    for i in 0..32u64 {
        ssd.trim(Lpn::new(i)).expect("trim");
    }
    // Churn fresh, never-repeated content until GC pressure forces
    // two blocks through the double-erase-failure retirement path.
    let mut i = 0u64;
    while ssd.flash().stats().retired_blocks.get() < 2 {
        ssd.write(Lpn::new(32 + (i % 64)), ValueId::new(10_000 + i), at)
            .expect("churn");
        i += 1;
        assert!(i < 10_000, "erase failures never retired a block");
    }
    assert!(
        ssd.flash().stats().erase_failures.get() >= 2,
        "retirement takes two failures"
    );
    ssd.check_invariants()
        .unwrap_or_else(|e| panic!("invariants violated after retirement: {e}"));
    // The trimmed LBA still reads as trimmed.
    let (v, _) = ssd.read(Lpn::new(0), at).expect("read of trimmed LBA");
    assert_eq!(v, zombie_ssd::trace::initial_value_of(Lpn::new(0)));
    // Rewriting the trimmed content must not revive from a page that
    // went down with the retired block.
    assert_eq!(
        ssd.stats().revived_writes,
        0,
        "churn used fresh values only"
    );
    ssd.write(Lpn::new(96), trimmed_value, at)
        .expect("rewrite of the trimmed content");
    assert_eq!(
        ssd.stats().revived_writes,
        0,
        "the zombie's page retired with its block; reviving it would read bad flash"
    );
    let (v, _) = ssd.read(Lpn::new(96), at).expect("read back");
    assert_eq!(v, trimmed_value);
    // And the trimmed LBA itself round-trips a fresh write.
    ssd.write(Lpn::new(0), ValueId::new(0xBEEF), at)
        .expect("rewrite of the trimmed LBA");
    let (v, _) = ssd.read(Lpn::new(0), at).expect("read back");
    assert_eq!(v, ValueId::new(0xBEEF));
    ssd.check_invariants()
        .unwrap_or_else(|e| panic!("invariants violated at end: {e}"));
}

#[test]
fn faulty_drives_stay_consistent_across_systems() {
    // The whole scenario matrix again, but on flash that injects
    // program, erase, and read failures. Every survival path —
    // program retry onto fresh pages, erase retry then block
    // retirement, read-retry scrubbing — must leave the drive's
    // cross-structure state coherent and the content intact.
    let faults = zombie_ssd::flash::FaultConfig::none()
        .with_program_fail(2e-3)
        .with_erase_fail(5e-2)
        .with_read_error(2e-3)
        .with_seed(0xFA17);
    let profile = WorkloadProfile::mail().scaled(0.004);
    let trace = SyntheticTrace::generate(&profile, 41);
    for system in ALL_SYSTEMS {
        let mut ssd = Ssd::new(
            SsdConfig::for_footprint(profile.lpn_space)
                .with_system(system)
                .with_faults(faults),
        )
        .unwrap_or_else(|e| panic!("{system}: construction failed: {e}"));
        ssd.replay(trace.records())
            .unwrap_or_else(|e| panic!("{system}: faulty run failed: {e}"));
        ssd.check_invariants()
            .unwrap_or_else(|e| panic!("{system}: invariants violated: {e}"));
        let report = ssd.into_report();
        assert_eq!(
            report.read_mismatches, 0,
            "{system}: retried reads must still return recorded content"
        );
        assert_eq!(
            report.flash_programs,
            report.host_programs + report.gc_programs + report.scrub_programs,
            "{system}: program breakdown adds up under faults"
        );
        assert!(
            report.program_failures > 0 || report.erase_failures > 0 || report.read_retries > 0,
            "{system}: these rates must actually fire on this trace"
        );
    }
}
