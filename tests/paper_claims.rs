//! Shape-level assertions of the paper's comparative claims, at small
//! scale: who wins, who loses, and in which direction each mechanism
//! moves the metrics. These are the claims `EXPERIMENTS.md` verifies
//! at full scale.

use zombie_ssd::analysis::{infinite_reuse, PoolReuseSim, ValueLifecycles};
use zombie_ssd::core::{LruDeadValuePool, MqConfig, MqDeadValuePool, SystemKind};
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::trace::{SyntheticTrace, WorkloadProfile};
use zombie_ssd::types::{Lpn, SimTime, ValueId};

fn trace(profile: &WorkloadProfile, seed: u64) -> SyntheticTrace {
    SyntheticTrace::generate(profile, seed)
}

fn run(
    profile: &WorkloadProfile,
    t: &SyntheticTrace,
    system: SystemKind,
) -> zombie_ssd::ftl::RunReport {
    Ssd::new(
        SsdConfig::for_footprint(profile.lpn_space)
            .with_system(system)
            .with_dedup_index_entries(4096),
    )
    .expect("drive")
    .run_trace(t.records())
    .expect("run")
}

/// §I / Fig 1: "a majority of pages written to SSD turn into garbage
/// pages" and redundant traces offer large reuse.
#[test]
fn most_values_die_and_mail_reuse_dominates_desktop() {
    let mail = WorkloadProfile::mail().scaled(0.01);
    let desktop = WorkloadProfile::desktop().scaled(0.01);
    let mail_t = trace(&mail, 1);
    let desktop_t = trace(&desktop, 1);

    let lc = ValueLifecycles::analyze(mail_t.records());
    assert!(
        lc.fraction_with_deaths() > 0.5,
        "most mail values must die at least once (got {:.2})",
        lc.fraction_with_deaths()
    );

    let mail_reuse = infinite_reuse(mail_t.records(), false).reuse_fraction();
    let desktop_reuse = infinite_reuse(desktop_t.records(), false).reuse_fraction();
    assert!(
        mail_reuse > 2.0 * desktop_reuse,
        "mail ({mail_reuse:.2}) must dwarf desktop ({desktop_reuse:.2})"
    );
}

/// Fig 3: value popularity is skewed — a small fraction of values
/// accounts for most writes, invalidations, and rebirths.
#[test]
fn popularity_skew_holds_across_all_three_curves() {
    let profile = WorkloadProfile::mail().scaled(0.01);
    let lc = ValueLifecycles::analyze(trace(&profile, 2).records());
    assert!(lc.writes_share().share_of_top(0.2) > 0.6);
    assert!(lc.invalidations_share().share_of_top(0.2) > 0.6);
    assert!(lc.rebirths_share().share_of_top(0.2) > 0.6);
}

/// Fig 4(a)/(b): popular values die and are reborn more quickly.
#[test]
fn popular_values_cycle_faster() {
    let profile = WorkloadProfile::mail().scaled(0.02);
    let lc = ValueLifecycles::analyze(trace(&profile, 3).records());
    let dead_times = lc.dead_time_by_popularity();
    assert!(dead_times.len() >= 3);
    let coldest = dead_times.iter().find(|b| b.values > 2 && b.mean > 0.0);
    let hottest = dead_times
        .iter()
        .rev()
        .find(|b| b.values > 0 && b.mean > 0.0);
    let (cold, hot) = (coldest.expect("cold band"), hottest.expect("hot band"));
    assert!(
        hot.mean < cold.mean,
        "popular values must be reborn sooner: hot {} vs cold {}",
        hot.mean,
        cold.mean
    );
}

/// §III / Figs 5-6: MQ at least matches LRU at equal capacity, and
/// both are bounded by the infinite buffer.
#[test]
fn mq_ge_lru_le_infinite() {
    let profile = WorkloadProfile::mail().scaled(0.03);
    let t = trace(&profile, 4);
    let entries = 512;
    let oracle = infinite_reuse(t.records(), false);
    let lru = PoolReuseSim::new(LruDeadValuePool::new(entries)).run(t.records());
    let mq = PoolReuseSim::new(MqDeadValuePool::new(
        MqConfig::paper_default().with_capacity(entries),
    ))
    .run(t.records());
    assert!(mq.hits >= lru.hits, "MQ {} vs LRU {}", mq.hits, lru.hits);
    assert!(mq.hits <= oracle.reused);
}

/// Fig 9/10 direction: DVP cuts programs and erases vs Baseline on
/// every redundant workload; Ideal bounds DVP.
#[test]
fn dvp_improves_and_ideal_bounds_it() {
    for profile in [WorkloadProfile::web(), WorkloadProfile::mail()] {
        let p = profile.scaled(0.005);
        let t = trace(&p, 5);
        let base = run(&p, &t, SystemKind::Baseline);
        let dvp = run(&p, &t, SystemKind::MqDvp { entries: 4096 });
        let ideal = run(&p, &t, SystemKind::Ideal);
        assert!(dvp.flash_programs < base.flash_programs, "{}", p.name);
        assert!(dvp.erases <= base.erases, "{}", p.name);
        assert!(ideal.revived_writes >= dvp.revived_writes, "{}", p.name);
    }
}

/// Fig 11 direction: the DVP's mean-latency win on mail is material.
#[test]
fn dvp_latency_win_is_material_on_mail() {
    let p = WorkloadProfile::mail().scaled(0.005);
    let t = trace(&p, 6);
    let base = run(&p, &t, SystemKind::Baseline);
    let dvp = run(&p, &t, SystemKind::MqDvp { entries: 4096 });
    let improvement =
        1.0 - dvp.mean_latency().as_nanos() as f64 / base.mean_latency().as_nanos() as f64;
    assert!(
        improvement > 0.10,
        "mail mean-latency improvement too small: {:.1}%",
        improvement * 100.0
    );
    // Tail latency at this tiny scale is set by a handful of GC
    // bursts, so allow sampling noise but no real regression.
    assert!(
        dvp.tail_latency().as_nanos() as f64 <= base.tail_latency().as_nanos() as f64 * 1.15,
        "DVP tail {} vs baseline {}",
        dvp.tail_latency(),
        base.tail_latency()
    );
}

/// §VII / Fig 14: DVP+Dedup ≤ Dedup ≤ Baseline in programs, and the
/// pool still fires on a deduplicated store.
#[test]
fn dedup_stacking_is_complementary() {
    let p = WorkloadProfile::mail().scaled(0.005);
    let t = trace(&p, 7);
    let base = run(&p, &t, SystemKind::Baseline);
    let dedup = run(&p, &t, SystemKind::Dedup);
    let combo = run(&p, &t, SystemKind::DvpPlusDedup { entries: 4096 });
    assert!(dedup.flash_programs < base.flash_programs);
    assert!(combo.flash_programs <= dedup.flash_programs);
    assert!(combo.revived_writes > 0);
    assert!(combo.mean_latency() <= dedup.mean_latency());
}

/// Fig 10 magnitude: the paper reports the DVP erasing ~35.5% fewer
/// blocks than Baseline on average. On the GC-active workloads (the
/// ones whose small-scale traces overflow the over-provisioned
/// capacity and actually trigger erases) our replication must clear
/// that average, and every one of them must improve individually.
#[test]
fn fig10_erase_reduction_meets_the_papers_average() {
    let mut reductions = Vec::new();
    for profile in [
        WorkloadProfile::web(),
        WorkloadProfile::mail(),
        WorkloadProfile::home(),
    ] {
        let p = profile.scaled(0.02);
        let t = trace(&p, 8);
        let base = run(&p, &t, SystemKind::Baseline);
        let dvp = run(&p, &t, SystemKind::MqDvp { entries: 4096 });
        assert!(
            base.erases > 0,
            "{}: baseline must GC at this scale",
            p.name
        );
        let reduction = 1.0 - dvp.erases as f64 / base.erases as f64;
        assert!(
            reduction > 0.0,
            "{}: DVP must erase less than baseline ({} vs {})",
            p.name,
            dvp.erases,
            base.erases
        );
        reductions.push(reduction);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        mean >= 0.355,
        "mean erase reduction {:.1}% must reach the paper's ~35.5%",
        mean * 100.0
    );
}

/// Fig 14 magnitude: stacking dedup on the DVP removes ~11% more of
/// the baseline's programs on average across the six paper workloads
/// (the paper's "extra" write reduction from deduplication).
#[test]
fn fig14_dedup_stacking_magnitude_is_about_eleven_percent() {
    let mut extras = Vec::new();
    for profile in WorkloadProfile::paper_set() {
        let p = profile.scaled(0.02);
        let t = trace(&p, 8);
        let base = run(&p, &t, SystemKind::Baseline);
        let dvp = run(&p, &t, SystemKind::MqDvp { entries: 4096 });
        let combo = run(&p, &t, SystemKind::DvpPlusDedup { entries: 4096 });
        let dvp_red = 1.0 - dvp.flash_programs as f64 / base.flash_programs as f64;
        let combo_red = 1.0 - combo.flash_programs as f64 / base.flash_programs as f64;
        let extra = combo_red - dvp_red;
        assert!(
            extra > 0.0,
            "{}: dedup must remove programs the pool alone cannot \
             (DVP {:.1}% vs DVP+Dedup {:.1}%)",
            p.name,
            dvp_red * 100.0,
            combo_red * 100.0
        );
        extras.push(extra);
    }
    let mean = extras.iter().sum::<f64>() / extras.len() as f64;
    assert!(
        (0.06..=0.18).contains(&mean),
        "mean extra write reduction {:.1}% must sit near the paper's ~11%",
        mean * 100.0
    );
}

/// Fig 13's scenario, literally: W1 programs D, W2/W3 dedup against
/// the live copy, the copy dies, and W4 is serviced from the garbage
/// pool without a program.
#[test]
fn fig13_scenario_plays_out() {
    let mut ssd = Ssd::new(
        SsdConfig::small_test()
            .without_precondition()
            .with_system(SystemKind::DvpPlusDedup { entries: 64 }),
    )
    .expect("drive");
    let d = ValueId::new(0xD);
    let at = SimTime::ZERO;
    ssd.write(Lpn::new(0), d, at).expect("W1: program D"); // t0
    ssd.write(Lpn::new(1), d, at).expect("W2: dedup");
    ssd.write(Lpn::new(2), d, at).expect("W3: dedup");
    assert_eq!(ssd.stats().deduped_writes, 2);
    // Updates kill all three logical copies -> D turns to garbage (t3).
    ssd.write(Lpn::new(0), ValueId::new(1), at).expect("kill");
    ssd.write(Lpn::new(1), ValueId::new(2), at).expect("kill");
    ssd.write(Lpn::new(2), ValueId::new(3), at).expect("kill");
    assert_eq!(ssd.flash().total_invalid_pages(), 1, "D's page is garbage");
    // W4 at t4: dedup cannot help (D has no live copy), the DVP can.
    ssd.write(Lpn::new(3), d, at).expect("W4: revive");
    assert_eq!(ssd.stats().revived_writes, 1, "W4 revived the zombie");
    assert_eq!(
        ssd.stats().host_programs,
        4,
        "only W1 and the 3 kills programmed"
    );
}

/// TRIM integrates with the pool: trimmed content is revivable.
#[test]
fn trimmed_pages_can_be_revived() {
    let mut ssd = Ssd::new(
        SsdConfig::small_test()
            .without_precondition()
            .with_system(SystemKind::MqDvp { entries: 64 }),
    )
    .expect("drive");
    let at = SimTime::ZERO;
    ssd.write(Lpn::new(0), ValueId::new(7), at).expect("write");
    ssd.trim(Lpn::new(0)).expect("trim");
    assert_eq!(ssd.stats().trims, 1);
    assert_eq!(ssd.flash().total_invalid_pages(), 1);
    // Reading a trimmed page sees pre-trace content again.
    let (v, _) = ssd.read(Lpn::new(0), at).expect("read");
    assert_eq!(v, zombie_ssd::trace::initial_value_of(Lpn::new(0)));
    // A rewrite of the trimmed content revives the zombie.
    ssd.write(Lpn::new(5), ValueId::new(7), at).expect("revive");
    assert_eq!(ssd.stats().revived_writes, 1);
}
