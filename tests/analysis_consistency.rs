//! Consistency between the independent implementations of the same
//! concepts: trace-level analysis (zssd-analysis), the pool data
//! structures (zssd-core), and the full device (zssd-ftl).

use zombie_ssd::analysis::{infinite_reuse, PoolReuseSim, ValueLifecycles};
use zombie_ssd::core::{IdealPool, LruDeadValuePool, MqConfig, MqDeadValuePool, SystemKind};
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::trace::{parse_text, write_text, SyntheticTrace, TraceStats, WorkloadProfile};

#[test]
fn rebirth_count_equals_infinite_buffer_reuse() {
    // Two independent scans define the same quantity: a rebirth
    // (lifecycle view) is exactly a write reusable from garbage with
    // an unlimited buffer (reuse view).
    for profile in WorkloadProfile::paper_set() {
        let trace = SyntheticTrace::generate(&profile.scaled(0.005), 3);
        let lc = ValueLifecycles::analyze(trace.records());
        let reuse = infinite_reuse(trace.records(), false);
        assert_eq!(
            lc.total_rebirths(),
            reuse.reused,
            "{}: lifecycle rebirths == infinite-buffer reuse",
            profile.name
        );
    }
}

#[test]
fn ideal_pool_replay_matches_oracle_on_all_workloads() {
    for profile in WorkloadProfile::paper_set() {
        let trace = SyntheticTrace::generate(&profile.scaled(0.004), 5);
        let oracle = infinite_reuse(trace.records(), false);
        let summary = PoolReuseSim::new(IdealPool::new()).run(trace.records());
        assert_eq!(summary.hits, oracle.reused, "{}", profile.name);
        assert_eq!(summary.capacity_misses, 0, "{}", profile.name);
    }
}

#[test]
fn bounded_pool_hits_plus_misses_equal_oracle() {
    for profile in [WorkloadProfile::mail(), WorkloadProfile::web()] {
        let trace = SyntheticTrace::generate(&profile.scaled(0.01), 9);
        let oracle = infinite_reuse(trace.records(), false);
        for entries in [32usize, 256, 4096] {
            let lru = PoolReuseSim::new(LruDeadValuePool::new(entries)).run(trace.records());
            assert_eq!(
                lru.hits + lru.capacity_misses,
                oracle.reused,
                "{} LRU-{entries}: every oracle hit is a hit or a capacity miss",
                profile.name
            );
            let mq = PoolReuseSim::new(MqDeadValuePool::new(
                MqConfig::paper_default().with_capacity(entries),
            ))
            .run(trace.records());
            assert_eq!(mq.hits + mq.capacity_misses, oracle.reused);
        }
    }
}

#[test]
fn device_revivals_match_trace_replay_hits() {
    // The full device wires the same pool into a real FTL. GC-induced
    // removals can only *lose* opportunities, never create them, so
    // device revivals are bounded by the trace-level replay and stay
    // nonzero on redundant traces.
    let profile = WorkloadProfile::mail().scaled(0.004);
    let trace = SyntheticTrace::generate(&profile, 7);
    let entries = 2048usize;
    let replay = PoolReuseSim::new(MqDeadValuePool::new(
        MqConfig::paper_default().with_capacity(entries),
    ))
    .run(trace.records());
    let device = Ssd::new(
        SsdConfig::for_footprint(profile.lpn_space).with_system(SystemKind::MqDvp { entries }),
    )
    .expect("drive")
    .run_trace(trace.records())
    .expect("run");
    assert!(device.revived_writes > 0);
    assert!(
        device.revived_writes <= replay.hits,
        "device ({}) cannot out-revive the GC-free replay ({})",
        device.revived_writes,
        replay.hits
    );
}

#[test]
fn text_round_trip_preserves_stats() {
    let profile = WorkloadProfile::hadoop().scaled(0.003);
    let trace = SyntheticTrace::generate(&profile, 13);
    let mut buf = Vec::new();
    write_text(trace.records(), &mut buf).expect("serialize");
    let parsed = parse_text(&String::from_utf8(buf).expect("utf8")).expect("parse");
    assert_eq!(parsed, trace.records());
    assert_eq!(
        TraceStats::measure(&parsed),
        TraceStats::measure(trace.records())
    );
}
