//! Bring your own trace: build records by hand (or convert your own
//! block trace with content hashes into the text format), save them,
//! reload them, and replay them against any system — no synthetic
//! generator involved.
//!
//! Run with `cargo run --release --example custom_trace`.

use zombie_ssd::core::SystemKind;
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::trace::{parse_text, write_text, TraceRecord, TraceStats};
use zombie_ssd::types::{Lpn, ValueId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature "config file rewrite" workload: three files (pages
    // 0-2) that flip between two configurations A/B, and a log page
    // that always appends fresh content.
    let (a, b) = (ValueId::new(100), ValueId::new(200));
    let mut records = Vec::new();
    let mut seq = 0u64;
    let mut write = |lpn: u64, value: ValueId| {
        records.push(TraceRecord::write(seq, Lpn::new(lpn), value));
        seq += 1;
    };
    for round in 0..200u64 {
        let config = if round % 2 == 0 { a } else { b };
        for file in 0..3 {
            write(file, config); // same content rewritten across files
        }
        write(3, ValueId::new(1_000 + round)); // unique log append
    }

    // Round-trip through the FIU-like text format.
    let mut buf = Vec::new();
    write_text(&records, &mut buf)?;
    let text = String::from_utf8(buf)?;
    let reloaded = parse_text(&text)?;
    assert_eq!(reloaded, records);
    println!("trace: {}", TraceStats::measure(&reloaded));
    println!("(first lines of the text format)");
    for line in text.lines().take(4) {
        println!("  {line}");
    }

    // Replay against Baseline and the paper's system.
    for system in [SystemKind::Baseline, SystemKind::MqDvp { entries: 64 }] {
        let config = SsdConfig::for_footprint(64)
            .without_precondition()
            .with_system(system);
        let report = Ssd::new(config)?.run_trace(&reloaded)?;
        println!(
            "\n{system}: {} host writes -> {} programs ({} revived)",
            report.host_writes, report.flash_programs, report.revived_writes
        );
    }
    println!("\nthe A/B flip means every config write finds its previous incarnation");
    println!("dead in the pool — almost no page is ever programmed twice");
    Ok(())
}
