//! The paper's motivating scenario: a mail server whose write stream
//! is dominated by duplicated content (circulated attachments, SPAM).
//! Compares all four evaluated systems — Baseline, DVP, Dedup, and
//! DVP+Dedup — on a scaled mail trace, reproducing the §VI/§VII story
//! in one run.
//!
//! Run with `cargo run --release --example mail_server`.

use zombie_ssd::core::SystemKind;
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::metrics::reduction_pct;
use zombie_ssd::trace::{SyntheticTrace, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(0.02);
    let trace = SyntheticTrace::generate(&profile, 0xB10B);
    println!(
        "mail-like trace: {} requests over {} days, footprint {} pages\n",
        trace.records().len(),
        trace.num_days(),
        profile.lpn_space
    );

    let entries = 4_096;
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries },
    ];

    let mut baseline_programs = 0f64;
    let mut baseline_mean = 0f64;
    println!(
        "{:>16}  {:>10}  {:>8}  {:>8}  {:>12}  {:>12}",
        "system", "programs", "erases", "revived", "mean latency", "vs baseline"
    );
    for system in systems {
        let config = SsdConfig::for_footprint(profile.lpn_space).with_system(system);
        let report = Ssd::new(config)?.run_trace(trace.records())?;
        if system == SystemKind::Baseline {
            baseline_programs = report.flash_programs as f64;
            baseline_mean = report.mean_latency().as_nanos() as f64;
        }
        println!(
            "{:>16}  {:>10}  {:>8}  {:>8}  {:>12}  {:>6.1}% writes / {:>5.1}% latency",
            system.label(),
            report.flash_programs,
            report.erases,
            report.revived_writes,
            report.mean_latency().to_string(),
            reduction_pct(baseline_programs, report.flash_programs as f64),
            reduction_pct(baseline_mean, report.mean_latency().as_nanos() as f64),
        );
    }
    println!("\nthe DVP wins on its own, and still adds wins on top of deduplication (§VII)");
    Ok(())
}
