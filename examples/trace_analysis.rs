//! The §II characterization study on a generated trace: value
//! life-cycles (creation → death → rebirth), popularity skew, and the
//! infinite-buffer reuse bound — the evidence that motivates the
//! dead-value pool.
//!
//! Run with `cargo run --release --example trace_analysis [workload]`
//! where `workload` is one of web/home/mail/hadoop/trans/desktop
//! (default mail).

use zombie_ssd::analysis::{infinite_reuse, ValueLifecycles};
use zombie_ssd::trace::{SyntheticTrace, WorkloadProfile};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mail".to_owned());
    let profile = WorkloadProfile::paper_set()
        .into_iter()
        .find(|p| p.name == which)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {which:?}, using mail");
            WorkloadProfile::mail()
        })
        .scaled(0.05);
    let trace = SyntheticTrace::generate(&profile, 99);
    println!(
        "workload {} — {} requests\n",
        profile.name,
        trace.records().len()
    );

    let lc = ValueLifecycles::analyze(trace.records());
    println!("unique values written : {}", lc.unique_values());
    println!(
        "values that died       : {:.1}% (paper Fig 2: most values become garbage)",
        lc.fraction_with_deaths() * 100.0
    );

    let writes = lc.writes_share();
    println!(
        "popularity skew        : top 20% of values carry {:.1}% of writes (Fig 3a)",
        writes.share_of_top(0.2) * 100.0
    );
    let rebirths = lc.rebirths_share();
    println!(
        "rebirth skew           : top 20% of values carry {:.1}% of rebirths (Fig 3c)",
        rebirths.share_of_top(0.2) * 100.0
    );

    println!("\nrebirth counts by popularity band (Fig 4c):");
    for bin in lc.rebirths_by_popularity() {
        println!(
            "  {:>7}-{:<7} writes: {:>8} values, {:>8.2} mean rebirths",
            bin.write_range.0, bin.write_range.1, bin.values, bin.mean
        );
    }

    let plain = infinite_reuse(trace.records(), false);
    let dedup = infinite_reuse(trace.records(), true);
    println!(
        "\ninfinite-buffer reuse  : {:.1}% of writes could revive a zombie (Fig 1)",
        plain.reuse_fraction() * 100.0
    );
    println!(
        "after deduplication    : {:.1}% reuse remains on top of {:.1}% dedup'd",
        dedup.reuse_fraction() * 100.0,
        dedup.dedup_fraction() * 100.0
    );
}
