//! Ablation of the §IV-D popularity-aware GC victim selector: the
//! same drive and trace, with greedy vs popularity-aware selection,
//! at several popularity-penalty weights.
//!
//! Run with `cargo run --release --example gc_tuning`.

use zombie_ssd::core::SystemKind;
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::trace::{SyntheticTrace, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(0.02);
    let trace = SyntheticTrace::generate(&profile, 0x6C);
    let system = SystemKind::MqDvp { entries: 4_096 };
    println!(
        "mail-like trace, {} requests, DVP-4K\n",
        trace.records().len()
    );

    println!(
        "{:>22}  {:>8}  {:>8}  {:>8}  {:>12}",
        "GC policy", "revived", "erases", "gc moves", "mean latency"
    );
    let run = |label: &str, aware: bool, weight: f64| -> Result<(), Box<dyn std::error::Error>> {
        let mut config = SsdConfig::for_footprint(profile.lpn_space)
            .with_system(system)
            .with_popularity_aware_gc(aware);
        config.gc_popularity_weight = weight;
        let report = Ssd::new(config)?.run_trace(trace.records())?;
        println!(
            "{label:>22}  {:>8}  {:>8}  {:>8}  {:>12}",
            report.revived_writes,
            report.erases,
            report.gc_programs,
            report.mean_latency().to_string()
        );
        Ok(())
    };
    run("greedy", false, 0.0)?;
    for weight in [0.5, 2.0, 8.0] {
        run(&format!("pop-aware (w={weight})"), true, weight)?;
    }
    println!("\nhigher weights protect popular zombies from erasure, trading GC");
    println!("efficiency for revival opportunities (paper SIV-D)");
    Ok(())
}
