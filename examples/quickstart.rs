//! Quickstart: build a small SSD with the paper's MQ dead-value pool,
//! push a redundant write stream through it, and watch zombie pages
//! come back to life.
//!
//! Run with `cargo run --release --example quickstart`.

use zombie_ssd::core::SystemKind;
use zombie_ssd::ftl::{Ssd, SsdConfig};
use zombie_ssd::types::{Lpn, SimTime, ValueId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small drive: ~16 K logical pages, Table I latencies, running
    // the paper's proposal (MQ dead-value pool, 4 K entries).
    let config = SsdConfig::for_footprint(16_384)
        .without_precondition()
        .with_system(SystemKind::MqDvp { entries: 4_096 });
    let mut ssd = Ssd::new(config)?;

    // A toy workload with heavy value redundancy: 50 distinct values
    // cycling over 4 K logical pages — think circulated attachments on
    // a mail server.
    let mut at = SimTime::ZERO;
    for i in 0..40_000u64 {
        let lpn = Lpn::new((i * 17) % 4_096);
        let value = ValueId::new(i % 50);
        at = ssd.write(lpn, value, at)?;
    }

    let stats = ssd.stats();
    println!("host writes        : {}", stats.host_writes);
    println!("NAND programs      : {}", stats.host_programs);
    println!(
        "revived zombies    : {} ({:.1}% of writes short-circuited)",
        stats.revived_writes,
        100.0 * stats.revived_writes as f64 / stats.host_writes as f64
    );
    println!("pool               : {}", ssd.pool_stats());

    // Reads see the right content even through revivals.
    let (value, _) = ssd.read(Lpn::new(17), at)?;
    println!("read back L17      : {value}");

    let report = ssd.into_report();
    println!("\nfull report:\n{report}");
    Ok(())
}
