//! The LX-SSD prior-work baseline (Zhou et al., MSST 2017).
//!
//! The paper compares against LX-SSD and attributes its weaker results
//! to two design choices (§I, §VI-B):
//!
//! 1. recycling probability is driven by *read and write* value
//!    popularity, although read-popular values are not necessarily
//!    rewritten ("a value which is frequently read is not necessarily
//!    written frequently"), and
//! 2. "their buffer replacement policy considers the recency of
//!    garbage pages **associated with each page address**, hindering
//!    the efficacy and scalability of their work" — tracking is
//!    per-garbage-page (per LBA), not per value, so one buffer entry
//!    covers a single dead page rather than every dead copy of a
//!    value.
//!
//! This reimplementation has exactly those properties: every dead page
//! is its own LRU entry keyed by the address that produced it, any
//! host access (read *or* write) to that address refreshes the entry,
//! and at equal entry budgets it therefore covers far fewer distinct
//! values than the paper's MQ pool — the scalability gap the paper
//! demonstrates on mail.

use zssd_types::FxHashMap;

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

use crate::intrusive::{ListHandle, Slab, SlotId};
use crate::pool::{DeadValuePool, PoolStats};

/// Configuration of the [`LxSsdPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LxSsdConfig {
    /// Maximum number of tracked garbage pages (one entry each).
    pub capacity: usize,
}

impl LxSsdConfig {
    /// Same entry budget as the paper gives the DVP (200 K).
    pub fn paper_default() -> Self {
        LxSsdConfig { capacity: 200_000 }
    }

    /// Overrides the capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

impl Default for LxSsdConfig {
    fn default() -> Self {
        LxSsdConfig::paper_default()
    }
}

/// One tracked garbage page.
#[derive(Debug, Clone, Copy)]
struct Entry {
    fp: Fingerprint,
    ppn: Ppn,
    lpn: Lpn,
    /// Combined read+write access count (the conflation the paper
    /// critiques).
    pop: PopularityDegree,
}

/// An LBA-recency LRU recycler modeling LX-SSD: one entry per garbage
/// page, replacement by the recency of the page's logical address.
///
/// # Examples
///
/// ```
/// use zssd_core::{DeadValuePool, LxSsdConfig, LxSsdPool};
/// use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};
///
/// let mut pool = LxSsdPool::new(LxSsdConfig::default().with_capacity(10));
/// let fp = Fingerprint::of_value(ValueId::new(1));
/// pool.insert_dead(fp, Ppn::new(1), Lpn::new(7), PopularityDegree::ZERO, WriteClock::ZERO);
/// // A *read* of LBA 7 refreshes the entry — the behaviour the paper
/// // identifies as a mistake.
/// pool.note_lpn_access(Lpn::new(7), WriteClock::from_count(1));
/// assert_eq!(pool.take_match(fp, WriteClock::from_count(2)), Some(Ppn::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct LxSsdPool {
    cfg: LxSsdConfig,
    slab: Slab<Entry>,
    lru: ListHandle,
    /// All garbage pages currently holding each content hash.
    by_fp: FxHashMap<Fingerprint, Vec<SlotId>>,
    by_ppn: FxHashMap<Ppn, SlotId>,
    /// Entries whose recency is refreshed by accesses to an address.
    by_lpn: FxHashMap<Lpn, Vec<SlotId>>,
    stats: PoolStats,
}

impl LxSsdPool {
    /// Creates an empty pool.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(cfg: LxSsdConfig) -> Self {
        assert!(cfg.capacity > 0, "LX-SSD pool capacity must be nonzero");
        LxSsdPool {
            cfg,
            slab: Slab::with_capacity(cfg.capacity.min(1 << 20)),
            lru: ListHandle::new(),
            by_fp: FxHashMap::default(),
            by_ppn: FxHashMap::default(),
            by_lpn: FxHashMap::default(),
            stats: PoolStats::default(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &LxSsdConfig {
        &self.cfg
    }

    fn touch(&mut self, id: SlotId) {
        self.lru.detach(&mut self.slab, id);
        self.lru.push_tail(&mut self.slab, id);
    }

    /// Removes an entry from every index. The entry must already be
    /// detached from the LRU list.
    fn drop_indexes(&mut self, id: SlotId, entry: Entry) {
        if let Some(ids) = self.by_fp.get_mut(&entry.fp) {
            ids.retain(|&e| e != id);
            if ids.is_empty() {
                self.by_fp.remove(&entry.fp);
            }
        }
        self.by_ppn.remove(&entry.ppn);
        if let Some(ids) = self.by_lpn.get_mut(&entry.lpn) {
            ids.retain(|&e| e != id);
            if ids.is_empty() {
                self.by_lpn.remove(&entry.lpn);
            }
        }
    }

    fn evict_one(&mut self) {
        if let Some(id) = self.lru.pop_head(&mut self.slab) {
            let entry = self.slab.remove(id);
            self.drop_indexes(id, entry);
            self.stats.evictions += 1;
        }
    }

    fn remove_entry(&mut self, id: SlotId) -> Entry {
        self.lru.detach(&mut self.slab, id);
        let entry = self.slab.remove(id);
        self.drop_indexes(id, entry);
        entry
    }
}

impl DeadValuePool for LxSsdPool {
    fn take_match(&mut self, fp: Fingerprint, _now: WriteClock) -> Option<Ppn> {
        let Some(ids) = self.by_fp.get(&fp) else {
            self.stats.misses += 1;
            return None;
        };
        let id = *ids.last().expect("fp index entries are non-empty");
        let entry = self.remove_entry(id);
        self.stats.hits += 1;
        Some(entry.ppn)
    }

    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        lpn: Lpn,
        pop: PopularityDegree,
        _now: WriteClock,
    ) {
        if self.by_ppn.contains_key(&ppn) {
            return;
        }
        self.stats.insertions += 1;
        let id = self.slab.insert(Entry { fp, ppn, lpn, pop });
        self.lru.push_tail(&mut self.slab, id);
        self.by_fp.entry(fp).or_default().push(id);
        self.by_ppn.insert(ppn, id);
        self.by_lpn.entry(lpn).or_default().push(id);
        if self.slab.len() > self.cfg.capacity {
            self.evict_one();
        }
    }

    fn remove_ppn(&mut self, ppn: Ppn) {
        let Some(&id) = self.by_ppn.get(&ppn) else {
            return;
        };
        self.remove_entry(id);
        self.stats.gc_removals += 1;
    }

    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree> {
        self.by_ppn.get(&ppn).map(|&id| self.slab.get(id).pop)
    }

    /// Any host access — including reads — to an LBA with tracked
    /// garbage refreshes those entries' recency and bumps their
    /// (read+write) popularity. This is LX-SSD's behaviour, not the
    /// DVP's.
    fn note_lpn_access(&mut self, lpn: Lpn, _now: WriteClock) {
        let Some(ids) = self.by_lpn.get(&lpn) else {
            return;
        };
        for id in ids.clone() {
            self.slab.get_mut(id).pop.increment();
            self.touch(id);
        }
    }

    fn len(&self) -> usize {
        self.slab.len()
    }

    fn tracked_ppns(&self) -> usize {
        self.by_ppn.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.cfg.capacity)
    }

    fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    fn pool(capacity: usize) -> LxSsdPool {
        LxSsdPool::new(LxSsdConfig::default().with_capacity(capacity))
    }

    fn insert(pool: &mut LxSsdPool, v: u64, ppn: u64, lpn: u64, now: u64) {
        pool.insert_dead(
            fp(v),
            Ppn::new(ppn),
            Lpn::new(lpn),
            PopularityDegree::ZERO,
            WriteClock::from_count(now),
        );
    }

    #[test]
    fn reads_refresh_recency_the_paper_critique() {
        let mut p = pool(2);
        insert(&mut p, 1, 1, 10, 1);
        insert(&mut p, 2, 2, 20, 2);
        // A read of LBA 10 keeps value 1's page hot even though its
        // value is never rewritten...
        p.note_lpn_access(Lpn::new(10), WriteClock::from_count(3));
        insert(&mut p, 3, 3, 30, 4); // evicts value 2, not value 1
        assert!(p.take_match(fp(1), WriteClock::from_count(5)).is_some());
        assert_eq!(p.take_match(fp(2), WriteClock::from_count(6)), None);
    }

    #[test]
    fn one_entry_per_garbage_page_not_per_value() {
        // The scalability flaw: three dead copies of one value consume
        // three entries (the MQ pool would use one).
        let mut p = pool(3);
        insert(&mut p, 1, 1, 10, 1);
        insert(&mut p, 1, 2, 11, 2);
        insert(&mut p, 1, 3, 12, 3);
        assert_eq!(p.len(), 3);
        insert(&mut p, 2, 4, 20, 4); // overflows: evicts page 1
        assert_eq!(p.len(), 3);
        assert_eq!(p.stats().evictions, 1);
        assert_eq!(p.garbage_weight(Ppn::new(1)), None);
        assert!(p.garbage_weight(Ppn::new(2)).is_some());
    }

    #[test]
    fn lpn_access_bumps_combined_popularity() {
        let mut p = pool(4);
        insert(&mut p, 1, 1, 10, 1);
        assert_eq!(p.garbage_weight(Ppn::new(1)), Some(PopularityDegree::ZERO));
        p.note_lpn_access(Lpn::new(10), WriteClock::from_count(2));
        assert_eq!(
            p.garbage_weight(Ppn::new(1)),
            Some(PopularityDegree::new(1))
        );
    }

    #[test]
    fn unrelated_lpn_access_is_ignored() {
        let mut p = pool(4);
        insert(&mut p, 1, 1, 10, 1);
        p.note_lpn_access(Lpn::new(99), WriteClock::from_count(2));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn content_hits_consume_most_recent_copy() {
        let mut p = pool(4);
        insert(&mut p, 1, 1, 10, 1);
        insert(&mut p, 1, 2, 11, 2);
        assert_eq!(p.tracked_ppns(), 2);
        assert_eq!(
            p.take_match(fp(1), WriteClock::from_count(3)),
            Some(Ppn::new(2))
        );
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.take_match(fp(1), WriteClock::from_count(4)),
            Some(Ppn::new(1))
        );
        assert!(p.is_empty());
    }

    #[test]
    fn eviction_and_gc_keep_indexes_consistent() {
        let mut p = pool(2);
        for v in 1..=5u64 {
            insert(&mut p, v, v, v * 10, v);
        }
        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().evictions, 3);
        p.remove_ppn(Ppn::new(5));
        assert_eq!(p.len(), 1);
        p.remove_ppn(Ppn::new(5)); // idempotent
        assert_eq!(p.stats().gc_removals, 1);
        // The evicted entries' LBAs no longer resolve.
        p.note_lpn_access(Lpn::new(10), WriteClock::from_count(9));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn several_entries_can_share_an_lpn() {
        // Two different dead pages produced by updates of the same
        // address: a later access refreshes both.
        let mut p = pool(4);
        insert(&mut p, 1, 1, 10, 1);
        insert(&mut p, 2, 2, 10, 2);
        insert(&mut p, 3, 3, 30, 3);
        p.note_lpn_access(Lpn::new(10), WriteClock::from_count(4));
        insert(&mut p, 4, 4, 40, 5);
        insert(&mut p, 5, 5, 50, 6); // evicts value 3 (LRU), not 1 or 2
        assert_eq!(p.take_match(fp(3), WriteClock::from_count(7)), None);
        assert!(p.take_match(fp(1), WriteClock::from_count(8)).is_some());
        assert!(p.take_match(fp(2), WriteClock::from_count(9)).is_some());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }
}
