//! The single-queue LRU dead-value pool (§III-A strawman).
//!
//! "LRU policy satisfies the temporal locality but lacks taking the
//! popularity (frequency) into account" — the paper uses this design
//! to motivate MQ (Figs 5 and 6); we keep it both as a baseline and as
//! an ablation point.

use zssd_types::FxHashMap;

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

use crate::intrusive::{ListHandle, Slab, SlotId};
use crate::pool::{DeadValuePool, PoolStats};

#[derive(Debug, Clone)]
struct Entry {
    fp: Fingerprint,
    ppns: Vec<Ppn>,
    pop: PopularityDegree,
}

/// A capacity-bounded dead-value pool with pure LRU replacement.
///
/// # Examples
///
/// ```
/// use zssd_core::{DeadValuePool, LruDeadValuePool};
/// use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};
///
/// let mut pool = LruDeadValuePool::new(2);
/// let now = WriteClock::from_count(1);
/// for v in 0..3u64 {
///     pool.insert_dead(Fingerprint::of_value(ValueId::new(v)), Ppn::new(v),
///                      Lpn::new(v), PopularityDegree::ZERO, now);
/// }
/// // Capacity 2: the oldest value (0) was evicted.
/// assert_eq!(pool.take_match(Fingerprint::of_value(ValueId::new(0)), now), None);
/// assert!(pool.take_match(Fingerprint::of_value(ValueId::new(2)), now).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LruDeadValuePool {
    capacity: usize,
    slab: Slab<Entry>,
    lru: ListHandle,
    by_fp: FxHashMap<Fingerprint, SlotId>,
    by_ppn: FxHashMap<Ppn, SlotId>,
    stats: PoolStats,
}

impl LruDeadValuePool {
    /// Creates an empty pool holding at most `capacity` hash entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU pool capacity must be nonzero");
        LruDeadValuePool {
            capacity,
            slab: Slab::with_capacity(capacity.min(1 << 20)),
            lru: ListHandle::new(),
            by_fp: FxHashMap::default(),
            by_ppn: FxHashMap::default(),
            stats: PoolStats::default(),
        }
    }

    fn touch(&mut self, id: SlotId) {
        self.lru.detach(&mut self.slab, id);
        self.lru.push_tail(&mut self.slab, id);
    }

    fn evict_one(&mut self) {
        if let Some(id) = self.lru.pop_head(&mut self.slab) {
            let entry = self.slab.remove(id);
            self.by_fp.remove(&entry.fp);
            for ppn in &entry.ppns {
                self.by_ppn.remove(ppn);
            }
            self.stats.evictions += 1;
        }
    }

    fn unlink_entry(&mut self, id: SlotId) {
        self.lru.detach(&mut self.slab, id);
        let entry = self.slab.remove(id);
        self.by_fp.remove(&entry.fp);
    }
}

impl DeadValuePool for LruDeadValuePool {
    fn take_match(&mut self, fp: Fingerprint, _now: WriteClock) -> Option<Ppn> {
        let Some(&id) = self.by_fp.get(&fp) else {
            self.stats.misses += 1;
            return None;
        };
        let (ppn, emptied) = {
            let entry = self.slab.get_mut(id);
            entry.pop.increment();
            let ppn = entry.ppns.pop().expect("entries always track >= 1 ppn");
            (ppn, entry.ppns.is_empty())
        };
        self.by_ppn.remove(&ppn);
        if emptied {
            self.unlink_entry(id);
        } else {
            self.touch(id);
        }
        self.stats.hits += 1;
        Some(ppn)
    }

    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        _lpn: Lpn,
        pop: PopularityDegree,
        _now: WriteClock,
    ) {
        if self.by_ppn.contains_key(&ppn) {
            return;
        }
        self.stats.insertions += 1;
        if let Some(&id) = self.by_fp.get(&fp) {
            {
                let entry = self.slab.get_mut(id);
                entry.ppns.push(ppn);
                if pop > entry.pop {
                    entry.pop = pop;
                }
            }
            self.by_ppn.insert(ppn, id);
            self.touch(id);
        } else {
            let id = self.slab.insert(Entry {
                fp,
                ppns: vec![ppn],
                pop,
            });
            self.lru.push_tail(&mut self.slab, id);
            self.by_fp.insert(fp, id);
            self.by_ppn.insert(ppn, id);
            if self.slab.len() > self.capacity {
                self.evict_one();
            }
        }
    }

    fn remove_ppn(&mut self, ppn: Ppn) {
        let Some(id) = self.by_ppn.remove(&ppn) else {
            return;
        };
        self.stats.gc_removals += 1;
        let emptied = {
            let entry = self.slab.get_mut(id);
            let pos = entry
                .ppns
                .iter()
                .position(|&p| p == ppn)
                .expect("ppn index consistent with entry");
            entry.ppns.swap_remove(pos);
            entry.ppns.is_empty()
        };
        if emptied {
            self.unlink_entry(id);
        }
    }

    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree> {
        self.by_ppn.get(&ppn).map(|&id| self.slab.get(id).pop)
    }

    fn len(&self) -> usize {
        self.slab.len()
    }

    fn tracked_ppns(&self) -> usize {
        self.by_ppn.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    fn insert(pool: &mut LruDeadValuePool, v: u64, ppn: u64, now: u64) {
        pool.insert_dead(
            fp(v),
            Ppn::new(ppn),
            Lpn::new(ppn),
            PopularityDegree::ZERO,
            WriteClock::from_count(now),
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = LruDeadValuePool::new(2);
        insert(&mut p, 1, 1, 1);
        insert(&mut p, 2, 2, 2);
        // Touch value 1 so value 2 becomes LRU.
        insert(&mut p, 1, 10, 3);
        insert(&mut p, 3, 3, 4); // evicts value 2
        assert_eq!(p.take_match(fp(2), WriteClock::from_count(5)), None);
        assert!(p.take_match(fp(1), WriteClock::from_count(6)).is_some());
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn hit_on_multi_ppn_entry_keeps_entry() {
        let mut p = LruDeadValuePool::new(4);
        insert(&mut p, 1, 1, 1);
        insert(&mut p, 1, 2, 2);
        assert!(p.take_match(fp(1), WriteClock::from_count(3)).is_some());
        assert_eq!(p.len(), 1);
        assert!(p.take_match(fp(1), WriteClock::from_count(4)).is_some());
        assert!(p.is_empty());
    }

    #[test]
    fn unlike_mq_popular_entries_are_not_protected() {
        // The motivating flaw (Fig 6): a popular value at the LRU head
        // is evicted by a burst of cold insertions.
        let mut p = LruDeadValuePool::new(3);
        p.insert_dead(
            fp(1),
            Ppn::new(1),
            Lpn::new(1),
            PopularityDegree::new(200),
            WriteClock::from_count(1),
        );
        for v in 2..=4u64 {
            insert(&mut p, v, v, v);
        }
        assert_eq!(
            p.take_match(fp(1), WriteClock::from_count(9)),
            None,
            "LRU evicted the popular value"
        );
    }

    #[test]
    fn gc_removal_and_weight() {
        let mut p = LruDeadValuePool::new(4);
        p.insert_dead(
            fp(1),
            Ppn::new(1),
            Lpn::new(1),
            PopularityDegree::new(5),
            WriteClock::from_count(1),
        );
        assert_eq!(
            p.garbage_weight(Ppn::new(1)),
            Some(PopularityDegree::new(5))
        );
        p.remove_ppn(Ppn::new(1));
        assert!(p.is_empty());
        assert_eq!(p.garbage_weight(Ppn::new(1)), None);
        p.remove_ppn(Ppn::new(1)); // idempotent
        assert_eq!(p.stats().gc_removals, 1);
    }

    #[test]
    fn capacity_is_reported() {
        let p = LruDeadValuePool::new(7);
        assert_eq!(p.capacity(), Some(7));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = LruDeadValuePool::new(0);
    }
}
