//! The evaluated system configurations (§V "Studied Configurations").

use core::fmt;

/// Which system an experiment runs — the paper's four configurations
/// plus the LRU strawman and the LX-SSD prior-work comparator.
///
/// Pool sizes are in *entries* (hashes); the paper's default sweep is
/// 100 K–300 K with 200 K as the headline point (~5 MB of RAM).
///
/// # Examples
///
/// ```
/// use zssd_core::SystemKind;
/// let sys = SystemKind::MqDvp { entries: 200_000 };
/// assert!(sys.uses_hashing());
/// assert_eq!(sys.label(), "DVP-200K");
/// assert!(!SystemKind::Baseline.uses_hashing());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Stock FTL: no content awareness at all.
    Baseline,
    /// The paper's proposal: MQ dead-value pool.
    MqDvp {
        /// Pool capacity in entries.
        entries: usize,
    },
    /// The §III-A strawman: single-LRU dead-value pool.
    LruDvp {
        /// Pool capacity in entries.
        entries: usize,
    },
    /// Content deduplication only (CAFTL-style), no recycling.
    Dedup,
    /// Deduplication with the MQ dead-value pool on top (§VII).
    DvpPlusDedup {
        /// Pool capacity in entries.
        entries: usize,
    },
    /// Infinite pool: the upper bound on recycling benefit.
    Ideal,
    /// The prior-work recycler (Zhou et al.).
    LxSsd {
        /// Pool capacity in entries.
        entries: usize,
    },
    /// The MQ pool with the self-sizing controller (the paper's §V
    /// future work, implemented in
    /// [`AdaptiveMqPool`](crate::AdaptiveMqPool)).
    AdaptiveDvp {
        /// Smallest allowed capacity (entries).
        min_entries: usize,
        /// Largest allowed capacity (entries).
        max_entries: usize,
    },
}

impl SystemKind {
    /// Whether the write path computes content hashes (and therefore
    /// pays the 12 µs hash-engine latency of Table I).
    pub fn uses_hashing(self) -> bool {
        !matches!(self, SystemKind::Baseline)
    }

    /// Whether the system deduplicates live values.
    pub fn uses_dedup(self) -> bool {
        matches!(self, SystemKind::Dedup | SystemKind::DvpPlusDedup { .. })
    }

    /// Whether the system recycles garbage pages.
    pub fn uses_pool(self) -> bool {
        !matches!(self, SystemKind::Baseline | SystemKind::Dedup)
    }

    /// Pool capacity in entries, if the system has a *fixed* bounded
    /// pool (`None` for Ideal and the adaptive pool).
    pub fn pool_entries(self) -> Option<usize> {
        match self {
            SystemKind::MqDvp { entries }
            | SystemKind::LruDvp { entries }
            | SystemKind::DvpPlusDedup { entries }
            | SystemKind::LxSsd { entries } => Some(entries),
            _ => None,
        }
    }

    /// A short label for experiment tables ("DVP-200K", "Dedup", ...).
    pub fn label(self) -> String {
        fn k(entries: usize) -> String {
            if entries.is_multiple_of(1000) {
                format!("{}K", entries / 1000)
            } else {
                entries.to_string()
            }
        }
        match self {
            SystemKind::Baseline => "Baseline".to_owned(),
            SystemKind::MqDvp { entries } => format!("DVP-{}", k(entries)),
            SystemKind::LruDvp { entries } => format!("LRU-DVP-{}", k(entries)),
            SystemKind::Dedup => "Dedup".to_owned(),
            SystemKind::DvpPlusDedup { entries } => format!("DVP+Dedup-{}", k(entries)),
            SystemKind::Ideal => "Ideal".to_owned(),
            SystemKind::LxSsd { entries } => format!("LX-SSD-{}", k(entries)),
            SystemKind::AdaptiveDvp {
                min_entries,
                max_entries,
            } => format!("ADVP-{}..{}", k(min_entries), k(max_entries)),
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_matches_paper() {
        assert!(!SystemKind::Baseline.uses_hashing());
        assert!(!SystemKind::Baseline.uses_pool());
        assert!(!SystemKind::Baseline.uses_dedup());

        let dvp = SystemKind::MqDvp { entries: 200_000 };
        assert!(dvp.uses_hashing() && dvp.uses_pool() && !dvp.uses_dedup());

        assert!(SystemKind::Dedup.uses_dedup());
        assert!(!SystemKind::Dedup.uses_pool());

        let combo = SystemKind::DvpPlusDedup { entries: 200_000 };
        assert!(combo.uses_dedup() && combo.uses_pool());

        assert!(SystemKind::Ideal.uses_pool());
        assert_eq!(SystemKind::Ideal.pool_entries(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SystemKind::Baseline.label(), "Baseline");
        assert_eq!(SystemKind::MqDvp { entries: 100_000 }.label(), "DVP-100K");
        assert_eq!(SystemKind::LxSsd { entries: 1234 }.label(), "LX-SSD-1234");
        assert_eq!(
            SystemKind::DvpPlusDedup { entries: 200_000 }.to_string(),
            "DVP+Dedup-200K"
        );
    }

    #[test]
    fn pool_entries_extracted() {
        assert_eq!(SystemKind::LruDvp { entries: 5 }.pool_entries(), Some(5));
        assert_eq!(SystemKind::Baseline.pool_entries(), None);
    }
}
