//! The [`DeadValuePool`] trait and shared statistics.

use core::fmt;

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

/// Counters shared by every pool implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Write lookups that found (and consumed) a matching garbage page.
    pub hits: u64,
    /// Write lookups that found nothing.
    pub misses: u64,
    /// Dead pages offered to the pool.
    pub insertions: u64,
    /// Entries evicted because the pool was full.
    pub evictions: u64,
    /// PPNs dropped because GC erased them.
    pub gc_removals: u64,
    /// MQ promotions between queues (0 for non-MQ pools).
    pub promotions: u64,
    /// MQ demotions between queues (0 for non-MQ pools).
    pub demotions: u64,
}

impl PoolStats {
    /// Hit ratio over all lookups, 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.1}%) ins={} evict={} gc={} promo={} demo={}",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.insertions,
            self.evictions,
            self.gc_removals,
            self.promotions,
            self.demotions
        )
    }
}

/// A buffer of dead values: content hashes of garbage pages and the
/// physical pages that still hold them.
///
/// All methods take the paper's logical clock (`now` = number of write
/// requests issued so far, §IV-A); implementations use it for recency,
/// expiration, and interval bookkeeping.
///
/// # Contract
///
/// * After `insert_dead(fp, ppn, ..)` and until `ppn` is returned by
///   [`take_match`](DeadValuePool::take_match) or dropped by
///   [`remove_ppn`](DeadValuePool::remove_ppn) or eviction, the pool
///   *may* return `ppn` from a lookup of `fp`.
/// * A PPN is returned by `take_match` **at most once** — the FTL
///   revives it, so it is no longer garbage.
/// * [`remove_ppn`](DeadValuePool::remove_ppn) must be called when GC
///   erases a tracked page, and is idempotent.
pub trait DeadValuePool: fmt::Debug {
    /// Looks up the hash of an incoming write. On a hit, removes and
    /// returns one garbage PPN holding that content (the FTL will
    /// revive it). Entries with multiple PPNs surrender one per call.
    fn take_match(&mut self, fp: Fingerprint, now: WriteClock) -> Option<Ppn>;

    /// Offers a freshly dead page to the pool. `lpn` is the logical
    /// page whose update killed it (used only by address-based
    /// policies such as LX-SSD); `pop` is the value's popularity degree
    /// from the mapping table.
    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        lpn: Lpn,
        pop: PopularityDegree,
        now: WriteClock,
    );

    /// Drops a PPN whose block GC erased. Idempotent; untracked PPNs
    /// are ignored.
    fn remove_ppn(&mut self, ppn: Ppn);

    /// Popularity degree of a tracked garbage page, or `None` if the
    /// page is not in the pool. Queried by the popularity-aware GC
    /// victim selector (§IV-D).
    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree>;

    /// Notifies the pool of a host access (read or write) to a logical
    /// page. Only address-recency policies (LX-SSD) react; the paper's
    /// pool deliberately ignores reads (footnote 3).
    fn note_lpn_access(&mut self, _lpn: Lpn, _now: WriteClock) {}

    /// Number of distinct hash entries currently buffered.
    fn len(&self) -> usize;

    /// Whether the pool is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of garbage PPNs currently tracked (≥ [`len`](DeadValuePool::len)).
    fn tracked_ppns(&self) -> usize;

    /// Entry capacity, or `None` for unbounded pools.
    fn capacity(&self) -> Option<usize>;

    /// Shared statistics.
    fn stats(&self) -> PoolStats;
}

/// The null pool used by the *Baseline* system: never matches, never
/// stores.
///
/// # Examples
///
/// ```
/// use zssd_core::{DeadValuePool, NoPool};
/// use zssd_types::{Fingerprint, ValueId, WriteClock};
///
/// let mut pool = NoPool::new();
/// let fp = Fingerprint::of_value(ValueId::new(1));
/// assert_eq!(pool.take_match(fp, WriteClock::ZERO), None);
/// assert_eq!(pool.capacity(), Some(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoPool {
    stats: PoolStats,
}

impl NoPool {
    /// Creates the null pool.
    pub fn new() -> Self {
        NoPool::default()
    }
}

impl DeadValuePool for NoPool {
    fn take_match(&mut self, _fp: Fingerprint, _now: WriteClock) -> Option<Ppn> {
        self.stats.misses += 1;
        None
    }

    fn insert_dead(
        &mut self,
        _fp: Fingerprint,
        _ppn: Ppn,
        _lpn: Lpn,
        _pop: PopularityDegree,
        _now: WriteClock,
    ) {
    }

    fn remove_ppn(&mut self, _ppn: Ppn) {}

    fn garbage_weight(&self, _ppn: Ppn) -> Option<PopularityDegree> {
        None
    }

    fn len(&self) -> usize {
        0
    }

    fn tracked_ppns(&self) -> usize {
        0
    }

    fn capacity(&self) -> Option<usize> {
        Some(0)
    }

    fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    #[test]
    fn no_pool_never_matches() {
        let mut pool = NoPool::new();
        let fp = Fingerprint::of_value(ValueId::new(1));
        pool.insert_dead(
            fp,
            Ppn::new(1),
            Lpn::new(1),
            PopularityDegree::ZERO,
            WriteClock::ZERO,
        );
        assert_eq!(pool.take_match(fp, WriteClock::ZERO), None);
        assert!(pool.is_empty());
        assert_eq!(pool.tracked_ppns(), 0);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.garbage_weight(Ppn::new(1)), None);
    }

    #[test]
    fn hit_ratio_handles_empty_and_mixed() {
        let mut s = PoolStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.hit_ratio(), 0.75);
        assert!(s.to_string().contains("75.0%"));
    }
}
