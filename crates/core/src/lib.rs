//! Dead-value pools — the core contribution of *Reviving Zombie Pages
//! on SSDs* (IISWC 2018).
//!
//! When an out-of-place update invalidates a flash page, its content
//! does not disappear: the page keeps holding a dead copy of the value
//! until GC erases the block. This crate implements the paper's
//! **dead-value pool**: a small buffer of `(16-byte content hash →
//! garbage PPNs)` entries kept in controller RAM. An incoming write
//! whose hash hits the pool is *short-circuited* — the matching garbage
//! page is flipped back to valid and no NAND program happens.
//!
//! Four pool policies are provided behind the [`DeadValuePool`] trait:
//!
//! * [`MqDeadValuePool`] — the paper's design (§III-IV): the
//!   Multi-Queue algorithm with one LRU queue per popularity band,
//!   `log2(pop+1)` promotion, expiration-driven demotion, and
//!   on-demand eviction from the lowest queue,
//! * [`LruDeadValuePool`] — the single-queue strawman of §III-A
//!   (recency only, no popularity),
//! * [`IdealPool`] — unbounded, the paper's *Ideal* upper bound,
//! * [`LxSsdPool`] — the prior-work baseline (Zhou et al., LX-SSD):
//!   recency of the *logical address* rather than of the value, and
//!   read accesses refresh recency too — precisely the two design
//!   choices the paper critiques.
//!
//! The pools are pure data structures over
//! [`WriteClock`](zssd_types::WriteClock) logical time; the FTL crate
//! wires them into the write path, and the GC layer queries
//! [`DeadValuePool::garbage_weight`] to keep popular zombies alive
//! longer (§IV-D).
//!
//! # Examples
//!
//! ```
//! use zssd_core::{DeadValuePool, MqConfig, MqDeadValuePool};
//! use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};
//!
//! let mut pool = MqDeadValuePool::new(MqConfig::default());
//! let fp = Fingerprint::of_value(ValueId::new(7));
//! let mut clock = WriteClock::ZERO;
//!
//! // A page holding value 7 dies...
//! let now = clock.tick();
//! pool.insert_dead(fp, Ppn::new(42), Lpn::new(3), PopularityDegree::new(2), now);
//!
//! // ...and a later write of value 7 revives it.
//! let now = clock.tick();
//! assert_eq!(pool.take_match(fp, now), Some(Ppn::new(42)));
//! assert_eq!(pool.take_match(fp, now), None); // consumed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod ideal;
mod intrusive;
mod lru;
mod lxssd;
mod mq;
mod pool;
mod system;

pub use adaptive::{AdaptiveConfig, AdaptiveMqPool};
pub use ideal::IdealPool;
pub use lru::LruDeadValuePool;
pub use lxssd::{LxSsdConfig, LxSsdPool};
pub use mq::{MqConfig, MqDeadValuePool};
pub use pool::{DeadValuePool, NoPool, PoolStats};
pub use system::SystemKind;
