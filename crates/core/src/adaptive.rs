//! Self-sizing MQ pool — the paper's stated future work.
//!
//! "In the future, we are planning to add more capabilities to our
//! design, such as dynamically tuning the total capacity for MQ, in
//! order to adapt itself to any changes in the workload." (§V
//! footnote 5.)
//!
//! [`AdaptiveMqPool`] wraps [`MqDeadValuePool`] and re-sizes it at
//! epoch boundaries (every `epoch` write events) with a simple
//! multiplicative-increase / multiplicative-decrease controller:
//!
//! * if the epoch saw capacity pressure (evictions) *and* a healthy
//!   hit ratio, the pool grows — the workload rewards more entries;
//! * if the hit ratio stayed poor despite the current size, the pool
//!   shrinks — RAM is better returned to the rest of the controller.

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

use crate::mq::{MqConfig, MqDeadValuePool};
use crate::pool::{DeadValuePool, PoolStats};

/// Configuration of the [`AdaptiveMqPool`] controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Smallest allowed capacity (entries).
    pub min_entries: usize,
    /// Largest allowed capacity (entries).
    pub max_entries: usize,
    /// Initial capacity (entries).
    pub initial_entries: usize,
    /// Write events (lookups + insertions) per adaptation epoch.
    pub epoch: u64,
    /// Grow/shrink factor applied at epoch boundaries.
    pub factor: f64,
    /// Hit ratio above which pressure triggers growth.
    pub grow_threshold: f64,
    /// Hit ratio below which the pool shrinks.
    pub shrink_threshold: f64,
}

impl AdaptiveConfig {
    /// Defaults spanning the paper's sweep: 50 K–400 K entries around
    /// the 200 K operating point.
    pub fn paper_default() -> Self {
        AdaptiveConfig {
            min_entries: 50_000,
            max_entries: 400_000,
            initial_entries: 200_000,
            epoch: 100_000,
            factor: 1.5,
            grow_threshold: 0.05,
            shrink_threshold: 0.01,
        }
    }

    /// Validates the controller bounds.
    fn checked(self) -> Self {
        assert!(self.min_entries > 0, "min_entries must be nonzero");
        assert!(
            self.min_entries <= self.initial_entries && self.initial_entries <= self.max_entries,
            "need min <= initial <= max"
        );
        assert!(self.epoch > 0, "epoch must be nonzero");
        assert!(self.factor > 1.0, "factor must exceed 1");
        assert!(
            self.shrink_threshold <= self.grow_threshold,
            "shrink threshold must not exceed grow threshold"
        );
        self
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::paper_default()
    }
}

/// An [`MqDeadValuePool`] that re-sizes itself per workload phase.
///
/// # Examples
///
/// ```
/// use zssd_core::{AdaptiveConfig, AdaptiveMqPool, DeadValuePool};
///
/// let pool = AdaptiveMqPool::new(AdaptiveConfig {
///     min_entries: 100,
///     max_entries: 1000,
///     initial_entries: 200,
///     epoch: 50,
///     ..AdaptiveConfig::paper_default()
/// });
/// assert_eq!(pool.capacity(), Some(200));
/// ```
#[derive(Debug)]
pub struct AdaptiveMqPool {
    cfg: AdaptiveConfig,
    inner: MqDeadValuePool,
    events_in_epoch: u64,
    epoch_hits: u64,
    epoch_lookups: u64,
    epoch_evictions_start: u64,
    resizes: u64,
}

impl AdaptiveMqPool {
    /// Creates the pool at its initial capacity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration bounds are inconsistent.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        let cfg = cfg.checked();
        AdaptiveMqPool {
            inner: MqDeadValuePool::new(
                MqConfig::paper_default().with_capacity(cfg.initial_entries),
            ),
            events_in_epoch: 0,
            epoch_hits: 0,
            epoch_lookups: 0,
            epoch_evictions_start: 0,
            resizes: 0,
            cfg,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Current capacity in entries.
    pub fn current_capacity(&self) -> usize {
        self.inner.config().capacity
    }

    /// Number of capacity changes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    fn on_event(&mut self) {
        self.events_in_epoch += 1;
        if self.events_in_epoch < self.cfg.epoch {
            return;
        }
        let hit_ratio = if self.epoch_lookups == 0 {
            0.0
        } else {
            self.epoch_hits as f64 / self.epoch_lookups as f64
        };
        let pressured = self.inner.stats().evictions > self.epoch_evictions_start;
        let current = self.current_capacity();
        let target = if pressured && hit_ratio >= self.cfg.grow_threshold {
            ((current as f64 * self.cfg.factor) as usize).min(self.cfg.max_entries)
        } else if hit_ratio < self.cfg.shrink_threshold {
            ((current as f64 / self.cfg.factor) as usize).max(self.cfg.min_entries)
        } else {
            current
        };
        if target != current {
            self.inner.set_capacity(target);
            self.resizes += 1;
        }
        self.events_in_epoch = 0;
        self.epoch_hits = 0;
        self.epoch_lookups = 0;
        self.epoch_evictions_start = self.inner.stats().evictions;
    }
}

impl DeadValuePool for AdaptiveMqPool {
    fn take_match(&mut self, fp: Fingerprint, now: WriteClock) -> Option<Ppn> {
        let result = self.inner.take_match(fp, now);
        self.epoch_lookups += 1;
        if result.is_some() {
            self.epoch_hits += 1;
        }
        self.on_event();
        result
    }

    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        lpn: Lpn,
        pop: PopularityDegree,
        now: WriteClock,
    ) {
        self.inner.insert_dead(fp, ppn, lpn, pop, now);
        self.on_event();
    }

    fn remove_ppn(&mut self, ppn: Ppn) {
        self.inner.remove_ppn(ppn);
    }

    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree> {
        self.inner.garbage_weight(ppn)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tracked_ppns(&self) -> usize {
        self.inner.tracked_ppns()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.current_capacity())
    }

    fn stats(&self) -> PoolStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            min_entries: 4,
            max_entries: 64,
            initial_entries: 8,
            epoch: 16,
            factor: 2.0,
            grow_threshold: 0.05,
            shrink_threshold: 0.01,
        }
    }

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    #[test]
    fn grows_under_pressure_with_hits() {
        let mut pool = AdaptiveMqPool::new(cfg());
        let mut clock = WriteClock::ZERO;
        // Four hot values that MQ retains (steady hits) plus a churn
        // stream of cold uniques (steady evictions): pressure + hits
        // is the grow signal.
        let mut cold = 1_000u64;
        for round in 0..60u64 {
            for v in 0..4u64 {
                let now = clock.tick();
                let _ = pool.take_match(fp(v), now);
                // Two dead copies per round: the second access promotes
                // the entry out of Q0, so the cold flood below cannot
                // evict it (that is MQ working as designed).
                pool.insert_dead(
                    fp(v),
                    Ppn::new(round * 100 + v),
                    Lpn::new(v),
                    PopularityDegree::new(7),
                    now,
                );
                pool.insert_dead(
                    fp(v),
                    Ppn::new(round * 100 + 50 + v),
                    Lpn::new(v),
                    PopularityDegree::new(7),
                    now,
                );
            }
            for _ in 0..8 {
                cold += 1;
                let now = clock.tick();
                pool.insert_dead(
                    fp(cold),
                    Ppn::new(cold + 1_000_000),
                    Lpn::new(cold),
                    PopularityDegree::ZERO,
                    now,
                );
            }
        }
        assert!(
            pool.current_capacity() > 8,
            "pressured pool must grow (capacity {})",
            pool.current_capacity()
        );
        assert!(pool.resizes() > 0);
    }

    #[test]
    fn shrinks_when_hits_dry_up() {
        let mut pool = AdaptiveMqPool::new(AdaptiveConfig {
            initial_entries: 64,
            ..cfg()
        });
        let mut clock = WriteClock::ZERO;
        // Unique values only: zero hits forever.
        for v in 0..500u64 {
            let now = clock.tick();
            let _ = pool.take_match(fp(1_000_000 + v), now);
            pool.insert_dead(fp(v), Ppn::new(v), Lpn::new(v), PopularityDegree::ZERO, now);
        }
        assert_eq!(pool.current_capacity(), 4, "no-hit pool shrinks to min");
    }

    #[test]
    fn capacity_stays_within_bounds() {
        let mut pool = AdaptiveMqPool::new(cfg());
        let mut clock = WriteClock::ZERO;
        for round in 0..200u64 {
            for v in 0..30u64 {
                let now = clock.tick();
                let _ = pool.take_match(fp(v), now);
                pool.insert_dead(
                    fp(v),
                    Ppn::new(round * 1000 + v),
                    Lpn::new(v),
                    PopularityDegree::new(5),
                    now,
                );
                let cap = pool.current_capacity();
                assert!((4..=64).contains(&cap));
            }
        }
        assert_eq!(pool.capacity(), Some(pool.current_capacity()));
    }

    #[test]
    fn delegates_pool_behaviour() {
        let mut pool = AdaptiveMqPool::new(cfg());
        pool.insert_dead(
            fp(1),
            Ppn::new(1),
            Lpn::new(1),
            PopularityDegree::new(2),
            WriteClock::from_count(1),
        );
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.tracked_ppns(), 1);
        assert_eq!(
            pool.garbage_weight(Ppn::new(1)),
            Some(PopularityDegree::new(2))
        );
        pool.remove_ppn(Ppn::new(1));
        assert!(pool.is_empty());
        assert_eq!(pool.stats().gc_removals, 1);
    }

    #[test]
    #[should_panic(expected = "min <= initial <= max")]
    fn bad_bounds_rejected() {
        let _ = AdaptiveMqPool::new(AdaptiveConfig {
            min_entries: 10,
            initial_entries: 5,
            ..cfg()
        });
    }
}
