//! The unbounded pool backing the paper's *Ideal* system (§V).
//!
//! "Ideal uses infinite size for dead-value pool. This system is not
//! practical to implement in the real SSDs but is used for the sake of
//! comparison to provide insights on the maximum achievable
//! performance gain by recycling garbage pages."

use zssd_types::FxHashMap;

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

use crate::pool::{DeadValuePool, PoolStats};

#[derive(Debug, Clone)]
struct Entry {
    ppns: Vec<Ppn>,
    pop: PopularityDegree,
}

/// An unbounded dead-value pool: every dead page stays tracked until
/// it is reused or erased by GC.
///
/// # Examples
///
/// ```
/// use zssd_core::{DeadValuePool, IdealPool};
/// use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};
///
/// let mut pool = IdealPool::new();
/// assert_eq!(pool.capacity(), None); // unbounded
/// let fp = Fingerprint::of_value(ValueId::new(1));
/// pool.insert_dead(fp, Ppn::new(1), Lpn::new(0), PopularityDegree::ZERO, WriteClock::ZERO);
/// assert_eq!(pool.take_match(fp, WriteClock::ZERO), Some(Ppn::new(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdealPool {
    by_fp: FxHashMap<Fingerprint, Entry>,
    by_ppn: FxHashMap<Ppn, Fingerprint>,
    stats: PoolStats,
}

impl IdealPool {
    /// Creates an empty unbounded pool.
    pub fn new() -> Self {
        IdealPool::default()
    }
}

impl DeadValuePool for IdealPool {
    fn take_match(&mut self, fp: Fingerprint, _now: WriteClock) -> Option<Ppn> {
        let Some(entry) = self.by_fp.get_mut(&fp) else {
            self.stats.misses += 1;
            return None;
        };
        entry.pop.increment();
        let ppn = entry.ppns.pop().expect("entries always track >= 1 ppn");
        if entry.ppns.is_empty() {
            self.by_fp.remove(&fp);
        }
        self.by_ppn.remove(&ppn);
        self.stats.hits += 1;
        Some(ppn)
    }

    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        _lpn: Lpn,
        pop: PopularityDegree,
        _now: WriteClock,
    ) {
        if self.by_ppn.contains_key(&ppn) {
            return;
        }
        self.stats.insertions += 1;
        let entry = self.by_fp.entry(fp).or_insert_with(|| Entry {
            ppns: Vec::new(),
            pop,
        });
        entry.ppns.push(ppn);
        if pop > entry.pop {
            entry.pop = pop;
        }
        self.by_ppn.insert(ppn, fp);
    }

    fn remove_ppn(&mut self, ppn: Ppn) {
        let Some(fp) = self.by_ppn.remove(&ppn) else {
            return;
        };
        self.stats.gc_removals += 1;
        let entry = self.by_fp.get_mut(&fp).expect("indexes consistent");
        let pos = entry
            .ppns
            .iter()
            .position(|&p| p == ppn)
            .expect("ppn tracked by its entry");
        entry.ppns.swap_remove(pos);
        if entry.ppns.is_empty() {
            self.by_fp.remove(&fp);
        }
    }

    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree> {
        let fp = self.by_ppn.get(&ppn)?;
        self.by_fp.get(fp).map(|e| e.pop)
    }

    fn len(&self) -> usize {
        self.by_fp.len()
    }

    fn tracked_ppns(&self) -> usize {
        self.by_ppn.len()
    }

    fn capacity(&self) -> Option<usize> {
        None
    }

    fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    #[test]
    fn never_evicts() {
        let mut p = IdealPool::new();
        for v in 0..10_000u64 {
            p.insert_dead(
                fp(v),
                Ppn::new(v),
                Lpn::new(v),
                PopularityDegree::ZERO,
                WriteClock::ZERO,
            );
        }
        assert_eq!(p.len(), 10_000);
        assert_eq!(p.stats().evictions, 0);
        assert!(p.take_match(fp(0), WriteClock::ZERO).is_some());
    }

    #[test]
    fn gc_removal_shrinks_pool() {
        let mut p = IdealPool::new();
        p.insert_dead(
            fp(1),
            Ppn::new(1),
            Lpn::new(1),
            PopularityDegree::new(3),
            WriteClock::ZERO,
        );
        p.insert_dead(
            fp(1),
            Ppn::new(2),
            Lpn::new(1),
            PopularityDegree::new(4),
            WriteClock::ZERO,
        );
        assert_eq!(
            p.garbage_weight(Ppn::new(1)),
            Some(PopularityDegree::new(4))
        );
        p.remove_ppn(Ppn::new(1));
        p.remove_ppn(Ppn::new(2));
        assert!(p.is_empty());
        assert_eq!(p.tracked_ppns(), 0);
    }

    #[test]
    fn miss_is_counted() {
        let mut p = IdealPool::new();
        assert_eq!(p.take_match(fp(5), WriteClock::ZERO), None);
        assert_eq!(p.stats().misses, 1);
    }
}
