//! A slab of entries threaded through intrusive doubly-linked lists.
//!
//! The MQ and LRU pools need O(1) detach-from-middle (on hits and
//! promotions) as well as O(1) push-tail / pop-head, across *multiple*
//! queues whose membership changes. A slab with intrusive prev/next
//! links gives all of that without per-node allocation.

/// Index of a slot in the slab.
pub(crate) type SlotId = u32;

#[derive(Debug, Clone)]
struct Slot<T> {
    data: T,
    prev: Option<SlotId>,
    next: Option<SlotId>,
}

/// A growable arena of list nodes with a free list.
#[derive(Debug, Clone)]
pub(crate) struct Slab<T> {
    slots: Vec<Option<Slot<T>>>,
    free: Vec<SlotId>,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn insert(&mut self, data: T) -> SlotId {
        self.len += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(Slot {
                data,
                prev: None,
                next: None,
            });
            id
        } else {
            let id = self.slots.len() as SlotId;
            self.slots.push(Some(Slot {
                data,
                prev: None,
                next: None,
            }));
            id
        }
    }

    /// Removes a slot, returning its data. The slot must not be linked
    /// into any list (detach it first).
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub(crate) fn remove(&mut self, id: SlotId) -> T {
        let slot = self.slots[id as usize].take().expect("slot occupied");
        debug_assert!(
            slot.prev.is_none() && slot.next.is_none(),
            "slot still linked"
        );
        self.free.push(id);
        self.len -= 1;
        slot.data
    }

    pub(crate) fn get(&self, id: SlotId) -> &T {
        &self.slots[id as usize]
            .as_ref()
            .expect("slot occupied")
            .data
    }

    pub(crate) fn get_mut(&mut self, id: SlotId) -> &mut T {
        &mut self.slots[id as usize]
            .as_mut()
            .expect("slot occupied")
            .data
    }
}

/// Head/tail of one intrusive list over a [`Slab`].
///
/// Head is the LRU end (pop side); tail is the MRU end (push side).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ListHandle {
    head: Option<SlotId>,
    tail: Option<SlotId>,
    len: usize,
}

impl ListHandle {
    pub(crate) fn new() -> Self {
        ListHandle::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg_attr(not(test), allow(dead_code))] // exercised by the list tests
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn head(&self) -> Option<SlotId> {
        self.head
    }

    /// Appends a (detached) slot at the tail (MRU position).
    pub(crate) fn push_tail<T>(&mut self, slab: &mut Slab<T>, id: SlotId) {
        let old_tail = self.tail;
        {
            let slot = slab.slots[id as usize].as_mut().expect("slot occupied");
            debug_assert!(
                slot.prev.is_none() && slot.next.is_none(),
                "slot already linked"
            );
            slot.prev = old_tail;
            slot.next = None;
        }
        match old_tail {
            Some(t) => {
                slab.slots[t as usize].as_mut().expect("slot occupied").next = Some(id);
            }
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        self.len += 1;
    }

    /// Unlinks a slot from anywhere in this list.
    pub(crate) fn detach<T>(&mut self, slab: &mut Slab<T>, id: SlotId) {
        let (prev, next) = {
            let slot = slab.slots[id as usize].as_mut().expect("slot occupied");
            let links = (slot.prev, slot.next);
            slot.prev = None;
            slot.next = None;
            links
        };
        match prev {
            Some(p) => slab.slots[p as usize].as_mut().expect("slot occupied").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => slab.slots[n as usize].as_mut().expect("slot occupied").prev = prev,
            None => self.tail = prev,
        }
        self.len -= 1;
    }

    /// Removes and returns the head (LRU) slot id, if any.
    pub(crate) fn pop_head<T>(&mut self, slab: &mut Slab<T>) -> Option<SlotId> {
        let id = self.head?;
        self.detach(slab, id);
        Some(id)
    }

    /// Iterates slot ids from head (LRU) to tail (MRU).
    #[cfg_attr(not(test), allow(dead_code))] // exercised by the list tests
    pub(crate) fn iter<'a, T>(&self, slab: &'a Slab<T>) -> ListIter<'a, T> {
        ListIter {
            slab,
            cursor: self.head,
        }
    }
}

#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct ListIter<'a, T> {
    slab: &'a Slab<T>,
    cursor: Option<SlotId>,
}

impl<T> Iterator for ListIter<'_, T> {
    type Item = SlotId;

    fn next(&mut self) -> Option<SlotId> {
        let id = self.cursor?;
        self.cursor = self.slab.slots[id as usize]
            .as_ref()
            .expect("slot occupied")
            .next;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut slab = Slab::with_capacity(4);
        let mut list = ListHandle::new();
        for v in 0..4 {
            let id = slab.insert(v);
            list.push_tail(&mut slab, id);
        }
        assert_eq!(list.len(), 4);
        let mut order = Vec::new();
        while let Some(id) = list.pop_head(&mut slab) {
            order.push(slab.remove(id));
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(list.is_empty());
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn detach_from_middle_relinks() {
        let mut slab = Slab::with_capacity(3);
        let mut list = ListHandle::new();
        let ids: Vec<SlotId> = (0..3).map(|v| slab.insert(v)).collect();
        for &id in &ids {
            list.push_tail(&mut slab, id);
        }
        list.detach(&mut slab, ids[1]);
        let remaining: Vec<i32> = list.iter(&slab).map(|id| *slab.get(id)).collect();
        assert_eq!(remaining, vec![0, 2]);
        // Detached slot can be pushed again (becomes MRU).
        list.push_tail(&mut slab, ids[1]);
        let now: Vec<i32> = list.iter(&slab).map(|id| *slab.get(id)).collect();
        assert_eq!(now, vec![0, 2, 1]);
    }

    #[test]
    fn detach_head_and_tail_update_ends() {
        let mut slab = Slab::with_capacity(2);
        let mut list = ListHandle::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        list.push_tail(&mut slab, a);
        list.push_tail(&mut slab, b);
        list.detach(&mut slab, b); // tail
        assert_eq!(list.head(), Some(a));
        list.detach(&mut slab, a); // head == tail
        assert!(list.is_empty());
        assert_eq!(list.pop_head(&mut slab), None);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut slab: Slab<u8> = Slab::with_capacity(1);
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        assert_eq!(a, b, "freed slot is recycled");
        assert_eq!(*slab.get(b), 2);
        *slab.get_mut(b) = 9;
        assert_eq!(*slab.get(b), 9);
    }

    #[test]
    fn entries_move_between_lists() {
        let mut slab = Slab::with_capacity(2);
        let mut q0 = ListHandle::new();
        let mut q1 = ListHandle::new();
        let id = slab.insert(7);
        q0.push_tail(&mut slab, id);
        q0.detach(&mut slab, id);
        q1.push_tail(&mut slab, id);
        assert!(q0.is_empty());
        assert_eq!(q1.len(), 1);
        assert_eq!(q1.head(), Some(id));
    }
}
