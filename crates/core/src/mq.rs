//! The Multi-Queue dead-value pool (§III-B, §IV of the paper).

use zssd_types::FxHashMap;

use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, WriteClock};

use crate::intrusive::{ListHandle, Slab, SlotId};
use crate::pool::{DeadValuePool, PoolStats};

/// Configuration of the [`MqDeadValuePool`].
///
/// The paper's evaluated point is **8 queues, 200 K entries** (~5 MB of
/// controller RAM); Fig 9 sweeps 100 K–300 K.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MqConfig {
    /// Number of LRU queues (popularity bands).
    pub num_queues: usize,
    /// Maximum number of hash entries.
    pub capacity: usize,
    /// Expiration interval (in writes) used until the pool has observed
    /// a re-access interval of its hottest entry (§IV-C: `ExpTime =
    /// CurrentTime + HottestInterval`).
    pub initial_hottest_interval: u64,
}

impl MqConfig {
    /// The paper's configuration: 8 queues, 200 K entries.
    pub fn paper_default() -> Self {
        MqConfig {
            num_queues: 8,
            capacity: 200_000,
            initial_hottest_interval: 25_000,
        }
    }

    /// Same policy with a different entry capacity (the Fig 9 sweep).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self.initial_hottest_interval = (capacity as u64 / 8).max(1024);
        self
    }

    /// Same policy with a different queue count (queue-count ablation).
    pub fn with_queues(mut self, num_queues: usize) -> Self {
        self.num_queues = num_queues;
        self
    }
}

impl Default for MqConfig {
    fn default() -> Self {
        MqConfig::paper_default()
    }
}

#[derive(Debug, Clone)]
struct Entry {
    fp: Fingerprint,
    /// Garbage pages currently holding this value, most recent death
    /// last. A hit surrenders the most recently dead copy.
    ppns: Vec<Ppn>,
    pop: PopularityDegree,
    expire: WriteClock,
    last_access: WriteClock,
    queue: u8,
}

/// The paper's dead-value pool: one LRU queue per popularity band.
///
/// * Frequency is handled by queue placement: an entry whose
///   popularity degree `d` satisfies `log2(d+1) >` its queue index is
///   promoted one queue up on access (§IV-C).
/// * Recency is handled inside each queue by LRU order.
/// * Aging is handled by expiration: on every death insertion, the head
///   of each queue is demoted one queue down if its expiration time
///   (`now + hottest_interval` at last access) has passed.
/// * Capacity overflow evicts the LRU head of the lowest non-empty
///   queue, on demand (§IV-C "Eviction").
///
/// # Examples
///
/// ```
/// use zssd_core::{DeadValuePool, MqConfig, MqDeadValuePool};
/// use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};
///
/// let mut pool = MqDeadValuePool::new(MqConfig::default().with_capacity(1000));
/// let fp = Fingerprint::of_value(ValueId::new(1));
/// pool.insert_dead(fp, Ppn::new(10), Lpn::new(0), PopularityDegree::new(5),
///                  WriteClock::from_count(1));
/// assert_eq!(pool.len(), 1);
/// assert_eq!(pool.take_match(fp, WriteClock::from_count(2)), Some(Ppn::new(10)));
/// assert!(pool.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MqDeadValuePool {
    cfg: MqConfig,
    slab: Slab<Entry>,
    queues: Vec<ListHandle>,
    by_fp: FxHashMap<Fingerprint, SlotId>,
    by_ppn: FxHashMap<Ppn, SlotId>,
    hottest_pop: PopularityDegree,
    hottest_interval: u64,
    stats: PoolStats,
}

impl MqDeadValuePool {
    /// Creates an empty pool.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` or `capacity` is zero.
    pub fn new(cfg: MqConfig) -> Self {
        assert!(cfg.num_queues > 0, "MQ needs at least one queue");
        assert!(cfg.capacity > 0, "MQ capacity must be nonzero");
        MqDeadValuePool {
            cfg,
            slab: Slab::with_capacity(cfg.capacity.min(1 << 20)),
            queues: vec![ListHandle::new(); cfg.num_queues],
            by_fp: FxHashMap::default(),
            by_ppn: FxHashMap::default(),
            hottest_pop: PopularityDegree::ZERO,
            hottest_interval: cfg.initial_hottest_interval,
            stats: PoolStats::default(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &MqConfig {
        &self.cfg
    }

    /// Entry count per queue, lowest queue first (diagnostics/tests).
    pub fn queue_lens(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.len()).collect()
    }

    /// Queue index currently holding the entry for `fp`, if present.
    pub fn queue_of(&self, fp: Fingerprint) -> Option<usize> {
        self.by_fp
            .get(&fp)
            .map(|&id| usize::from(self.slab.get(id).queue))
    }

    /// Current expiration interval derived from the hottest entry.
    pub fn hottest_interval(&self) -> u64 {
        self.hottest_interval
    }

    /// Re-sizes the pool at runtime — the paper's stated future work
    /// ("dynamically tuning the total capacity for MQ, in order to
    /// adapt itself to any changes in the workload", §V footnote).
    /// Shrinking evicts LRU entries from the lowest queues immediately;
    /// growing takes effect on subsequent insertions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "MQ capacity must be nonzero");
        self.cfg.capacity = capacity;
        while self.slab.len() > capacity {
            self.evict_one();
        }
    }

    /// Refreshes hottest-entry tracking when `id` is accessed at `now`
    /// (before `last_access` is overwritten).
    fn observe_access(&mut self, id: SlotId, now: WriteClock) {
        let entry = self.slab.get(id);
        if entry.pop >= self.hottest_pop {
            self.hottest_pop = entry.pop;
            let interval = now.saturating_since(entry.last_access);
            if interval > 0 {
                self.hottest_interval = interval;
            }
        }
    }

    /// Moves an entry to the MRU tail of its queue, promoting one
    /// queue up if its popularity band exceeds the current queue.
    fn refresh_and_promote(&mut self, id: SlotId, now: WriteClock) {
        let (cur, target) = {
            let entry = self.slab.get(id);
            let band = entry.pop.queue_index().min(self.cfg.num_queues - 1);
            (usize::from(entry.queue), band)
        };
        let dest = if target > cur {
            self.stats.promotions += 1;
            cur + 1
        } else {
            cur
        };
        self.queues[cur].detach(&mut self.slab, id);
        self.queues[dest].push_tail(&mut self.slab, id);
        let expire = now.plus(self.hottest_interval);
        let entry = self.slab.get_mut(id);
        entry.queue = dest as u8;
        entry.last_access = now;
        entry.expire = expire;
    }

    /// §IV-C "Promotion and Demotion": on each update, the head (LRU)
    /// entry of every queue above Q0 whose expiration has passed is
    /// demoted one queue down.
    fn demote_expired(&mut self, now: WriteClock) {
        for q in 1..self.cfg.num_queues {
            let Some(head) = self.queues[q].head() else {
                continue;
            };
            // §IV-C: demote when the "expiration time has passed" —
            // inclusive, so a lifetime elapsing exactly at `now` counts.
            if self.slab.get(head).expire <= now {
                self.queues[q].detach(&mut self.slab, head);
                self.queues[q - 1].push_tail(&mut self.slab, head);
                let expire = now.plus(self.hottest_interval);
                let entry = self.slab.get_mut(head);
                entry.queue = (q - 1) as u8;
                entry.expire = expire;
                self.stats.demotions += 1;
            }
        }
    }

    /// Evicts the LRU head of the lowest non-empty queue.
    fn evict_one(&mut self) {
        for q in 0..self.cfg.num_queues {
            if let Some(id) = self.queues[q].pop_head(&mut self.slab) {
                let entry = self.slab.remove(id);
                self.by_fp.remove(&entry.fp);
                for ppn in &entry.ppns {
                    self.by_ppn.remove(ppn);
                }
                self.stats.evictions += 1;
                return;
            }
        }
    }

    fn unlink_entry(&mut self, id: SlotId) -> Entry {
        let queue = usize::from(self.slab.get(id).queue);
        self.queues[queue].detach(&mut self.slab, id);
        let entry = self.slab.remove(id);
        self.by_fp.remove(&entry.fp);
        entry
    }

    #[cfg(test)]
    fn debug_validate(&self) {
        let in_queues: usize = self.queues.iter().map(|q| q.len()).sum();
        assert_eq!(in_queues, self.slab.len());
        assert_eq!(self.by_fp.len(), self.slab.len());
        let ppns: usize = self
            .by_fp
            .values()
            .map(|&id| self.slab.get(id).ppns.len())
            .sum();
        assert_eq!(ppns, self.by_ppn.len());
    }
}

impl DeadValuePool for MqDeadValuePool {
    fn take_match(&mut self, fp: Fingerprint, now: WriteClock) -> Option<Ppn> {
        let Some(&id) = self.by_fp.get(&fp) else {
            self.stats.misses += 1;
            return None;
        };
        self.observe_access(id, now);
        let (ppn, emptied) = {
            let entry = self.slab.get_mut(id);
            entry.pop.increment();
            let ppn = entry.ppns.pop().expect("entries always track >= 1 ppn");
            (ppn, entry.ppns.is_empty())
        };
        self.by_ppn.remove(&ppn);
        if emptied {
            // §IV-C Writes: "If the dead-value pool entry containing
            // H(D) has only one PPN, this entry is removed since it
            // does not contain the information of a garbage page
            // anymore."
            self.unlink_entry(id);
        } else {
            self.refresh_and_promote(id, now);
        }
        self.stats.hits += 1;
        Some(ppn)
    }

    fn insert_dead(
        &mut self,
        fp: Fingerprint,
        ppn: Ppn,
        _lpn: Lpn,
        pop: PopularityDegree,
        now: WriteClock,
    ) {
        if self.by_ppn.contains_key(&ppn) {
            return; // already tracked (defensive; FTL never re-offers)
        }
        self.stats.insertions += 1;
        if let Some(&id) = self.by_fp.get(&fp) {
            self.observe_access(id, now);
            {
                let entry = self.slab.get_mut(id);
                entry.ppns.push(ppn);
                if pop > entry.pop {
                    entry.pop = pop;
                }
            }
            self.by_ppn.insert(ppn, id);
            self.refresh_and_promote(id, now);
        } else {
            let entry = Entry {
                fp,
                ppns: vec![ppn],
                pop,
                expire: now.plus(self.hottest_interval),
                last_access: now,
                queue: 0,
            };
            let id = self.slab.insert(entry);
            self.queues[0].push_tail(&mut self.slab, id);
            self.by_fp.insert(fp, id);
            self.by_ppn.insert(ppn, id);
            if self.slab.len() > self.cfg.capacity {
                self.evict_one();
            }
        }
        self.demote_expired(now);
    }

    fn remove_ppn(&mut self, ppn: Ppn) {
        let Some(id) = self.by_ppn.remove(&ppn) else {
            return;
        };
        self.stats.gc_removals += 1;
        let emptied = {
            let entry = self.slab.get_mut(id);
            let pos = entry
                .ppns
                .iter()
                .position(|&p| p == ppn)
                .expect("ppn index consistent with entry");
            entry.ppns.swap_remove(pos);
            entry.ppns.is_empty()
        };
        if emptied {
            self.unlink_entry(id);
        }
    }

    fn garbage_weight(&self, ppn: Ppn) -> Option<PopularityDegree> {
        self.by_ppn.get(&ppn).map(|&id| self.slab.get(id).pop)
    }

    fn len(&self) -> usize {
        self.slab.len()
    }

    fn tracked_ppns(&self) -> usize {
        self.by_ppn.len()
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.cfg.capacity)
    }

    fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    fn pool(capacity: usize) -> MqDeadValuePool {
        MqDeadValuePool::new(MqConfig::default().with_capacity(capacity))
    }

    fn insert(pool: &mut MqDeadValuePool, v: u64, ppn: u64, pop: u8, now: u64) {
        pool.insert_dead(
            fp(v),
            Ppn::new(ppn),
            Lpn::new(ppn),
            PopularityDegree::new(pop),
            WriteClock::from_count(now),
        );
    }

    #[test]
    fn hit_consumes_most_recent_death_first() {
        let mut p = pool(16);
        insert(&mut p, 1, 100, 0, 1);
        insert(&mut p, 1, 200, 0, 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.tracked_ppns(), 2);
        assert_eq!(
            p.take_match(fp(1), WriteClock::from_count(3)),
            Some(Ppn::new(200))
        );
        assert_eq!(
            p.take_match(fp(1), WriteClock::from_count(4)),
            Some(Ppn::new(100))
        );
        assert_eq!(p.take_match(fp(1), WriteClock::from_count(5)), None);
        assert!(p.is_empty());
        p.debug_validate();
    }

    #[test]
    fn miss_counts_and_returns_none() {
        let mut p = pool(4);
        assert_eq!(p.take_match(fp(9), WriteClock::ZERO), None);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn new_entries_start_in_q0() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 200, 1); // very popular value still enters Q0
        assert_eq!(p.queue_of(fp(1)), Some(0));
    }

    #[test]
    fn accesses_promote_through_queues() {
        let mut p = pool(64);
        insert(&mut p, 1, 1, 0, 1);
        // Each (death + hit) pair raises popularity; entry climbs.
        let mut now = 2;
        let mut last_queue = 0;
        for round in 0..20u64 {
            insert(&mut p, 1, 100 + round, 0, now);
            now += 1;
            let q = p.queue_of(fp(1)).expect("entry present");
            assert!(q >= last_queue, "no spontaneous drops while hot");
            last_queue = q;
            let _ = p.take_match(fp(1), WriteClock::from_count(now));
            now += 1;
        }
        assert!(last_queue >= 2, "popular entry must climb queues");
        assert!(p.stats().promotions > 0);
        p.debug_validate();
    }

    #[test]
    fn promotion_is_one_queue_per_access() {
        let mut p = pool(64);
        insert(&mut p, 1, 1, 255, 1); // band 8, but starts at Q0
        assert_eq!(p.queue_of(fp(1)), Some(0));
        insert(&mut p, 1, 2, 255, 2);
        assert_eq!(p.queue_of(fp(1)), Some(1), "one step per access");
    }

    #[test]
    fn overflow_evicts_lru_of_lowest_queue() {
        let mut p = pool(3);
        for v in 1..=3u64 {
            insert(&mut p, v, v, 0, v);
        }
        insert(&mut p, 4, 4, 0, 4); // overflows: evicts value 1
        assert_eq!(p.len(), 3);
        assert_eq!(p.take_match(fp(1), WriteClock::from_count(5)), None);
        assert!(p.take_match(fp(2), WriteClock::from_count(6)).is_some());
        assert_eq!(p.stats().evictions, 1);
        p.debug_validate();
    }

    #[test]
    fn eviction_prefers_low_queue_over_popular_high_queue() {
        let mut p = pool(2);
        // Value 1 becomes popular and climbs out of Q0.
        insert(&mut p, 1, 1, 3, 1);
        insert(&mut p, 1, 2, 3, 2);
        assert!(p.queue_of(fp(1)).expect("present") >= 1);
        // Fill with cold values; each overflow must evict cold Q0
        // entries, never the popular one.
        insert(&mut p, 2, 10, 0, 3);
        insert(&mut p, 3, 11, 0, 4); // evicts value 2 (Q0 LRU)
        assert!(p.queue_of(fp(1)).is_some(), "popular survivor");
        assert_eq!(p.take_match(fp(2), WriteClock::from_count(5)), None);
        p.debug_validate();
    }

    #[test]
    fn expired_heads_demote_toward_q0() {
        let mut p = MqDeadValuePool::new(MqConfig {
            num_queues: 4,
            capacity: 16,
            initial_hottest_interval: 5,
        });
        // Promote value 1 to Q1.
        insert(&mut p, 1, 1, 2, 1);
        insert(&mut p, 1, 2, 2, 2);
        assert_eq!(p.queue_of(fp(1)), Some(1));
        // Let it expire: every insertion advances the clock past
        // expire = 2 + 5 = 7.
        insert(&mut p, 2, 10, 0, 20);
        assert_eq!(p.queue_of(fp(1)), Some(0), "expired head demoted");
        assert!(p.stats().demotions >= 1);
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        // Regression: `demote_expired` used `expire < now`, so an entry
        // whose lifetime elapsed exactly at `now` was never demoted.
        // §IV-C demotes once the expiration "has passed" — inclusive.
        let mut p = MqDeadValuePool::new(MqConfig {
            num_queues: 4,
            capacity: 16,
            initial_hottest_interval: 5,
        });
        // Promote value 1 to Q1 at now=2; expire = 2 + 5 = 7.
        insert(&mut p, 1, 1, 2, 1);
        insert(&mut p, 1, 2, 2, 2);
        assert_eq!(p.queue_of(fp(1)), Some(1));
        // Insertion at exactly now == expire must demote the Q1 head.
        insert(&mut p, 2, 10, 0, 7);
        assert_eq!(
            p.queue_of(fp(1)),
            Some(0),
            "boundary demotion at expire == now"
        );
        assert_eq!(p.stats().demotions, 1);
    }

    #[test]
    fn hottest_interval_tracks_reaccess_gap() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 10, 100);
        insert(&mut p, 1, 2, 10, 140); // hottest entry re-accessed after 40
        assert_eq!(p.hottest_interval(), 40);
    }

    #[test]
    fn gc_removal_drops_ppn_and_possibly_entry() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 0, 1);
        insert(&mut p, 1, 2, 0, 2);
        p.remove_ppn(Ppn::new(1));
        assert_eq!(p.len(), 1);
        assert_eq!(p.tracked_ppns(), 1);
        p.remove_ppn(Ppn::new(2));
        assert!(p.is_empty());
        p.remove_ppn(Ppn::new(2)); // idempotent
        assert_eq!(p.stats().gc_removals, 2);
        p.debug_validate();
    }

    #[test]
    fn garbage_weight_reflects_entry_popularity() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 7, 1);
        assert_eq!(
            p.garbage_weight(Ppn::new(1)),
            Some(PopularityDegree::new(7))
        );
        assert_eq!(p.garbage_weight(Ppn::new(2)), None);
    }

    #[test]
    fn duplicate_ppn_offer_is_ignored() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 0, 1);
        insert(&mut p, 1, 1, 0, 2);
        assert_eq!(p.tracked_ppns(), 1);
        assert_eq!(p.stats().insertions, 1);
    }

    #[test]
    fn popularity_merges_to_max_on_reinsert() {
        let mut p = pool(16);
        insert(&mut p, 1, 1, 9, 1);
        insert(&mut p, 1, 2, 3, 2);
        assert_eq!(
            p.garbage_weight(Ppn::new(2)),
            Some(PopularityDegree::new(9))
        );
    }

    #[test]
    fn queue_lens_sum_to_len() {
        let mut p = pool(32);
        for v in 0..10u64 {
            insert(&mut p, v, v, (v % 5) as u8, v + 1);
        }
        let lens = p.queue_lens();
        assert_eq!(lens.iter().sum::<usize>(), p.len());
        assert_eq!(lens.len(), p.config().num_queues);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MqDeadValuePool::new(MqConfig::default().with_capacity(0));
    }

    #[test]
    fn set_capacity_shrinks_and_grows() {
        let mut p = pool(8);
        for v in 1..=8u64 {
            insert(&mut p, v, v, 0, v);
        }
        assert_eq!(p.len(), 8);
        p.set_capacity(3);
        assert_eq!(p.len(), 3, "shrink evicts immediately");
        assert_eq!(p.capacity(), Some(3));
        // The survivors are the most recent insertions.
        assert!(p.take_match(fp(8), WriteClock::from_count(9)).is_some());
        assert_eq!(p.take_match(fp(1), WriteClock::from_count(10)), None);
        p.set_capacity(100);
        for v in 20..=40u64 {
            insert(&mut p, v, v, 0, v);
        }
        // 2 survivors (6, 7) plus the 21 fresh insertions.
        assert_eq!(p.len(), 23, "growth admits new entries");
        p.debug_validate();
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn set_capacity_rejects_zero() {
        pool(4).set_capacity(0);
    }

    #[test]
    fn churn_keeps_indexes_consistent() {
        let mut p = pool(8);
        let mut now = 0u64;
        for round in 0..500u64 {
            now += 1;
            let v = round % 13;
            insert(&mut p, v, round + 1000, (v % 4) as u8, now);
            if round % 3 == 0 {
                now += 1;
                let _ = p.take_match(fp((round + 1) % 13), WriteClock::from_count(now));
            }
            if round % 7 == 0 {
                p.remove_ppn(Ppn::new(round + 1000));
            }
        }
        p.debug_validate();
        assert!(p.len() <= 8);
    }
}
