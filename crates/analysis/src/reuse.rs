//! Garbage-reuse studies: the Fig 1 infinite-buffer bound and the
//! Fig 5/6 bounded-buffer replays.

use std::collections::HashMap;

use zssd_core::DeadValuePool;
use zssd_trace::TraceRecord;
use zssd_types::{Lpn, PopularityDegree, Ppn, ValueId, WriteClock};

/// Result of the infinite-buffer study (Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InfiniteReuse {
    /// Host writes scanned.
    pub writes: u64,
    /// Writes short-circuited by reviving a dead copy.
    pub reused: u64,
    /// Writes eliminated by deduplication *before* the garbage pool
    /// was consulted (0 when `dedup` is off).
    pub dedup_eliminated: u64,
}

impl InfiniteReuse {
    /// Probability that a write can be serviced from garbage pages —
    /// the y-axis of Fig 1.
    pub fn reuse_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.reused as f64 / self.writes as f64
        }
    }

    /// Fraction of writes removed by dedup (for the "after
    /// deduplication" series).
    pub fn dedup_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.dedup_eliminated as f64 / self.writes as f64
        }
    }
}

/// The Fig 1 study: replay a trace's writes with an **unlimited**
/// dead-value buffer and count how many could be short-circuited.
///
/// With `dedup` enabled, live-copy hits are removed first (they are
/// deduplication's wins, not the pool's), so the returned
/// `reuse_fraction` is the *additional* opportunity on garbage pages —
/// the paper's point that "this opportunity still exists (although it
/// decreases), even after deduplication".
///
/// # Examples
///
/// ```
/// use zssd_analysis::infinite_reuse;
/// use zssd_trace::TraceRecord;
/// use zssd_types::{Lpn, ValueId};
///
/// let records = [
///     TraceRecord::write(0, Lpn::new(0), ValueId::new(7)),
///     TraceRecord::write(1, Lpn::new(0), ValueId::new(8)), // 7 dies
///     TraceRecord::write(2, Lpn::new(1), ValueId::new(7)), // reusable
/// ];
/// let reuse = infinite_reuse(&records, false);
/// assert_eq!(reuse.reused, 1);
/// assert_eq!(reuse.writes, 3);
/// ```
pub fn infinite_reuse(records: &[TraceRecord], dedup: bool) -> InfiniteReuse {
    let mut result = InfiniteReuse::default();
    // Current content of each address.
    let mut content: HashMap<Lpn, ValueId> = HashMap::new();
    // Dead copies per value (count of garbage pages holding it).
    let mut dead: HashMap<ValueId, u64> = HashMap::new();
    // Live reference counts per value (dedup mode only).
    let mut live_refs: HashMap<ValueId, u64> = HashMap::new();

    for record in records.iter().filter(|r| r.is_write()) {
        result.writes += 1;
        let value = record.value;

        // Death of the overwritten copy happens conceptually after the
        // lookup (§IV-C order), so resolve the lookup against the
        // current pool state first.
        enum Outcome {
            Dedup,
            Reuse,
            Program,
        }
        let outcome = if dedup {
            if live_refs.get(&value).copied().unwrap_or(0) > 0 {
                Outcome::Dedup
            } else if dead.get(&value).copied().unwrap_or(0) > 0 {
                Outcome::Reuse
            } else {
                Outcome::Program
            }
        } else if dead.get(&value).copied().unwrap_or(0) > 0 {
            Outcome::Reuse
        } else {
            Outcome::Program
        };

        // Now the overwritten copy dies.
        if let Some(old) = content.insert(record.lpn, value) {
            if dedup {
                let refs = live_refs.get_mut(&old).expect("live value has refs");
                *refs -= 1;
                if *refs == 0 {
                    live_refs.remove(&old);
                    *dead.entry(old).or_insert(0) += 1;
                }
            } else {
                *dead.entry(old).or_insert(0) += 1;
            }
        }

        match outcome {
            Outcome::Dedup => {
                result.dedup_eliminated += 1;
                *live_refs.entry(value).or_insert(0) += 1;
            }
            Outcome::Reuse => {
                result.reused += 1;
                let copies = dead.get_mut(&value).expect("dead copy exists");
                *copies -= 1;
                if *copies == 0 {
                    dead.remove(&value);
                }
                if dedup {
                    *live_refs.entry(value).or_insert(0) += 1;
                }
            }
            Outcome::Program => {
                if dedup {
                    *live_refs.entry(value).or_insert(0) += 1;
                }
            }
        }
    }
    result
}

/// Summary of a bounded-pool replay (Figs 5 and 6).
#[derive(Debug, Clone, Default)]
pub struct PoolRunSummary {
    /// Host writes scanned.
    pub writes: u64,
    /// Writes the pool short-circuited.
    pub hits: u64,
    /// Writes an infinite buffer would have short-circuited but the
    /// bounded pool missed (capacity misses — the Fig 5 gap).
    pub capacity_misses: u64,
    /// Capacity misses per value (for the Fig 6 per-popularity
    /// breakdown).
    pub misses_by_value: HashMap<ValueId, u64>,
    /// Total writes per value (popularity, for binning Fig 6).
    pub writes_by_value: HashMap<ValueId, u64>,
}

impl PoolRunSummary {
    /// Writes that still reach flash: `writes − hits`.
    pub fn writes_remaining(&self) -> u64 {
        self.writes - self.hits
    }

    /// Mean capacity misses per value, bucketed by
    /// `floor(log2(write count))` popularity bands; returns
    /// `(degree, mean misses, values in band)` sorted by degree —
    /// Fig 6's series.
    pub fn mean_misses_by_popularity(&self) -> Vec<(u32, f64, u64)> {
        let mut sums: HashMap<u32, (u64, u64)> = HashMap::new();
        for (value, &writes) in &self.writes_by_value {
            let degree = writes.max(1).ilog2();
            let misses = self.misses_by_value.get(value).copied().unwrap_or(0);
            let entry = sums.entry(degree).or_default();
            entry.0 += misses;
            entry.1 += 1;
        }
        let mut out: Vec<(u32, f64, u64)> = sums
            .into_iter()
            .map(|(d, (misses, values))| (d, misses as f64 / values as f64, values))
            .collect();
        out.sort_by_key(|&(d, _, _)| d);
        out
    }
}

/// Replays a trace's write stream against a real [`DeadValuePool`]
/// implementation, tracking an infinite-buffer oracle alongside so
/// capacity misses can be attributed (Fig 6).
///
/// Dead pages are identified by synthetic PPNs (the death ordinal);
/// no flash model is involved — this is the paper's §II/§III "analyze
/// the traces" methodology.
///
/// # Examples
///
/// ```
/// use zssd_analysis::PoolReuseSim;
/// use zssd_core::LruDeadValuePool;
/// use zssd_trace::{SyntheticTrace, WorkloadProfile};
///
/// let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.01), 3);
/// let summary = PoolReuseSim::new(LruDeadValuePool::new(500)).run(trace.records());
/// assert!(summary.hits > 0);
/// assert!(summary.writes_remaining() < summary.writes);
/// ```
#[derive(Debug)]
pub struct PoolReuseSim<P> {
    pool: P,
}

impl<P: DeadValuePool> PoolReuseSim<P> {
    /// Wraps a pool for trace replay.
    pub fn new(pool: P) -> Self {
        PoolReuseSim { pool }
    }

    /// Replays the write stream and returns the hit/miss summary plus
    /// the pool (for stats inspection).
    pub fn run(self, records: &[TraceRecord]) -> PoolRunSummary {
        self.run_with_pool(records).0
    }

    /// Like [`run`](PoolReuseSim::run) but also hands back the pool.
    pub fn run_with_pool(mut self, records: &[TraceRecord]) -> (PoolRunSummary, P) {
        let mut summary = PoolRunSummary::default();
        let mut clock = WriteClock::ZERO;
        // Address -> (value, synthetic ppn of the live copy).
        let mut content: HashMap<Lpn, (ValueId, Ppn)> = HashMap::new();
        // Oracle: dead copies per value under an infinite buffer.
        let mut oracle_dead: HashMap<ValueId, u64> = HashMap::new();
        // Popularity proxy: per-address write counters, as in the
        // paper's 1-byte mapping-table field.
        let mut popularity: HashMap<Lpn, PopularityDegree> = HashMap::new();
        let mut next_ppn = 0u64;

        for record in records.iter().filter(|r| r.is_write()) {
            summary.writes += 1;
            let now = clock.tick();
            let value = record.value;
            *summary.writes_by_value.entry(value).or_insert(0) += 1;
            let pop = popularity
                .entry(record.lpn)
                .or_insert(PopularityDegree::ZERO);
            pop.increment();
            let pop = *pop;

            // Pool lookup first (§IV-C order), oracle alongside.
            let fp = record.fingerprint();
            let pool_hit = self.pool.take_match(fp, now);
            let oracle_hit = oracle_dead.get(&value).copied().unwrap_or(0) > 0;

            // The overwritten copy dies.
            if let Some((old_value, old_ppn)) = content.get(&record.lpn).copied() {
                self.pool.insert_dead(
                    zssd_types::Fingerprint::of_value(old_value),
                    old_ppn,
                    record.lpn,
                    pop,
                    now,
                );
                *oracle_dead.entry(old_value).or_insert(0) += 1;
            }

            let live_ppn = match pool_hit {
                Some(revived) => {
                    summary.hits += 1;
                    revived
                }
                None => {
                    if oracle_hit {
                        summary.capacity_misses += 1;
                        *summary.misses_by_value.entry(value).or_insert(0) += 1;
                    }
                    next_ppn += 1;
                    Ppn::new(next_ppn)
                }
            };
            if oracle_hit {
                let copies = oracle_dead.get_mut(&value).expect("oracle copy");
                *copies -= 1;
                if *copies == 0 {
                    oracle_dead.remove(&value);
                }
            }
            content.insert(record.lpn, (value, live_ppn));
        }
        (summary, self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_core::{IdealPool, LruDeadValuePool, MqConfig, MqDeadValuePool};
    use zssd_trace::{SyntheticTrace, WorkloadProfile};

    fn w(seq: u64, lpn: u64, value: u64) -> TraceRecord {
        TraceRecord::write(seq, Lpn::new(lpn), ValueId::new(value))
    }

    #[test]
    fn infinite_reuse_counts_simple_rebirth() {
        let records = [w(0, 0, 7), w(1, 0, 8), w(2, 1, 7), w(3, 2, 7)];
        let r = infinite_reuse(&records, false);
        // Only one dead copy of 7 existed; the second rewrite programs.
        assert_eq!(r.reused, 1);
        assert_eq!(r.writes, 4);
        assert_eq!(r.reuse_fraction(), 0.25);
    }

    #[test]
    fn dedup_mode_splits_wins() {
        // 7 written twice while live (dedup win), then dies, then
        // returns (pool win).
        let records = [w(0, 0, 7), w(1, 1, 7), w(2, 0, 8), w(3, 1, 9), w(4, 2, 7)];
        let r = infinite_reuse(&records, true);
        assert_eq!(r.dedup_eliminated, 1);
        assert_eq!(r.reused, 1);
        // Without dedup the same trace reuses more from garbage.
        let plain = infinite_reuse(&records, false);
        assert!(plain.reused >= r.reused);
    }

    #[test]
    fn same_value_overwrite_reuses_the_previous_death() {
        // Rewriting the same content at the same address: the §IV-C
        // order resolves the pool lookup *before* this write's own
        // death, so the second rewrite misses (no dead copy yet) and
        // the third hits the copy killed by the second.
        let records = [w(0, 0, 7), w(1, 0, 7), w(2, 0, 7)];
        let r = infinite_reuse(&records, false);
        assert_eq!(r.reused, 1);
    }

    #[test]
    fn ideal_pool_matches_infinite_oracle() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.01), 2);
        let oracle = infinite_reuse(trace.records(), false);
        let summary = PoolReuseSim::new(IdealPool::new()).run(trace.records());
        assert_eq!(summary.hits, oracle.reused);
        assert_eq!(summary.capacity_misses, 0);
    }

    #[test]
    fn bounded_lru_loses_to_infinite_and_gap_is_capacity_misses() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.02), 2);
        let oracle = infinite_reuse(trace.records(), false);
        let summary = PoolReuseSim::new(LruDeadValuePool::new(64)).run(trace.records());
        assert!(summary.hits <= oracle.reused);
        assert_eq!(summary.hits + summary.capacity_misses, oracle.reused);
        assert!(summary.capacity_misses > 0, "tiny buffer must miss");
    }

    #[test]
    fn larger_buffers_do_no_worse() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::web().scaled(0.02), 4);
        let small = PoolReuseSim::new(LruDeadValuePool::new(32)).run(trace.records());
        let large = PoolReuseSim::new(LruDeadValuePool::new(4096)).run(trace.records());
        assert!(large.hits >= small.hits);
        assert!(large.writes_remaining() <= small.writes_remaining());
    }

    #[test]
    fn mq_beats_lru_at_equal_capacity_on_skewed_traces() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.03), 8);
        let entries = 256;
        let lru = PoolReuseSim::new(LruDeadValuePool::new(entries)).run(trace.records());
        let mq = PoolReuseSim::new(MqDeadValuePool::new(
            MqConfig::paper_default().with_capacity(entries),
        ))
        .run(trace.records());
        assert!(
            mq.hits >= lru.hits,
            "MQ ({}) must not lose to LRU ({}) on a skewed trace",
            mq.hits,
            lru.hits
        );
    }

    #[test]
    fn miss_breakdown_buckets_by_popularity() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.02), 2);
        let summary = PoolReuseSim::new(LruDeadValuePool::new(64)).run(trace.records());
        let bins = summary.mean_misses_by_popularity();
        assert!(!bins.is_empty());
        let total_values: u64 = bins.iter().map(|&(_, _, v)| v).sum();
        assert_eq!(total_values, summary.writes_by_value.len() as u64);
    }

    #[test]
    fn empty_trace_summaries_are_zero() {
        assert_eq!(infinite_reuse(&[], true).reuse_fraction(), 0.0);
        let summary = PoolReuseSim::new(IdealPool::new()).run(&[]);
        assert_eq!(summary.writes, 0);
        assert_eq!(summary.writes_remaining(), 0);
    }
}
