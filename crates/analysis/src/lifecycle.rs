//! Per-value life-cycle accounting: creation, death, rebirth (§II-B).
//!
//! The paper extends a value's life-cycle to three stages: "(i)
//! creation, the first time a value is written, (ii) death, when a
//! value gets invalidated, and (iii) rebirth, when a value is
//! rewritten after its death."

use std::collections::HashMap;

use zssd_metrics::{Cdf, ShareCurve};
use zssd_trace::TraceRecord;
use zssd_types::{Lpn, ValueId};

/// Life-cycle counters of one value. Time is the paper's logical
/// write clock (number of writes issued).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValueStats {
    /// Host writes carrying this value.
    pub writes: u64,
    /// Copies of this value invalidated by overwrites (deaths).
    pub deaths: u64,
    /// Writes of this value that arrived while a dead copy existed
    /// (rebirths — reusable with an infinite buffer).
    pub rebirths: u64,
    /// Write-clock timestamp of the creation.
    pub created_at: u64,
    /// Σ (death clock − creation-or-rebirth clock of that copy),
    /// for Fig 4(a).
    pub lifetime_sum: u64,
    /// Number of lifetime samples in `lifetime_sum`.
    pub lifetime_samples: u64,
    /// Σ (rebirth clock − death clock), for Fig 4(b).
    pub dead_time_sum: u64,
    /// Number of dead-time samples in `dead_time_sum`.
    pub dead_time_samples: u64,
}

impl ValueStats {
    /// Mean number of writes between a copy's birth and its death.
    pub fn mean_lifetime(&self) -> f64 {
        if self.lifetime_samples == 0 {
            0.0
        } else {
            self.lifetime_sum as f64 / self.lifetime_samples as f64
        }
    }

    /// Mean number of writes a value spends dead before rebirth.
    pub fn mean_dead_time(&self) -> f64 {
        if self.dead_time_samples == 0 {
            0.0
        } else {
            self.dead_time_sum as f64 / self.dead_time_samples as f64
        }
    }
}

/// One popularity band of Fig 4: values bucketed by
/// `floor(log2(writes))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopularityBin {
    /// Band index (0 = written once, 1 = 2–3 writes, 2 = 4–7, …).
    pub degree: u32,
    /// Inclusive range of write counts in this band.
    pub write_range: (u64, u64),
    /// Number of values in the band.
    pub values: u64,
    /// Band average of the plotted quantity.
    pub mean: f64,
}

/// The §II analysis over one trace (or trace prefix).
///
/// # Examples
///
/// ```
/// use zssd_analysis::ValueLifecycles;
/// use zssd_trace::TraceRecord;
/// use zssd_types::{Lpn, ValueId};
///
/// // Value 7 is created, dies, and is reborn.
/// let records = [
///     TraceRecord::write(0, Lpn::new(0), ValueId::new(7)),
///     TraceRecord::write(1, Lpn::new(0), ValueId::new(8)), // kills 7
///     TraceRecord::write(2, Lpn::new(1), ValueId::new(7)), // rebirth
/// ];
/// let lc = ValueLifecycles::analyze(&records);
/// let stats = lc.value(ValueId::new(7)).expect("tracked");
/// assert_eq!((stats.writes, stats.deaths, stats.rebirths), (2, 1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ValueLifecycles {
    values: HashMap<ValueId, ValueStats>,
    /// Dead-copy pool per value (conceptual, unlimited): death clocks.
    total_writes: u64,
}

/// Internal per-value dynamic state during the scan.
#[derive(Debug, Default)]
struct Scan {
    /// Birth clock of each live copy, keyed by address.
    live_copy_birth: HashMap<Lpn, u64>,
    /// Death clocks of currently dead copies (LIFO reuse).
    dead_copies: Vec<u64>,
}

impl ValueLifecycles {
    /// Scans a trace and accumulates per-value life-cycle statistics.
    ///
    /// Only writes matter (the paper tracks value popularity in writes
    /// only, footnote 3); reads are ignored.
    pub fn analyze(records: &[TraceRecord]) -> Self {
        let mut values: HashMap<ValueId, ValueStats> = HashMap::new();
        let mut scans: HashMap<ValueId, Scan> = HashMap::new();
        let mut content: HashMap<Lpn, ValueId> = HashMap::new();
        let mut clock = 0u64;
        for record in records.iter().filter(|r| r.is_write()) {
            clock += 1;

            // 1. Resolve the rebirth against the pool state *before*
            //    this write's own death is processed (the §IV-C order:
            //    the dead-value lookup happens first, then the update
            //    invalidates the old page). Matters only when a value
            //    overwrites itself.
            let reborn_from = scans.entry(record.value).or_default().dead_copies.pop();

            // 2. The overwritten copy (if any) dies.
            if let Some(old) = content.insert(record.lpn, record.value) {
                let scan = scans.entry(old).or_default();
                let stats = values.entry(old).or_default();
                stats.deaths += 1;
                if let Some(birth) = scan.live_copy_birth.remove(&record.lpn) {
                    stats.lifetime_sum += clock - birth;
                    stats.lifetime_samples += 1;
                }
                scan.dead_copies.push(clock);
            }

            // 3. The write itself: creation or rebirth bookkeeping.
            let scan = scans.entry(record.value).or_default();
            let stats = values.entry(record.value).or_default();
            if stats.writes == 0 {
                stats.created_at = clock;
            }
            stats.writes += 1;
            if let Some(death_clock) = reborn_from {
                stats.rebirths += 1;
                stats.dead_time_sum += clock - death_clock;
                stats.dead_time_samples += 1;
            }
            scan.live_copy_birth.insert(record.lpn, clock);
        }
        ValueLifecycles {
            values,
            total_writes: clock,
        }
    }

    /// Statistics of one value, if it was ever written.
    pub fn value(&self, value: ValueId) -> Option<&ValueStats> {
        self.values.get(&value)
    }

    /// Number of distinct values written.
    pub fn unique_values(&self) -> u64 {
        self.values.len() as u64
    }

    /// Total writes scanned.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Total deaths across all values.
    pub fn total_deaths(&self) -> u64 {
        self.values.values().map(|s| s.deaths).sum()
    }

    /// Total rebirths across all values. Equals the reusable-write
    /// count of [`infinite_reuse`](crate::infinite_reuse) by
    /// construction (a rebirth is a write arriving while a dead copy
    /// exists).
    pub fn total_rebirths(&self) -> u64 {
        self.values.values().map(|s| s.rebirths).sum()
    }

    /// Fraction of values that were invalidated at least once — the
    /// Fig 2 observation ("only 30% of values … are still present
    /// (live) … and the rest have been invalidated" for mail).
    pub fn fraction_with_deaths(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let died = self.values.values().filter(|s| s.deaths > 0).count();
        died as f64 / self.values.len() as f64
    }

    /// Fig 2: CDF of per-value invalidation counts.
    pub fn invalidation_cdf(&self) -> Cdf {
        self.values.values().map(|s| s.deaths).collect()
    }

    /// Fig 3(a): cumulative share of writes over values sorted by
    /// write count.
    pub fn writes_share(&self) -> ShareCurve {
        ShareCurve::from_weights(self.values.values().map(|s| s.writes))
    }

    /// Fig 3(b): cumulative share of invalidations, values sorted by
    /// *write* count (the paper keeps the x-axis ordering of 3(a)).
    pub fn invalidations_share(&self) -> ShareCurve {
        ShareCurve::from_keyed_weights(self.values.values().map(|s| (s.writes, s.deaths)))
    }

    /// Fig 3(c): cumulative share of rebirths, values sorted by write
    /// count.
    pub fn rebirths_share(&self) -> ShareCurve {
        ShareCurve::from_keyed_weights(self.values.values().map(|s| (s.writes, s.rebirths)))
    }

    fn bins<F: Fn(&ValueStats) -> (f64, u64)>(&self, quantity: F) -> Vec<PopularityBin> {
        // Band values by floor(log2(writes)); writes >= 1 always.
        let mut sums: HashMap<u32, (f64, u64, u64)> = HashMap::new();
        for stats in self.values.values() {
            let degree = stats.writes.max(1).ilog2();
            let (q, samples) = quantity(stats);
            let entry = sums.entry(degree).or_default();
            entry.0 += q;
            entry.1 += samples;
            entry.2 += 1;
        }
        let mut bins: Vec<PopularityBin> = sums
            .into_iter()
            .map(|(degree, (sum, samples, values))| PopularityBin {
                degree,
                write_range: (1 << degree, (1u64 << (degree + 1)) - 1),
                values,
                mean: if samples == 0 {
                    0.0
                } else {
                    sum / samples as f64
                },
            })
            .collect();
        bins.sort_by_key(|b| b.degree);
        bins
    }

    /// Fig 4(a): mean writes from a copy's creation to its death, per
    /// popularity band.
    pub fn lifetime_by_popularity(&self) -> Vec<PopularityBin> {
        self.bins(|s| (s.lifetime_sum as f64, s.lifetime_samples))
    }

    /// Fig 4(b): mean writes from death to rebirth, per popularity
    /// band.
    pub fn dead_time_by_popularity(&self) -> Vec<PopularityBin> {
        self.bins(|s| (s.dead_time_sum as f64, s.dead_time_samples))
    }

    /// Fig 4(c): mean rebirth count per value, per popularity band.
    pub fn rebirths_by_popularity(&self) -> Vec<PopularityBin> {
        self.bins(|s| (s.rebirths as f64, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(seq: u64, lpn: u64, value: u64) -> TraceRecord {
        TraceRecord::write(seq, Lpn::new(lpn), ValueId::new(value))
    }

    #[test]
    fn creation_death_rebirth_counting() {
        // 7 written twice at different addresses, both copies die,
        // then 7 returns twice (two rebirths).
        let records = [
            w(0, 0, 7),
            w(1, 1, 7),
            w(2, 0, 1), // death of copy @0
            w(3, 1, 2), // death of copy @1
            w(4, 2, 7), // rebirth 1
            w(5, 3, 7), // rebirth 2
        ];
        let lc = ValueLifecycles::analyze(&records);
        let s = lc.value(ValueId::new(7)).expect("tracked");
        assert_eq!(s.writes, 4);
        assert_eq!(s.deaths, 2);
        assert_eq!(s.rebirths, 2);
        assert_eq!(lc.total_writes(), 6);
        assert_eq!(lc.unique_values(), 3);
    }

    #[test]
    fn rebirth_requires_a_dead_copy() {
        let records = [w(0, 0, 7), w(1, 1, 7)]; // two live copies, no death
        let lc = ValueLifecycles::analyze(&records);
        let s = lc.value(ValueId::new(7)).expect("tracked");
        assert_eq!(s.rebirths, 0);
        assert_eq!(lc.fraction_with_deaths(), 0.0);
    }

    #[test]
    fn lifetime_interval_measured_in_writes() {
        let records = [
            w(0, 0, 7), // clock 1: birth
            w(1, 5, 9), // clock 2
            w(2, 0, 8), // clock 3: death of 7 -> lifetime 2
            w(3, 1, 7), // clock 4: rebirth -> dead time 1
        ];
        let lc = ValueLifecycles::analyze(&records);
        let s = lc.value(ValueId::new(7)).expect("tracked");
        assert_eq!(s.lifetime_sum, 2);
        assert_eq!(s.lifetime_samples, 1);
        assert_eq!(s.mean_lifetime(), 2.0);
        assert_eq!(s.dead_time_sum, 1);
        assert_eq!(s.mean_dead_time(), 1.0);
    }

    #[test]
    fn reads_are_ignored() {
        let records = [
            w(0, 0, 7),
            TraceRecord::read(1, Lpn::new(0), ValueId::new(7)),
            w(2, 0, 8),
        ];
        let lc = ValueLifecycles::analyze(&records);
        assert_eq!(lc.total_writes(), 2);
        assert_eq!(lc.value(ValueId::new(7)).expect("tracked").deaths, 1);
    }

    #[test]
    fn invalidation_cdf_counts_values() {
        let records = [w(0, 0, 1), w(1, 0, 2), w(2, 0, 3)];
        // value 1 died, value 2 died, value 3 live
        let cdf = ValueLifecycles::analyze(&records).invalidation_cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf.fraction_le(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_le(1), 1.0);
    }

    #[test]
    fn share_curves_expose_popularity_skew() {
        // Value 9 written 9 times (dying each time at the same lpn),
        // values 1..=3 written once each.
        let mut records = Vec::new();
        for i in 0..9 {
            records.push(w(i, 0, 9));
        }
        records.push(w(9, 1, 1));
        records.push(w(10, 2, 2));
        records.push(w(11, 3, 3));
        let lc = ValueLifecycles::analyze(&records);
        let writes = lc.writes_share();
        assert_eq!(writes.share_of_top(0.25), 0.75); // 9 of 12 writes
        let inval = lc.invalidations_share();
        assert_eq!(inval.share_of_top(0.25), 1.0); // all deaths are 9's
        let rebirth = lc.rebirths_share();
        assert_eq!(rebirth.share_of_top(0.25), 1.0); // all rebirths are 9's
    }

    #[test]
    fn popularity_bins_are_log2_bands() {
        let mut records = Vec::new();
        let mut seq = 0;
        // value 1: 1 write -> band 0; value 2: 2 writes -> band 1;
        // value 3: 5 writes -> band 2.
        for (value, count) in [(1u64, 1u64), (2, 2), (3, 5)] {
            for _ in 0..count {
                records.push(w(seq, 100 + value, value));
                seq += 1;
            }
        }
        let lc = ValueLifecycles::analyze(&records);
        let bins = lc.rebirths_by_popularity();
        let degrees: Vec<u32> = bins.iter().map(|b| b.degree).collect();
        assert_eq!(degrees, vec![0, 1, 2]);
        assert_eq!(bins[2].write_range, (4, 7));
        assert_eq!(bins[0].values, 1);
    }

    #[test]
    fn popular_values_are_reborn_more_in_synthetic_traces() {
        use zssd_trace::{SyntheticTrace, WorkloadProfile};
        let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.02), 9);
        let lc = ValueLifecycles::analyze(trace.records());
        let bins = lc.rebirths_by_popularity();
        assert!(bins.len() >= 3, "need several popularity bands");
        let first = bins.first().expect("nonempty");
        let last = bins.last().expect("nonempty");
        assert!(
            last.mean > first.mean,
            "the higher the popularity, the higher the number of rebirths \
             (paper Fig 4c): {} vs {}",
            last.mean,
            first.mean
        );
    }

    #[test]
    fn empty_trace_is_benign() {
        let lc = ValueLifecycles::analyze(&[]);
        assert_eq!(lc.unique_values(), 0);
        assert_eq!(lc.fraction_with_deaths(), 0.0);
        assert!(lc.invalidation_cdf().is_empty());
        assert!(lc.lifetime_by_popularity().is_empty());
    }
}
