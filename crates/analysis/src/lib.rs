//! Trace-only characterization of garbage pages (§II of the paper).
//!
//! "Note that the studies throughout this section are done by
//! analyzing the traces and keeping track of accesses and updates
//! which result in creation of garbage pages, and reusing them." —
//! this crate is that machinery:
//!
//! * [`ValueLifecycles`] — per-value creation / death / rebirth
//!   accounting with interval statistics (Figs 2, 3, 4),
//! * [`infinite_reuse`] — the Fig 1 study: how many writes an
//!   *unlimited* dead-value buffer would short-circuit, with and
//!   without deduplication,
//! * [`PoolReuseSim`] — replay a trace against any
//!   [`DeadValuePool`](zssd_core::DeadValuePool) (Fig 5's LRU sweep,
//!   Fig 6's per-popularity miss breakdown, and MQ-vs-LRU ablations).
//!
//! # Examples
//!
//! ```
//! use zssd_analysis::{infinite_reuse, ValueLifecycles};
//! use zssd_trace::{SyntheticTrace, WorkloadProfile};
//!
//! let trace = SyntheticTrace::generate(&WorkloadProfile::mail().scaled(0.01), 5);
//! let reuse = infinite_reuse(trace.records(), false);
//! // Mail's redundancy means many writes are reusable from garbage.
//! assert!(reuse.reuse_fraction() > 0.3);
//!
//! let lc = ValueLifecycles::analyze(trace.records());
//! assert!(lc.fraction_with_deaths() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lifecycle;
mod reuse;

pub use lifecycle::{PopularityBin, ValueLifecycles, ValueStats};
pub use reuse::{infinite_reuse, InfiniteReuse, PoolReuseSim, PoolRunSummary};
