//! The differential runner: real drive vs. oracle across a config grid.
//!
//! [`run_diff`] replays one trace through one [`Ssd`] configuration
//! with the oracle in lock-step, checking:
//!
//! 1. **read agreement** — every read's content equals the oracle's
//!    expectation,
//! 2. **structural invariants** — [`Ssd::check_invariants`] after every
//!    `check_every`-th command (and always at the end),
//! 3. **conservation identities** — at end of run,
//!    `flash_programs == host + gc + scrub` and
//!    `host_writes == host_programs + revived + deduped`,
//! 4. **oracle bounds** — `revived_writes ≤ revival_bound`,
//!    `revived + deduped ≤ revival_bound + dedup_bound`, and zero for
//!    systems without the corresponding mechanism,
//! 5. **command accounting** — host write/read/trim counters equal the
//!    oracle's.
//!
//! [`fuzz_seed`] wraps the whole per-seed pipeline: generate a trace,
//! run it through [`standard_grid`] (DVP on/off × dedup on/off × fault
//! rates × arrival processes), and on any failure shrink the trace to
//! a minimal reproduction. Everything is a pure function of the seed,
//! so seeds fan out across threads with bit-identical results.
//!
//! [`Ssd`]: zssd_ftl::Ssd
//! [`Ssd::check_invariants`]: zssd_ftl::Ssd::check_invariants

use zssd_core::SystemKind;
use zssd_flash::FaultConfig;
use zssd_ftl::{RunReport, Ssd, SsdConfig, SsdError};
use zssd_trace::{ArrivalProcess, IoOp, TraceRecord};
use zssd_types::{SimDuration, ValueId};

use crate::gen::{generate, mix, GenConfig};
use crate::shrink::shrink;
use crate::spec::{OracleDrive, OracleStats};

/// Logical footprint the fuzzing configs use — the
/// [`SsdConfig::small_test`] drive (256 physical pages, 2 planes), big
/// enough for real GC pressure and small enough that per-command
/// invariant sweeps stay cheap.
pub const FUZZ_LOGICAL_PAGES: u64 = 192;

/// Pool capacity of the pooled systems in the grid: far smaller than
/// the footprint, so eviction paths are exercised too.
const FUZZ_POOL_ENTRIES: usize = 64;

/// Evaluation budget of the shrinker inside [`fuzz_seed`].
const SHRINK_EVALS: usize = 4_096;

/// A drive configuration ready for differential fuzzing: the
/// small-test geometry with the given system, faults, and arrival
/// process, trace-value read verification off (the oracle is the
/// authority; shrunk traces carry stale record values).
pub fn fuzz_config(system: SystemKind, faults: FaultConfig, arrival: ArrivalProcess) -> SsdConfig {
    SsdConfig::small_test()
        .with_system(system)
        .with_faults(faults)
        .with_arrival(arrival)
        .with_verify_reads(false)
        .with_dedup_index_entries(1_024)
}

/// The moderate fault rates of the grid's faulty column. When the
/// `ZSSD_FAULTS` environment knob is set (as in the CI `fuzz-smoke`
/// job) its rates are used; otherwise built-in defaults apply. The
/// decision seed is always re-derived from the fuzz seed so fault
/// patterns decorrelate across seeds but stay reproducible.
pub fn moderate_faults(seed: u64) -> FaultConfig {
    let env = FaultConfig::from_env();
    let base = if env.is_none() {
        FaultConfig::none()
            .with_program_fail(2e-3)
            .with_erase_fail(5e-3)
            .with_read_error(2e-3)
    } else {
        env
    };
    base.with_seed(mix(seed ^ 0xFA01))
}

/// One cell of the differential grid.
#[derive(Debug, Clone)]
pub struct DiffCell {
    /// `system/faults/arrival` label, stable across runs.
    pub label: String,
    /// The drive configuration this cell diffs against the oracle.
    pub config: SsdConfig,
}

/// The standard grid for one fuzz seed: {Baseline, DVP, Dedup,
/// DVP+Dedup} × {clean, moderate faults} × {constant, poisson, bursty}
/// arrivals — 24 cells. Arrival and fault seeds are derived from the
/// fuzz seed, so the whole grid is a pure function of `seed`.
pub fn standard_grid(seed: u64) -> Vec<DiffCell> {
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp {
            entries: FUZZ_POOL_ENTRIES,
        },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup {
            entries: FUZZ_POOL_ENTRIES,
        },
    ];
    let faults = [
        ("clean", FaultConfig::none()),
        ("faulty", moderate_faults(seed)),
    ];
    let gap = SimDuration::from_micros(50);
    let arrivals = [
        ("constant", ArrivalProcess::constant(gap)),
        ("poisson", ArrivalProcess::poisson(gap, mix(seed ^ 0xA201))),
        (
            "bursty",
            ArrivalProcess::bursty(gap, 8.0, mix(seed ^ 0xA202)),
        ),
    ];
    let mut cells = Vec::with_capacity(systems.len() * faults.len() * arrivals.len());
    for system in systems {
        for (fault_name, fault) in &faults {
            for (arrival_name, arrival) in &arrivals {
                cells.push(DiffCell {
                    label: format!("{}/{fault_name}/{arrival_name}", system.label()),
                    config: fuzz_config(system, *fault, *arrival),
                });
            }
        }
    }
    cells
}

/// Deterministic counters of one clean differential replay. Everything
/// here is a pure function of (config, trace), which is what the
/// thread-count bit-identity tests compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffSummary {
    /// Commands replayed.
    pub commands: u64,
    /// Reads checked against the oracle.
    pub reads_checked: u64,
    /// Invariant sweeps performed (including the final one).
    pub invariant_checks: u64,
    /// Host writes serviced.
    pub host_writes: u64,
    /// Writes absorbed by zombie revival.
    pub revived_writes: u64,
    /// Writes absorbed by dedup sharing.
    pub deduped_writes: u64,
    /// NAND page programs (host + GC + scrub).
    pub flash_programs: u64,
    /// Block erases.
    pub erases: u64,
    /// Trims serviced.
    pub trims: u64,
    /// Injected program failures survived.
    pub program_failures: u64,
    /// Injected erase failures survived.
    pub erase_failures: u64,
    /// Reads that needed an ECC retry.
    pub read_retries: u64,
    /// Blocks retired after repeated erase failure.
    pub retired_blocks: u64,
    /// `Some(step)` when fault-injected capacity loss (bad pages,
    /// retired blocks) over-committed the drive mid-trace. The replay
    /// stops there: every command before the step was verified, but
    /// the end-of-run checks are skipped because the dying write
    /// aborted mid-flight. Only possible on faulty cells — a clean
    /// drive running out of space is still reported as a divergence.
    pub capacity_death_at: Option<u64>,
}

/// Replays `records` through a drive built from `config` with the
/// oracle in lock-step. `check_every` is the invariant-sweep period in
/// commands (0 disables periodic sweeps; the end-of-run sweep always
/// happens).
///
/// On a fault-injected config, a write failing with
/// [`SsdError::OutOfSpace`] ends the replay gracefully — see
/// [`DiffSummary::capacity_death_at`]. On a clean config the same
/// failure is a divergence.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence:
/// the step index and command for read disagreements and invariant
/// violations, or the failed identity for end-of-run checks.
pub fn run_diff(
    config: &SsdConfig,
    records: &[TraceRecord],
    check_every: usize,
) -> Result<DiffSummary, String> {
    run_diff_with(config, records, check_every, &crate::spec::selftest_mutate)
}

/// [`run_diff`] with the deliberate off-by-one specification bug armed
/// regardless of build flags — the predicate the shrinker self-test
/// minimizes against.
#[cfg(test)]
pub(crate) fn run_diff_off_by_one(
    config: &SsdConfig,
    records: &[TraceRecord],
    check_every: usize,
) -> Result<DiffSummary, String> {
    run_diff_with(config, records, check_every, &crate::spec::off_by_one)
}

fn run_diff_with(
    config: &SsdConfig,
    records: &[TraceRecord],
    check_every: usize,
    mutate: &dyn Fn(ValueId) -> ValueId,
) -> Result<DiffSummary, String> {
    let mut ssd = Ssd::new(config.clone()).map_err(|e| format!("building the drive: {e}"))?;
    let mut oracle = OracleDrive::new(config.logical_pages, config.precondition);
    let mut arrivals = config.arrival.times();
    let mut reads_checked = 0u64;
    let mut invariant_checks = 0u64;
    let mut capacity_death_at = None;
    for (i, record) in records.iter().enumerate() {
        let arrival = record.arrival.unwrap_or_else(|| arrivals.next_time());
        match record.op {
            IoOp::Write => {
                match ssd.write(record.lpn, record.value, arrival) {
                    Ok(_) => {}
                    // Injected faults burn capacity for good (bad
                    // pages, retired blocks); on the tiny fuzz drive a
                    // long enough trace can legitimately over-commit a
                    // plane. That is the drive reaching end-of-life,
                    // not an FTL bug: stop here with the prefix fully
                    // verified. A clean cell dying this way IS a bug
                    // (space leak) and still falls through to Err.
                    Err(SsdError::OutOfSpace { .. }) if !config.faults.is_none() => {
                        capacity_death_at = Some(i as u64);
                        break;
                    }
                    Err(e) => return Err(format!("step {i} (write {}): {e}", record.lpn)),
                }
                oracle
                    .write_exact(record.lpn, mutate(record.value))
                    .map_err(|e| format!("step {i} (write {}): oracle: {e}", record.lpn))?;
            }
            IoOp::Read => {
                let (got, _) = ssd
                    .read(record.lpn, arrival)
                    .map_err(|e| format!("step {i} (read {}): {e}", record.lpn))?;
                let want = oracle
                    .read(record.lpn)
                    .map_err(|e| format!("step {i} (read {}): oracle: {e}", record.lpn))?;
                if got != want {
                    return Err(format!(
                        "step {i}: read {} returned {got}, oracle expects {want}",
                        record.lpn
                    ));
                }
                reads_checked += 1;
            }
            IoOp::Trim => {
                ssd.trim(record.lpn)
                    .map_err(|e| format!("step {i} (trim {}): {e}", record.lpn))?;
                oracle
                    .trim(record.lpn)
                    .map_err(|e| format!("step {i} (trim {}): oracle: {e}", record.lpn))?;
            }
        }
        if check_every > 0 && (i + 1) % check_every == 0 {
            ssd.check_invariants()
                .map_err(|e| format!("step {i}: invariant violated: {e}"))?;
            invariant_checks += 1;
        }
    }
    // A capacity death aborts its write mid-flight (the drive has
    // counted and killed, but not re-programmed), so neither the
    // structural sweep nor the count identities can be expected to
    // hold at that instant — the per-command checks up to the previous
    // step already covered the executed prefix.
    if capacity_death_at.is_none() {
        ssd.check_invariants()
            .map_err(|e| format!("end of trace: invariant violated: {e}"))?;
        invariant_checks += 1;
    }
    let stats = oracle.stats();
    let report = ssd.into_report();
    if capacity_death_at.is_none() {
        end_checks(&report, stats, config)?;
    }
    Ok(DiffSummary {
        commands: capacity_death_at.unwrap_or(records.len() as u64),
        reads_checked,
        invariant_checks,
        host_writes: report.host_writes,
        revived_writes: report.revived_writes,
        deduped_writes: report.deduped_writes,
        flash_programs: report.flash_programs,
        erases: report.erases,
        trims: report.trims,
        program_failures: report.program_failures,
        erase_failures: report.erase_failures,
        read_retries: report.read_retries,
        retired_blocks: report.retired_blocks,
        capacity_death_at,
    })
}

fn end_checks(report: &RunReport, oracle: OracleStats, config: &SsdConfig) -> Result<(), String> {
    let expect = |name: &str, got: u64, want: u64| {
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "end of trace: {name}: drive {got} vs oracle {want}"
            ))
        }
    };
    expect("host_writes", report.host_writes, oracle.writes)?;
    expect("host_reads", report.host_reads, oracle.reads)?;
    expect("trims", report.trims, oracle.trims)?;
    if report.flash_programs != report.host_programs + report.gc_programs + report.scrub_programs {
        return Err(format!(
            "end of trace: program conservation: flash {} != host {} + gc {} + scrub {}",
            report.flash_programs, report.host_programs, report.gc_programs, report.scrub_programs
        ));
    }
    if report.host_writes != report.host_programs + report.revived_writes + report.deduped_writes {
        return Err(format!(
            "end of trace: write decomposition: writes {} != programs {} + revived {} + deduped {}",
            report.host_writes, report.host_programs, report.revived_writes, report.deduped_writes
        ));
    }
    let system = config.system;
    if !system.uses_pool() && report.revived_writes != 0 {
        return Err(format!(
            "end of trace: {} revived {} writes without a pool",
            system.label(),
            report.revived_writes
        ));
    }
    if !system.uses_dedup() && report.deduped_writes != 0 {
        return Err(format!(
            "end of trace: {} deduped {} writes without an index",
            system.label(),
            report.deduped_writes
        ));
    }
    if report.revived_writes > oracle.revival_bound {
        return Err(format!(
            "end of trace: revived {} writes, oracle's infinite-pool bound is {}",
            report.revived_writes, oracle.revival_bound
        ));
    }
    if report.revived_writes + report.deduped_writes > oracle.revival_bound + oracle.dedup_bound {
        return Err(format!(
            "end of trace: revived {} + deduped {} exceeds the oracle bound {} + {}",
            report.revived_writes, report.deduped_writes, oracle.revival_bound, oracle.dedup_bound
        ));
    }
    Ok(())
}

/// One failing cell of a fuzz seed, with the shrunk reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// The grid cell that diverged.
    pub cell: String,
    /// First-divergence description from [`run_diff`].
    pub detail: String,
    /// The minimized failing trace (see [`shrink`]).
    pub shrunk: Vec<TraceRecord>,
    /// A one-line recipe for regenerating the full failing input.
    pub repro: String,
}

/// Everything one fuzz seed produced: per-cell summaries in grid order
/// plus any failures. A pure function of `(seed, budget, check_every)`
/// and the `ZSSD_FAULTS` environment — the thread-count determinism
/// tests compare these wholesale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedOutcome {
    /// The fuzz seed.
    pub seed: u64,
    /// Commands in the generated trace.
    pub commands: u64,
    /// `(cell label, summary)` for every clean cell, in grid order.
    pub cells: Vec<(String, DiffSummary)>,
    /// Diverging cells, in grid order.
    pub failures: Vec<FuzzFailure>,
}

impl SeedOutcome {
    /// Whether every cell of the grid agreed with the oracle.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one fuzz seed end to end: generate `budget` commands, diff
/// them through every cell of [`standard_grid`], and shrink any
/// failure to a minimal reproduction.
pub fn fuzz_seed(seed: u64, budget: usize, check_every: usize) -> SeedOutcome {
    let records = generate(seed, &GenConfig::standard(budget));
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for cell in standard_grid(seed) {
        match run_diff(&cell.config, &records, check_every) {
            Ok(summary) => cells.push((cell.label, summary)),
            Err(detail) => {
                let shrunk = shrink(&records, SHRINK_EVALS, |t| {
                    run_diff(&cell.config, t, check_every).is_err()
                });
                failures.push(FuzzFailure {
                    repro: format!(
                        "zssd fuzz --seeds 1 --base-seed {seed} --budget {budget}  # cell {}",
                        cell.label
                    ),
                    cell: cell.label,
                    detail,
                    shrunk: shrunk.records,
                });
            }
        }
    }
    SeedOutcome {
        seed,
        commands: records.len() as u64,
        cells,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_cell(system: SystemKind) -> SsdConfig {
        fuzz_config(
            system,
            FaultConfig::none(),
            ArrivalProcess::constant(SimDuration::from_micros(50)),
        )
    }

    #[test]
    fn grid_has_the_advertised_shape() {
        let grid = standard_grid(9);
        assert_eq!(grid.len(), 24);
        let labels: Vec<&str> = grid.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"Baseline/clean/constant"));
        assert!(labels.contains(&"DVP+Dedup-64/faulty/bursty"));
        for cell in &grid {
            cell.config.validate().expect("every cell validates");
        }
    }

    #[cfg(not(zssd_fuzz_selftest))]
    #[test]
    fn generated_traces_agree_with_the_oracle_on_every_system() {
        let records = generate(5, &GenConfig::standard(1_500));
        for system in [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 64 },
            SystemKind::Dedup,
            SystemKind::DvpPlusDedup { entries: 64 },
        ] {
            let summary = run_diff(&clean_cell(system), &records, 16)
                .unwrap_or_else(|e| panic!("{}: {e}", system.label()));
            assert_eq!(summary.commands, 1_500);
            assert!(summary.reads_checked > 0);
            assert!(summary.invariant_checks > 0);
        }
    }

    #[cfg(not(zssd_fuzz_selftest))]
    #[test]
    fn pooled_systems_actually_revive_on_generated_traces() {
        let records = generate(2, &GenConfig::standard(2_000));
        let dvp = run_diff(&clean_cell(SystemKind::MqDvp { entries: 64 }), &records, 0)
            .expect("clean diff");
        assert!(dvp.revived_writes > 0, "the adversarial phases must fire");
        let combo = run_diff(
            &clean_cell(SystemKind::DvpPlusDedup { entries: 64 }),
            &records,
            0,
        )
        .expect("clean diff");
        assert!(combo.deduped_writes > 0, "dedup must fire too");
    }

    #[test]
    fn the_armed_off_by_one_bug_is_caught() {
        let records = generate(1, &GenConfig::standard(4_000));
        let err = run_diff_off_by_one(&clean_cell(SystemKind::Baseline), &records, 0)
            .expect_err("the armed oracle bug must diverge");
        assert!(
            err.contains("oracle expects"),
            "read divergence, got: {err}"
        );
    }

    // Lethal fault rates erode the tiny fuzz drive's over-provisioning
    // (bad pages, retired blocks) until a plane over-commits. That is
    // the drive dying of injected wear, not a correctness bug: the diff
    // ends gracefully at the fatal write with the prefix verified.
    #[test]
    fn fault_induced_capacity_death_truncates_gracefully() {
        let lethal = FaultConfig::none()
            .with_program_fail(0.2)
            .with_erase_fail(0.5)
            .with_seed(0xC0FFEE);
        let config = fuzz_config(
            SystemKind::Baseline,
            lethal,
            ArrivalProcess::constant(SimDuration::from_micros(50)),
        );
        let records = generate(0xDEAD, &GenConfig::standard(4_000));
        let summary = run_diff(&config, &records, 256).expect("capacity death is not a divergence");
        let died_at = summary
            .capacity_death_at
            .expect("lethal rates must over-commit the 64-page OP within 4k commands");
        assert_eq!(
            summary.commands, died_at,
            "commands counts the verified prefix"
        );
        assert!((died_at as usize) < records.len());
        assert_eq!(
            run_diff(&config, &records, 256),
            Ok(summary),
            "the death step is a pure function of the inputs"
        );
    }

    #[cfg(not(zssd_fuzz_selftest))]
    #[test]
    fn fuzz_seed_is_a_pure_function_of_its_inputs() {
        let a = fuzz_seed(3, 400, 8);
        let b = fuzz_seed(3, 400, 8);
        assert_eq!(a, b);
        assert!(a.ok(), "seed 3 must be clean: {:?}", a.failures);
        assert_eq!(a.cells.len(), 24);
    }

    // The shrinker self-test: arm the off-by-one specification bug
    // explicitly, fuzz a 10k-op trace into it, and require the shrinker
    // to cut the reproduction down to a handful of operations that
    // replay deterministically from a corpus file.
    #[test]
    fn shrinker_selftest_minimizes_the_off_by_one_bug() {
        let records = generate(0xB06, &GenConfig::standard(10_000));
        let config = clean_cell(SystemKind::MqDvp { entries: 64 });
        let fails = |t: &[TraceRecord]| run_diff_off_by_one(&config, t, 64).is_err();
        assert!(fails(&records), "a 10k-op trace must trip the armed bug");
        let result = crate::shrink(&records, 4_096, fails);
        assert!(
            result.records.len() <= 20,
            "shrunk to {} ops (budget: {} evals)",
            result.records.len(),
            result.evaluations
        );
        // The minimized trace survives corpus hygiene and replays
        // deterministically from disk: same divergence, every time.
        let normal = crate::normalize(&result.records, FUZZ_LOGICAL_PAGES, true);
        let dir = std::env::temp_dir().join(format!("zssd-selftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::write_corpus(&dir, "off-by-one", &["selftest".to_owned()], &normal)
            .expect("corpus write");
        let loaded = crate::load_corpus(&dir).expect("corpus load");
        assert_eq!(loaded.len(), 1);
        let a = run_diff_off_by_one(&config, &loaded[0].1, 1).expect_err("still fails");
        let b = run_diff_off_by_one(&config, &loaded[0].1, 1).expect_err("still fails");
        assert_eq!(a, b, "deterministic divergence");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // With `--cfg zssd_fuzz_selftest` the oracle itself is buggy: the
    // full pipeline must catch it, and the shrinker must reduce the
    // reproduction to a handful of operations.
    #[cfg(zssd_fuzz_selftest)]
    #[test]
    fn selftest_armed_bug_fails_the_fuzz_pipeline() {
        let outcome = fuzz_seed(1, 10_000, 0);
        assert!(!outcome.ok(), "the armed off-by-one must diverge");
        for failure in &outcome.failures {
            assert!(
                failure.shrunk.len() <= 20,
                "{}: shrunk to {} ops",
                failure.cell,
                failure.shrunk.len()
            );
        }
    }
}
