//! Seeded adversarial command-sequence generator.
//!
//! Traces come out of a [`FuzzRng`] built on the same splitmix64
//! finalizer as `zssd_flash::fault` — pure functions of the seed, no
//! global state, so a seed printed by a failing CI run reproduces the
//! exact trace on any machine (DESIGN.md §12).
//!
//! The generator is phase-structured rather than uniformly random:
//! uniform traces almost never trigger revival, dedup sharing, or GC
//! emergencies on a small drive. Each phase is a short burst of one
//! adversarial pattern:
//!
//! * **hot overwrite** — a few values cycled over a small LPN window,
//!   creating kill/rebirth churn (the paper's zombie pattern),
//! * **sequential fill** — fresh never-seen values, pure GC pressure,
//! * **trim storm** — discards across the whole address space,
//! * **read sweep** — interleaved verification points,
//! * **dedup burst** — one value written to many LPNs, occasionally a
//!   page's *pre-trace* content (probing dedup against the
//!   preconditioned index),
//! * **revive probe** — write / kill / rewrite triples aimed squarely
//!   at the dead-value pool.
//!
//! Every read record carries the content the generator's own shadow
//! map expects at that point, so full (unshrunk) traces are
//! self-checking through `RunReport::read_mismatches` too.

use zssd_trace::{initial_value_of, TraceRecord};
use zssd_types::{Lpn, ValueId};

/// The splitmix64 finalizer — the same mixing discipline as
/// `zssd_flash::fault`, kept private there and small enough to restate.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator: a splitmix64 counter stream. Not a
/// statistical-quality PRNG — a reproducibility contract. The same
/// seed yields the same stream on every platform and thread count.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: mix(seed) }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// A uniform draw in `0..n` (`n > 0`; the modulo bias is harmless
    /// at fuzzing's tiny ranges).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `per_1024 / 1024`.
    pub fn chance(&mut self, per_1024: u64) -> bool {
        self.below(1024) < per_1024
    }
}

/// Shape parameters of a generated trace.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Logical address space the trace touches (must not exceed the
    /// replaying drive's `logical_pages`).
    pub logical_pages: u64,
    /// Number of commands to emit.
    pub ops: usize,
    /// Size of the recurring-value universe; small on purpose so
    /// content recurs and the pool and dedup index actually fire.
    pub value_space: u64,
    /// Number of hot values the overwrite phases cycle through.
    pub hot_values: u64,
}

impl GenConfig {
    /// The standard fuzzing shape: the `SsdConfig::small_test`
    /// footprint (192 logical pages) with a 512-value universe.
    pub fn standard(ops: usize) -> Self {
        GenConfig {
            logical_pages: crate::diff::FUZZ_LOGICAL_PAGES,
            ops,
            value_space: 512,
            hot_values: 16,
        }
    }
}

/// Generates a deterministic adversarial trace of `config.ops`
/// commands from `seed`.
pub fn generate(seed: u64, config: &GenConfig) -> Vec<TraceRecord> {
    let pages = config.logical_pages;
    assert!(pages > 0 && config.value_space > 0 && config.hot_values > 0);
    let mut rng = FuzzRng::new(seed);
    let hot: Vec<ValueId> = (0..config.hot_values)
        .map(|_| ValueId::new(rng.below(config.value_space)))
        .collect();
    // Shadow of the drive's logical state, used only to label read
    // records with their expected content.
    let mut live: Vec<Option<ValueId>> = vec![None; pages as usize];
    let mut fresh = config.value_space; // fresh values start above the recurring universe
    let mut out: Vec<TraceRecord> = Vec::with_capacity(config.ops);

    while out.len() < config.ops {
        let len = (8 + rng.below(41)) as usize;
        match rng.below(6) {
            // Hot overwrites: few values, narrow LPN window.
            0 => {
                let window = (pages / 4).max(1);
                let base = rng.below(pages);
                for _ in 0..len {
                    let lpn = Lpn::new((base + rng.below(window)) % pages);
                    let value = hot[rng.below(hot.len() as u64) as usize];
                    push_write(&mut out, &mut live, lpn, value);
                }
            }
            // Sequential fill with fresh content: GC pressure.
            1 => {
                let start = rng.below(pages);
                for i in 0..len as u64 {
                    let lpn = Lpn::new((start + i) % pages);
                    let value = ValueId::new(fresh);
                    fresh += 1;
                    push_write(&mut out, &mut live, lpn, value);
                }
            }
            // Trim storm.
            2 => {
                for _ in 0..len {
                    let lpn = Lpn::new(rng.below(pages));
                    live[lpn.index() as usize] = None;
                    out.push(TraceRecord::trim(out.len() as u64, lpn));
                }
            }
            // Read sweep: verification points.
            3 => {
                for _ in 0..len {
                    let lpn = Lpn::new(rng.below(pages));
                    let expected =
                        live[lpn.index() as usize].unwrap_or_else(|| initial_value_of(lpn));
                    out.push(TraceRecord::read(out.len() as u64, lpn, expected));
                }
            }
            // Dedup burst: one value sprayed across many LPNs;
            // sometimes a page's pre-trace content, probing dedup
            // against the preconditioned fingerprint index.
            4 => {
                let value = if rng.chance(256) {
                    initial_value_of(Lpn::new(rng.below(pages)))
                } else {
                    ValueId::new(rng.below(config.value_space))
                };
                for _ in 0..len {
                    let lpn = Lpn::new(rng.below(pages));
                    push_write(&mut out, &mut live, lpn, value);
                }
            }
            // Revive probes: write, kill, rewrite.
            _ => {
                for _ in 0..len / 3 + 1 {
                    let value = hot[rng.below(hot.len() as u64) as usize];
                    let a = Lpn::new(rng.below(pages));
                    let b = Lpn::new(rng.below(pages));
                    push_write(&mut out, &mut live, a, value);
                    if rng.chance(512) {
                        push_write(&mut out, &mut live, a, ValueId::new(fresh));
                        fresh += 1;
                    } else {
                        live[a.index() as usize] = None;
                        out.push(TraceRecord::trim(out.len() as u64, a));
                    }
                    push_write(&mut out, &mut live, b, value);
                }
            }
        }
    }
    out.truncate(config.ops);
    out
}

fn push_write(out: &mut Vec<TraceRecord>, live: &mut [Option<ValueId>], lpn: Lpn, value: ValueId) {
    live[lpn.index() as usize] = Some(value);
    out.push(TraceRecord::write(out.len() as u64, lpn, value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleDrive;

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::standard(1_000);
        assert_eq!(generate(7, &config), generate(7, &config));
        assert_ne!(generate(7, &config), generate(8, &config));
    }

    #[test]
    fn traces_have_the_requested_shape() {
        let config = GenConfig::standard(500);
        let records = generate(3, &config);
        assert_eq!(records.len(), 500);
        assert!(records.iter().all(|r| r.lpn.index() < config.logical_pages));
        assert!(records.iter().enumerate().all(|(i, r)| r.seq == i as u64));
        let writes = records.iter().filter(|r| r.is_write()).count();
        let trims = records.iter().filter(|r| r.is_trim()).count();
        let reads = records.len() - writes - trims;
        assert!(writes > 0 && trims > 0 && reads > 0, "all op kinds present");
    }

    #[test]
    fn read_records_carry_oracle_expected_content() {
        let records = generate(11, &GenConfig::standard(2_000));
        let mut oracle = OracleDrive::new(crate::diff::FUZZ_LOGICAL_PAGES, true);
        for record in &records {
            if let Some(expected) = oracle.step(record).expect("in range") {
                assert_eq!(expected, record.value, "read at seq {}", record.seq);
            }
        }
    }

    #[test]
    fn rng_streams_are_stable_across_clones() {
        let mut a = FuzzRng::new(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // chance() is a plain threshold over below().
        let mut c = FuzzRng::new(1);
        let hits = (0..10_000).filter(|_| c.chance(512)).count();
        assert!((4_000..6_000).contains(&hits), "~50% hit rate, got {hits}");
    }
}
