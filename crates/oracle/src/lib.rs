//! `zssd-oracle` — the differential-testing harness of the simulator.
//!
//! The headline numbers of *Reviving Zombie Pages on SSDs* are pure
//! FTL-bookkeeping claims, so they are only as trustworthy as the
//! [`Ssd`] state machine itself. This crate earns that trust
//! mechanically instead of by inspection:
//!
//! * [`OracleDrive`] — a timing-free executable specification: a flat
//!   `Lpn → ValueId` map with the host-visible semantics of write,
//!   read, and trim, plus infinite-pool revival and unbounded-dedup
//!   upper bounds the real counters may never exceed,
//! * [`generate`] — a seeded, splitmix64-driven adversarial trace
//!   generator (hot-value churn, trim storms, GC-pressure fills,
//!   dedup bursts, revive probes),
//! * [`run_diff`] — lock-step replay of one trace through the real
//!   drive and the oracle, asserting read agreement on every read,
//!   [`Ssd::check_invariants`] after every command, and the
//!   conservation identities at the end,
//! * [`fuzz_seed`] / [`standard_grid`] — the per-seed pipeline over
//!   the full configuration grid (DVP on/off × dedup on/off × fault
//!   rates × arrival processes); pure functions of the seed, so seeds
//!   fan out across threads bit-identically,
//! * [`shrink`] — delta-debugging minimization of any failing trace,
//! * [`write_corpus`] / [`load_corpus`] / [`normalize`] — the
//!   `tests/corpus/` regression-trace tooling.
//!
//! Compiling with `--cfg zssd_fuzz_selftest` arms a deliberate
//! off-by-one bug in the oracle's write path so CI can prove the
//! harness detects and minimizes real divergences (DESIGN.md §12).
//!
//! [`Ssd`]: zssd_ftl::Ssd
//! [`Ssd::check_invariants`]: zssd_ftl::Ssd::check_invariants

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod diff;
mod gen;
mod shrink;
mod spec;

pub use corpus::{load_corpus, normalize, write_corpus};
pub use diff::{
    fuzz_config, fuzz_seed, moderate_faults, run_diff, standard_grid, DiffCell, DiffSummary,
    FuzzFailure, SeedOutcome, FUZZ_LOGICAL_PAGES,
};
pub use gen::{generate, FuzzRng, GenConfig};
pub use shrink::{shrink, ShrinkResult};
pub use spec::{OracleDrive, OracleError, OracleStats};
