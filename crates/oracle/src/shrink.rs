//! Delta-debugging trace minimization.
//!
//! Given a failing trace and a failure predicate, [`shrink`] finds a
//! much smaller trace that still fails:
//!
//! 1. **shortest failing prefix** — replay aborts at the first
//!    divergence, so "prefix of length n fails" is monotone in n and a
//!    binary search finds the boundary in `O(log n)` replays (end-of-
//!    run identity failures are not monotone; the search still lands
//!    on *a* failing prefix, just not necessarily the shortest — the
//!    next stage keeps cutting),
//! 2. **ddmin chunk removal** — repeatedly try deleting contiguous
//!    chunks, halving the chunk size until single commands, restarting
//!    whenever a deletion sticks, until no single command can be
//!    removed.
//!
//! The predicate is called `O(n + evals)` times, capped by
//! `max_evals`; on budget exhaustion the best trace found so far is
//! returned (still failing — every intermediate accepted trace fails).
//! Record `seq` numbers are preserved so a shrunk command can be traced
//! back to its position in the original input.

use zssd_trace::TraceRecord;

/// The result of a [`shrink`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkResult {
    /// The minimized trace; still fails the predicate.
    pub records: Vec<TraceRecord>,
    /// Predicate evaluations spent.
    pub evaluations: usize,
}

/// Minimizes `records` against `fails` (which must return `true` for
/// the input — otherwise the input is returned untouched).
pub fn shrink<F>(records: &[TraceRecord], max_evals: usize, fails: F) -> ShrinkResult
where
    F: Fn(&[TraceRecord]) -> bool,
{
    let mut evals = 0usize;
    let check = |t: &[TraceRecord], evals: &mut usize| {
        *evals += 1;
        fails(t)
    };
    if records.is_empty() || !check(records, &mut evals) {
        return ShrinkResult {
            records: records.to_vec(),
            evaluations: evals,
        };
    }

    // 1. Shortest failing prefix. Invariant: records[..hi] fails.
    let (mut lo, mut hi) = (1usize, records.len());
    while lo < hi && evals < max_evals {
        let mid = lo + (hi - lo) / 2;
        if check(&records[..mid], &mut evals) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut current: Vec<TraceRecord> = records[..hi].to_vec();

    // 2. ddmin: delete chunks, halving granularity until single
    // commands stop being removable.
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0usize;
        while start < current.len() {
            if evals >= max_evals {
                return ShrinkResult {
                    records: current,
                    evaluations: evals,
                };
            }
            let end = (start + chunk).min(current.len());
            let candidate: Vec<TraceRecord> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && check(&candidate, &mut evals) {
                current = candidate;
                removed_any = true;
                // The next chunk now starts at the same index.
            } else {
                start = end;
            }
        }
        if removed_any {
            continue; // retry at the same granularity
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    ShrinkResult {
        records: current,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::{Lpn, ValueId};

    fn trace_of(values: &[u64]) -> Vec<TraceRecord> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| TraceRecord::write(i as u64, Lpn::new(i as u64 % 8), ValueId::new(v)))
            .collect()
    }

    #[test]
    fn shrinks_to_the_single_triggering_command() {
        let mut values: Vec<u64> = (100..400).collect();
        values[137] = 13; // the poison value
        let records = trace_of(&values);
        let result = shrink(&records, 10_000, |t| {
            t.iter().any(|r| r.value == ValueId::new(13))
        });
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].value, ValueId::new(13));
        assert_eq!(result.records[0].seq, 137, "original seq preserved");
    }

    #[test]
    fn shrinks_conjunctive_failures_to_both_commands() {
        let mut values: Vec<u64> = (100..1100).collect();
        values[41] = 13;
        values[800] = 14;
        let records = trace_of(&values);
        let needs_both = |t: &[TraceRecord]| {
            t.iter().any(|r| r.value == ValueId::new(13))
                && t.iter().any(|r| r.value == ValueId::new(14))
        };
        let result = shrink(&records, 10_000, needs_both);
        assert_eq!(result.records.len(), 2);
        assert!(needs_both(&result.records));
    }

    #[test]
    fn non_failing_input_is_returned_untouched() {
        let records = trace_of(&[1, 2, 3]);
        let result = shrink(&records, 100, |_| false);
        assert_eq!(result.records, records);
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn an_exhausted_budget_still_returns_a_failing_trace() {
        let values: Vec<u64> = (0..2_000).map(|i| 100 + i % 7).collect();
        let records = trace_of(&values);
        let fails = |t: &[TraceRecord]| t.len() >= 10;
        let result = shrink(&records, 25, fails);
        assert!(result.evaluations <= 25);
        assert!(fails(&result.records), "intermediate traces always fail");
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let result = shrink(&[], 100, |_| true);
        assert!(result.records.is_empty());
    }
}
