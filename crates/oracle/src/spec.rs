//! The timing-free executable specification of the drive.
//!
//! [`OracleDrive`] is the reference the real [`Ssd`] is diffed against:
//! a flat `Lpn → ValueId` map with the paper's host-visible semantics
//! and none of the mechanism. It knows nothing about flash geometry,
//! GC, block allocation, or wall-clock time — which is exactly why it
//! is trustworthy: every line is auditable against §III of the paper.
//!
//! Besides the exact read semantics, the oracle tracks two *upper
//! bounds* the mechanism can never beat:
//!
//! * `revival_bound` — writes whose content had at least one dead copy
//!   at write time (an infinite, never-collected dead-value pool would
//!   revive exactly these),
//! * `dedup_bound` — writes whose content was live somewhere at write
//!   time but had no dead copy (an unbounded fingerprint index could
//!   dedup these).
//!
//! The real drive's `revived_writes`/`deduped_writes` counters must
//! stay at or below these bounds for any pool capacity, GC schedule,
//! or fault pattern; the differential runner asserts that at the end
//! of every replay.
//!
//! [`Ssd`]: zssd_ftl::Ssd

use std::collections::HashMap;
use std::fmt;

use zssd_trace::{initial_value_of, IoOp, TraceRecord};
use zssd_types::{Lpn, ValueId};

/// Host-level counters of an oracle replay, compared against the real
/// drive's [`RunReport`] by the differential runner.
///
/// [`RunReport`]: zssd_ftl::RunReport
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Host writes accepted.
    pub writes: u64,
    /// Host reads accepted.
    pub reads: u64,
    /// Host trims accepted (idempotent trims included, matching
    /// [`Ssd::trim`]).
    ///
    /// [`Ssd::trim`]: zssd_ftl::Ssd::trim
    pub trims: u64,
    /// Writes an infinite dead-value pool would have revived.
    pub revival_bound: u64,
    /// Writes an unbounded dedup index would have absorbed (and the
    /// pool could not have revived first).
    pub dedup_bound: u64,
}

/// An out-of-range logical address handed to the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError {
    message: String,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for OracleError {}

/// The reference drive: what every read must return, independent of
/// pool capacity, dedup index size, GC schedule, or injected faults.
///
/// # Examples
///
/// ```
/// use zssd_oracle::OracleDrive;
/// use zssd_trace::initial_value_of;
/// use zssd_types::{Lpn, ValueId};
///
/// let mut oracle = OracleDrive::new(8, true);
/// oracle.write(Lpn::new(3), ValueId::new(7))?;
/// assert_eq!(oracle.expected_read(Lpn::new(3))?, ValueId::new(7));
/// oracle.trim(Lpn::new(3))?;
/// // Trimmed (and never-written) pages read as pre-trace content.
/// assert_eq!(oracle.expected_read(Lpn::new(3))?, initial_value_of(Lpn::new(3)));
/// # Ok::<(), zssd_oracle::OracleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OracleDrive {
    live: Vec<Option<ValueId>>,
    /// How many logical pages currently hold each value.
    live_refs: HashMap<ValueId, u64>,
    /// Dead copies per value. Deliberately *permissive*: every kill
    /// deposits a copy even when live references remain (the
    /// non-deduplicating drive really does leave a garbage page
    /// behind), so the derived revival bound holds for every system.
    dead_copies: HashMap<ValueId, u64>,
    stats: OracleStats,
}

impl OracleDrive {
    /// A drive of `logical_pages` pages. With `preconditioned` set,
    /// every page starts mapped to its [`initial_value_of`] content
    /// (mirroring [`SsdConfig::precondition`]); otherwise pages start
    /// unmapped — reads return the same initial content either way,
    /// but preconditioned content can die and feed the bounds.
    ///
    /// [`SsdConfig::precondition`]: zssd_ftl::SsdConfig
    pub fn new(logical_pages: u64, preconditioned: bool) -> Self {
        let pages = usize::try_from(logical_pages).expect("oracle footprints fit in memory");
        let mut oracle = OracleDrive {
            live: vec![None; pages],
            live_refs: HashMap::new(),
            dead_copies: HashMap::new(),
            stats: OracleStats::default(),
        };
        if preconditioned {
            for (i, slot) in oracle.live.iter_mut().enumerate() {
                let value = initial_value_of(Lpn::new(i as u64));
                *slot = Some(value);
                oracle.live_refs.insert(value, 1);
            }
        }
        oracle
    }

    /// The logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.live.len() as u64
    }

    /// Counters so far.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// The content a read of `lpn` must return right now: the last
    /// value written, or the pre-trace content when the page was never
    /// written (or was trimmed since).
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    pub fn expected_read(&self, lpn: Lpn) -> Result<ValueId, OracleError> {
        let i = self.index(lpn)?;
        Ok(self.live[i].unwrap_or_else(|| initial_value_of(lpn)))
    }

    /// Counting variant of [`OracleDrive::expected_read`].
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    pub fn read(&mut self, lpn: Lpn) -> Result<ValueId, OracleError> {
        let value = self.expected_read(lpn)?;
        self.stats.reads += 1;
        Ok(value)
    }

    /// Records a host write of `value` to `lpn`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    pub fn write(&mut self, lpn: Lpn, value: ValueId) -> Result<(), OracleError> {
        self.write_exact(lpn, selftest_mutate(value))
    }

    /// The write path with no self-test mutation applied, used by the
    /// differential runner (which injects its own mutation hook) and
    /// by trace normalization.
    pub(crate) fn write_exact(&mut self, lpn: Lpn, value: ValueId) -> Result<(), OracleError> {
        let i = self.index(lpn)?;
        self.stats.writes += 1;
        // Score the bounds *before* the overwrite kills the old
        // content, mirroring the real §IV-C order (pool lookup, then
        // dedup, then program) on the pre-write state.
        if self.dead_copies.get(&value).is_some_and(|&n| n > 0) {
            self.stats.revival_bound += 1;
            self.take_dead_copy(value);
        } else if self.live_refs.get(&value).is_some_and(|&n| n > 0) {
            self.stats.dedup_bound += 1;
        }
        self.kill_current(i);
        self.live[i] = Some(value);
        *self.live_refs.entry(value).or_insert(0) += 1;
        Ok(())
    }

    /// Records a host trim of `lpn`: the page is unmapped and its
    /// content (if any) dies. Trimming an unmapped page is an
    /// acknowledged no-op, exactly like [`Ssd::trim`].
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    ///
    /// [`Ssd::trim`]: zssd_ftl::Ssd::trim
    pub fn trim(&mut self, lpn: Lpn) -> Result<(), OracleError> {
        let i = self.index(lpn)?;
        self.stats.trims += 1;
        self.kill_current(i);
        Ok(())
    }

    /// Applies one trace record, returning the expected content for
    /// reads (the record's own `value` field is ignored — shrunk
    /// traces legitimately carry stale read expectations).
    ///
    /// # Errors
    ///
    /// Returns an error if the record's `lpn` is beyond the logical
    /// capacity.
    pub fn step(&mut self, record: &TraceRecord) -> Result<Option<ValueId>, OracleError> {
        match record.op {
            IoOp::Write => {
                self.write(record.lpn, record.value)?;
                Ok(None)
            }
            IoOp::Read => Ok(Some(self.read(record.lpn)?)),
            IoOp::Trim => {
                self.trim(record.lpn)?;
                Ok(None)
            }
        }
    }

    fn index(&self, lpn: Lpn) -> Result<usize, OracleError> {
        let i = lpn.index();
        if i >= self.live.len() as u64 {
            return Err(OracleError {
                message: format!("{lpn} beyond logical capacity {}", self.live.len()),
            });
        }
        Ok(i as usize)
    }

    fn kill_current(&mut self, i: usize) {
        if let Some(old) = self.live[i].take() {
            if let Some(refs) = self.live_refs.get_mut(&old) {
                *refs -= 1;
                if *refs == 0 {
                    self.live_refs.remove(&old);
                }
            }
            *self.dead_copies.entry(old).or_insert(0) += 1;
        }
    }

    fn take_dead_copy(&mut self, value: ValueId) {
        if let Some(n) = self.dead_copies.get_mut(&value) {
            *n -= 1;
            if *n == 0 {
                self.dead_copies.remove(&value);
            }
        }
    }
}

/// The deliberate specification bug armed by `--cfg zssd_fuzz_selftest`
/// builds: values on a thin, stateless slice of the value space are
/// recorded off by one. The shrinker self-test (and the CI `fuzz-smoke`
/// job) prove the differential harness catches this and minimizes the
/// failing trace to a handful of operations. The mutation is stateless
/// on purpose — a counter-keyed bug would put a floor under how far a
/// trace can shrink.
#[cfg(any(test, zssd_fuzz_selftest))]
pub(crate) fn off_by_one(value: ValueId) -> ValueId {
    if value.raw() % 257 == 13 {
        ValueId::new(value.raw() + 1)
    } else {
        value
    }
}

#[cfg(zssd_fuzz_selftest)]
pub(crate) fn selftest_mutate(value: ValueId) -> ValueId {
    off_by_one(value)
}

#[cfg(not(zssd_fuzz_selftest))]
pub(crate) fn selftest_mutate(value: ValueId) -> ValueId {
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_and_trimmed_pages_read_initial_content() {
        let mut o = OracleDrive::new(4, false);
        let lpn = Lpn::new(2);
        assert_eq!(
            o.expected_read(lpn).expect("in range"),
            initial_value_of(lpn)
        );
        o.write(lpn, ValueId::new(9)).expect("write");
        assert_eq!(o.expected_read(lpn).expect("in range"), ValueId::new(9));
        o.trim(lpn).expect("trim");
        assert_eq!(
            o.expected_read(lpn).expect("in range"),
            initial_value_of(lpn)
        );
        // Idempotent trim still counts, like Ssd::trim.
        o.trim(lpn).expect("re-trim");
        assert_eq!(o.stats().trims, 2);
    }

    #[test]
    fn out_of_range_addresses_are_rejected() {
        let mut o = OracleDrive::new(4, true);
        assert!(o.expected_read(Lpn::new(4)).is_err());
        assert!(o.write(Lpn::new(99), ValueId::new(1)).is_err());
        assert!(o.trim(Lpn::new(4)).is_err());
        assert_eq!(
            o.stats(),
            OracleStats::default(),
            "rejected ops count nothing"
        );
    }

    #[test]
    fn revival_bound_tracks_dead_copies() {
        let mut o = OracleDrive::new(8, false);
        let (a, b) = (Lpn::new(0), Lpn::new(1));
        let v = ValueId::new(7);
        o.write(a, v).expect("write");
        o.write(a, ValueId::new(8)).expect("overwrite kills 7");
        o.write(b, v).expect("rewrite of dead content");
        assert_eq!(o.stats().revival_bound, 1);
        // The dead copy was consumed: a further rewrite sees only the
        // live copy at `b` and scores as a dedup opportunity.
        o.write(Lpn::new(2), v).expect("second rewrite");
        assert_eq!(o.stats().revival_bound, 1);
        assert_eq!(o.stats().dedup_bound, 1);
    }

    #[test]
    fn preconditioned_content_feeds_the_bounds() {
        let mut o = OracleDrive::new(8, true);
        let lpn = Lpn::new(3);
        // Writing another page's initial content dedups against the
        // preconditioned copy.
        o.write(lpn, initial_value_of(Lpn::new(5))).expect("write");
        assert_eq!(o.stats().dedup_bound, 1);
        // The overwrite killed lpn 3's own initial content; rewriting
        // it is a revival opportunity.
        o.write(Lpn::new(6), initial_value_of(lpn))
            .expect("rewrite");
        assert_eq!(o.stats().revival_bound, 1);
    }

    #[test]
    fn same_content_rewrite_scores_as_dedup() {
        let mut o = OracleDrive::new(8, false);
        let lpn = Lpn::new(0);
        let v = ValueId::new(5);
        o.write(lpn, v).expect("write");
        o.write(lpn, v).expect("rewrite in place");
        assert_eq!(o.stats().dedup_bound, 1);
        assert_eq!(o.expected_read(lpn).expect("in range"), v);
    }

    #[test]
    fn step_applies_records_and_reports_read_expectations() {
        let mut o = OracleDrive::new(8, false);
        let w = TraceRecord::write(0, Lpn::new(1), ValueId::new(3));
        let r = TraceRecord::read(1, Lpn::new(1), ValueId::new(999)); // stale
        let t = TraceRecord::trim(2, Lpn::new(1));
        assert_eq!(o.step(&w).expect("write"), None);
        assert_eq!(o.step(&r).expect("read"), Some(ValueId::new(3)));
        assert_eq!(o.step(&t).expect("trim"), None);
        assert_eq!(o.stats().writes, 1);
        assert_eq!(o.stats().reads, 1);
        assert_eq!(o.stats().trims, 1);
    }

    #[test]
    fn off_by_one_is_thin_and_stateless() {
        assert_eq!(off_by_one(ValueId::new(13)), ValueId::new(14));
        assert_eq!(off_by_one(ValueId::new(13 + 257)), ValueId::new(14 + 257));
        assert_eq!(off_by_one(ValueId::new(12)), ValueId::new(12));
        assert_eq!(off_by_one(ValueId::new(0)), ValueId::new(0));
    }
}
