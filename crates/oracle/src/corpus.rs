//! The regression corpus: shrunk traces checked into `tests/corpus/`.
//!
//! Every corpus file is a standard text-format trace (see
//! `zssd_trace::text`) with `@<nanos>` arrival stamps plus `#` header
//! comments recording where it came from — the fuzz seed line that
//! regenerates the full failing input. The `corpus_replay` integration
//! test replays every file through the full differential grid with
//! per-command invariant checks, so a trace that once exposed a bug
//! keeps guarding against it forever.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use zssd_trace::{parse_text, write_text, ArrivalProcess, IoOp, TraceRecord};
use zssd_types::SimDuration;

use crate::spec::OracleDrive;

/// Arrival gap stamped onto corpus traces that lack timestamps.
const CORPUS_GAP: SimDuration = SimDuration::from_micros(25);

/// Rewrites `records` into corpus hygiene: sequence numbers renumbered
/// from zero, every read's recorded value replaced with the oracle's
/// expectation at that point (shrinking leaves stale read values
/// behind), and missing arrival stamps filled from a constant process.
/// `logical_pages`/`preconditioned` describe the drive the trace is
/// meant for (see [`crate::FUZZ_LOGICAL_PAGES`]).
pub fn normalize(
    records: &[TraceRecord],
    logical_pages: u64,
    preconditioned: bool,
) -> Vec<TraceRecord> {
    let mut oracle = OracleDrive::new(logical_pages, preconditioned);
    let mut out = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        let mut record = *record;
        record.seq = i as u64;
        if record.op == IoOp::Write {
            // write_exact: normalization must stay correct even in
            // builds where the public write path is deliberately
            // sabotaged (`--cfg zssd_fuzz_selftest`).
            oracle
                .write_exact(record.lpn, record.value)
                .expect("corpus traces stay within the fuzz footprint");
        } else if record.op == IoOp::Read {
            record.value = oracle
                .read(record.lpn)
                .expect("corpus traces stay within the fuzz footprint");
        } else {
            oracle
                .trim(record.lpn)
                .expect("corpus traces stay within the fuzz footprint");
        }
        out.push(record);
    }
    if out.iter().any(|r| r.arrival.is_none()) {
        ArrivalProcess::constant(CORPUS_GAP).stamp(&mut out);
    }
    out
}

/// Writes a corpus trace to `dir/name.trace` with the given header
/// comment lines (the seed line etc.), creating `dir` if needed.
/// Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_corpus(
    dir: impl AsRef<Path>,
    name: &str,
    header: &[String],
    records: &[TraceRecord],
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.trace"));
    let mut buf = Vec::new();
    for line in header {
        writeln!(buf, "# {line}")?;
    }
    write_text(records, &mut buf)?;
    std::fs::write(&path, buf)?;
    Ok(path)
}

/// Loads every `*.trace` file of a corpus directory, sorted by file
/// name for deterministic replay order. A missing directory is an
/// empty corpus.
///
/// # Errors
///
/// Propagates I/O errors and malformed trace content.
pub fn load_corpus(dir: impl AsRef<Path>) -> io::Result<Vec<(String, Vec<TraceRecord>)>> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.ends_with(".trace").then_some(name)
        })
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(&name))?;
            let records = parse_text(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
            Ok((name, records))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::FUZZ_LOGICAL_PAGES;
    use zssd_types::{Lpn, ValueId};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zssd-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn normalize_renumbers_stamps_and_fixes_reads() {
        // A hand-built shrunk-style fragment with a stale read value.
        let records = vec![
            TraceRecord::write(17, Lpn::new(3), ValueId::new(9)),
            TraceRecord::read(403, Lpn::new(3), ValueId::new(777)),
        ];
        let normal = normalize(&records, FUZZ_LOGICAL_PAGES, true);
        assert_eq!(normal[0].seq, 0);
        assert_eq!(normal[1].seq, 1);
        assert_eq!(normal[1].value, ValueId::new(9), "read expectation fixed");
        assert!(normal.iter().all(|r| r.arrival.is_some()), "stamped");
    }

    #[test]
    fn corpus_round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let records = normalize(
            &generate(4, &GenConfig::standard(120)),
            FUZZ_LOGICAL_PAGES,
            true,
        );
        let header = vec!["regenerate: zssd fuzz --seeds 1 --base-seed 4".to_owned()];
        let path = write_corpus(&dir, "roundtrip", &header, &records).expect("write");
        assert!(path.ends_with("roundtrip.trace"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.starts_with("# regenerate:"), "header preserved");
        let loaded = load_corpus(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "roundtrip.trace");
        assert_eq!(loaded[0].1, records);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_missing_corpus_directory_is_empty() {
        assert!(load_corpus(tmp_dir("missing")).expect("ok").is_empty());
    }
}
