//! Subcommand implementations.

use std::error::Error;

use zssd_core::SystemKind;
use zssd_ftl::{Ssd, SsdConfig};
use zssd_trace::{read_file, write_file, SyntheticTrace, TraceRecord, TraceStats, WorkloadProfile};

use crate::args::{ArgError, Args};

type CliResult = Result<(), Box<dyn Error>>;

const HELP: &str = "\
zssd — the zombie-ssd simulator (Reviving Zombie Pages on SSDs, IISWC'18)

USAGE:
    zssd <command> [--flag value ...]

COMMANDS:
    list                             workloads and systems available
    gen      --workload W --out F    generate a trace file
             [--scale S] [--seed N] [--days D]
    run      --workload W --system SYS   simulate a generated trace
             [--entries N] [--scale S] [--seed N] [--days D]
    replay   --trace F --system SYS      simulate a trace file
             [--entries N] [--footprint P]
    analyze  --workload W            value life-cycle characterization
             [--scale S] [--seed N]
    help                             this text

SYSTEMS (for --system):
    baseline | dvp | lru-dvp | ideal | lxssd | dedup | dvp-dedup
";

/// Routes a command line to its implementation.
pub fn dispatch(argv: &[String]) -> CliResult {
    let Some((command, rest)) = argv.split_first() else {
        println!("{HELP}");
        return Ok(());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "list" => list(),
        "gen" => gen(rest),
        "run" => run(rest),
        "replay" => replay(rest),
        "analyze" => analyze(rest),
        other => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn workload(name: &str) -> Result<WorkloadProfile, ArgError> {
    WorkloadProfile::paper_set()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            ArgError(format!(
                "unknown workload {name:?}; expected web/home/mail/hadoop/trans/desktop"
            ))
        })
}

fn system(name: &str, entries: usize) -> Result<SystemKind, ArgError> {
    Ok(match name {
        "baseline" => SystemKind::Baseline,
        "dvp" => SystemKind::MqDvp { entries },
        "lru-dvp" => SystemKind::LruDvp { entries },
        "ideal" => SystemKind::Ideal,
        "lxssd" => SystemKind::LxSsd { entries },
        "dedup" => SystemKind::Dedup,
        "dvp-dedup" => SystemKind::DvpPlusDedup { entries },
        other => {
            return Err(ArgError(format!(
                "unknown system {other:?}; see `zssd help`"
            )))
        }
    })
}

fn scaled_profile(args: &Args) -> Result<WorkloadProfile, Box<dyn Error>> {
    let mut profile = workload(args.required("workload")?)?;
    let scale: f64 = args.parse_or("scale", 1.0)?;
    if scale != 1.0 {
        profile = profile.scaled(scale);
    }
    let days = match args.optional("days") {
        Some(raw) => raw
            .parse()
            .map_err(|e| ArgError(format!("bad value for --days: {e}")))?,
        None => profile.days,
    };
    Ok(profile.with_days(days))
}

fn list() -> CliResult {
    println!("workloads (Table II profiles):");
    for p in WorkloadProfile::paper_set() {
        println!(
            "  {:8} WR {:>4.0}%  unique writes {:>4.1}%  {} req/day x {} days, footprint {} pages",
            p.name,
            p.write_ratio * 100.0,
            p.unique_write_frac * 100.0,
            p.requests_per_day,
            p.days,
            p.lpn_space
        );
    }
    println!("\nsystems: baseline dvp lru-dvp ideal lxssd dedup dvp-dedup");
    Ok(())
}

fn gen(argv: &[String]) -> CliResult {
    let args = Args::parse(argv, &["workload", "out", "scale", "seed", "days"])?;
    let profile = scaled_profile(&args)?;
    let out = args.required("out")?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    write_file(trace.records(), out)?;
    let stats = TraceStats::measure(trace.records());
    println!("wrote {} records to {out}", trace.records().len());
    println!("{stats}");
    Ok(())
}

fn simulate(records: &[TraceRecord], footprint: u64, system: SystemKind) -> CliResult {
    let config = SsdConfig::for_footprint(footprint).with_system(system);
    eprintln!(
        "simulating {} requests on {} ({} physical pages, OP {:.1}%)...",
        records.len(),
        system,
        config.geometry.total_pages(),
        config.over_provisioning() * 100.0
    );
    let report = Ssd::new(config)?.run_trace(records)?;
    println!("{report}");
    println!(
        "  wear: min {} / mean {:.1} / max {} erases per block",
        report.wear.min_erases, report.wear.mean_erases, report.wear.max_erases
    );
    Ok(())
}

fn run(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &["workload", "system", "entries", "scale", "seed", "days"],
    )?;
    let profile = scaled_profile(&args)?;
    let entries: usize = args.parse_or("entries", 200_000)?;
    let system = system(args.required("system")?, entries)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    simulate(trace.records(), profile.lpn_space, system)
}

fn replay(argv: &[String]) -> CliResult {
    let args = Args::parse(argv, &["trace", "system", "entries", "footprint"])?;
    let records = read_file(args.required("trace")?)?;
    let entries: usize = args.parse_or("entries", 200_000)?;
    let system = system(args.required("system")?, entries)?;
    let max_lpn = records
        .iter()
        .map(|r| r.lpn.index() + 1)
        .max()
        .unwrap_or(64);
    let footprint: u64 = args.parse_or("footprint", max_lpn.max(64))?;
    simulate(&records, footprint, system)
}

fn analyze(argv: &[String]) -> CliResult {
    use zssd_analysis::{infinite_reuse, ValueLifecycles};
    let args = Args::parse(argv, &["workload", "scale", "seed", "days"])?;
    let profile = scaled_profile(&args)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    let stats = TraceStats::measure(trace.records());
    println!("{} — {stats}", profile.name);

    let lc = ValueLifecycles::analyze(trace.records());
    println!(
        "values: {} unique, {:.1}% died at least once, {} rebirths total",
        lc.unique_values(),
        lc.fraction_with_deaths() * 100.0,
        lc.total_rebirths()
    );
    println!(
        "popularity: top 20% of values carry {:.1}% of writes, {:.1}% of rebirths",
        lc.writes_share().share_of_top(0.2) * 100.0,
        lc.rebirths_share().share_of_top(0.2) * 100.0
    );
    let plain = infinite_reuse(trace.records(), false);
    let dedup = infinite_reuse(trace.records(), true);
    println!(
        "reuse bound: {:.1}% of writes revivable (infinite pool); after dedup {:.1}% \
         (+{:.1}% removed by dedup itself)",
        plain.reuse_fraction() * 100.0,
        dedup.reuse_fraction() * 100.0,
        dedup.dedup_fraction() * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_lookup() {
        assert_eq!(workload("mail").expect("known").name, "mail");
        assert!(workload("floppy").is_err());
    }

    #[test]
    fn system_lookup() {
        assert_eq!(
            system("dvp", 7).expect("known"),
            SystemKind::MqDvp { entries: 7 }
        );
        assert_eq!(system("baseline", 7).expect("known"), SystemKind::Baseline);
        assert_eq!(
            system("dvp-dedup", 9).expect("known"),
            SystemKind::DvpPlusDedup { entries: 9 }
        );
        assert!(system("magic", 7).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        let err = dispatch(&["frobnicate".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_and_list_succeed() {
        dispatch(&[]).expect("bare invocation prints help");
        dispatch(&["help".to_owned()]).expect("help");
        dispatch(&["list".to_owned()]).expect("list");
    }

    #[test]
    fn end_to_end_gen_replay_analyze() {
        let dir = std::env::temp_dir().join(format!("zssd-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.trace");
        let path_str = path.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "gen",
            "--workload",
            "trans",
            "--out",
            &path_str,
            "--scale",
            "0.002",
            "--seed",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("gen");
        let argv: Vec<String> = [
            "replay",
            "--trace",
            &path_str,
            "--system",
            "dvp",
            "--entries",
            "64",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("replay");
        let argv: Vec<String> = ["analyze", "--workload", "trans", "--scale", "0.002"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        dispatch(&argv).expect("analyze");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
