//! Subcommand implementations.

use std::error::Error;

use zssd_core::SystemKind;
use zssd_flash::FaultConfig;
use zssd_ftl::{Ssd, SsdConfig};
use zssd_trace::{
    read_file, write_file, ArrivalProcess, SyntheticTrace, TraceRecord, TraceStats, WorkloadProfile,
};
use zssd_types::SimDuration;

use crate::args::{ArgError, Args};

type CliResult = Result<(), Box<dyn Error>>;

const HELP: &str = "\
zssd — the zombie-ssd simulator (Reviving Zombie Pages on SSDs, IISWC'18)

USAGE:
    zssd <command> [--flag value ...]

COMMANDS:
    list                             workloads and systems available
    gen      --workload W --out F    generate a trace file
             [--scale S] [--seed N] [--days D]
             [--arrival A] [--interval-us U]   stamp arrival times
    run      --workload W --system SYS   simulate a generated trace
             [--entries N] [--scale S] [--seed N] [--days D]
             [--arrival A] [--interval-us U]
             [--fault-rate R] [--fault-seed N]
             [--metrics-out F]           write the run report as JSON
    replay   --trace F --system SYS      simulate a trace file
             [--entries N] [--footprint P] [--seed N]
             [--arrival A] [--interval-us U]
             [--fault-rate R] [--fault-seed N]
             [--metrics-out F]           write the run report as JSON
    events   --workload W --system SYS   trace a run's event stream
             [--entries N] [--scale S] [--seed N] [--days D]
             [--tail N]                  print the last N events (20)
             [--out F]                   write the full stream as CSV
    analyze  --workload W            value life-cycle characterization
             [--scale S] [--seed N]
    fuzz     [--seeds N]             differential fuzz vs the oracle
             [--budget OPS] [--base-seed S]
             [--check-every K] [--corpus DIR]
    help                             this text

SYSTEMS (for --system):
    baseline | dvp | lru-dvp | ideal | lxssd | dedup | dvp-dedup

ARRIVALS (for --arrival; --interval-us sets the mean gap):
    constant | poisson | bursty | bursty:<mean-burst-len>

FAULTS (for --fault-rate; same syntax as the ZSSD_FAULTS env knob):
    a bare probability (applied to program, erase, and read alike), or
    program=P,erase=P,read=P,wear=A,seed=N with any subset of keys;
    --fault-seed overrides the plan seed

METRICS (DESIGN.md §13):
    --metrics-out writes the schema `zssd-metrics-v1` JSON report
    (counters, latency digests, phase timers, wear, windowed timeline);
    `zssd events` runs with event tracing on and prints/exports the
    typed, timestamped event stream. Both are byte-deterministic for a
    given workload, seed, and configuration

FUZZ:
    each seed generates --budget adversarial commands and replays them
    through the full config grid (DVP/dedup × faults × arrivals) in
    lock-step with the reference oracle, checking every read, the
    drive invariants every --check-every commands, and the program
    conservation identities; divergences are shrunk to minimal traces
    and written to --corpus (default tests/corpus). Seeds fan out
    across ZSSD_THREADS workers; ZSSD_FAULTS sets the faulty column's
    rates. Exit status is nonzero on any divergence (DESIGN.md §12)
";

/// Routes a command line to its implementation.
pub fn dispatch(argv: &[String]) -> CliResult {
    let Some((command, rest)) = argv.split_first() else {
        println!("{HELP}");
        return Ok(());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "list" => list(),
        "gen" => gen(rest),
        "run" => run(rest),
        "replay" => replay(rest),
        "events" => events(rest),
        "analyze" => analyze(rest),
        "fuzz" => fuzz(rest),
        other => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn workload(name: &str) -> Result<WorkloadProfile, ArgError> {
    WorkloadProfile::paper_set()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            ArgError(format!(
                "unknown workload {name:?}; expected web/home/mail/hadoop/trans/desktop"
            ))
        })
}

fn system(name: &str, entries: usize) -> Result<SystemKind, ArgError> {
    Ok(match name {
        "baseline" => SystemKind::Baseline,
        "dvp" => SystemKind::MqDvp { entries },
        "lru-dvp" => SystemKind::LruDvp { entries },
        "ideal" => SystemKind::Ideal,
        "lxssd" => SystemKind::LxSsd { entries },
        "dedup" => SystemKind::Dedup,
        "dvp-dedup" => SystemKind::DvpPlusDedup { entries },
        other => {
            return Err(ArgError(format!(
                "unknown system {other:?}; see `zssd help`"
            )))
        }
    })
}

/// The `--arrival`/`--interval-us` pair, resolved lazily so the mean
/// gap can default to whatever the drive config would use anyway.
struct ArrivalFlags {
    spec: Option<String>,
    interval: Option<SimDuration>,
    seed: u64,
}

impl ArrivalFlags {
    fn from_args(args: &Args) -> Result<ArrivalFlags, Box<dyn Error>> {
        let interval = match args.optional("interval-us") {
            None => None,
            Some(raw) => {
                Some(SimDuration::from_micros(raw.parse().map_err(|e| {
                    ArgError(format!("bad value for --interval-us: {e}"))
                })?))
            }
        };
        Ok(ArrivalFlags {
            spec: args.optional("arrival").map(str::to_owned),
            interval,
            seed: args.parse_or("seed", 42)?,
        })
    }

    /// Applies the flags to a drive config; absent flags leave the
    /// config's own arrival process untouched.
    fn apply(&self, mut config: SsdConfig) -> Result<SsdConfig, ArgError> {
        if let Some(gap) = self.interval {
            config = config.with_arrival_interval(gap);
        }
        if let Some(spec) = &self.spec {
            let mean = config.arrival.mean_interval();
            let process = ArrivalProcess::from_spec(spec, mean, self.seed).map_err(ArgError)?;
            config = config.with_arrival(process);
        }
        Ok(config)
    }

    /// The concrete process to stamp generated traces with, or `None`
    /// when neither flag was given (records stay unstamped and replay
    /// falls back to the drive's configured spacing).
    fn process(&self) -> Result<Option<ArrivalProcess>, ArgError> {
        match (&self.spec, self.interval) {
            (None, None) => Ok(None),
            (None, Some(gap)) => Ok(Some(ArrivalProcess::constant(gap))),
            (Some(spec), interval) => {
                let mean = interval.unwrap_or(SimDuration::from_micros(1_000));
                Ok(Some(
                    ArrivalProcess::from_spec(spec, mean, self.seed).map_err(ArgError)?,
                ))
            }
        }
    }
}

fn scaled_profile(args: &Args) -> Result<WorkloadProfile, Box<dyn Error>> {
    let mut profile = workload(args.required("workload")?)?;
    let scale: f64 = args.parse_or("scale", 1.0)?;
    if scale != 1.0 {
        profile = profile.scaled(scale);
    }
    let days = match args.optional("days") {
        Some(raw) => raw
            .parse()
            .map_err(|e| ArgError(format!("bad value for --days: {e}")))?,
        None => profile.days,
    };
    Ok(profile.with_days(days))
}

fn list() -> CliResult {
    println!("workloads (Table II profiles):");
    for p in WorkloadProfile::paper_set() {
        println!(
            "  {:8} WR {:>4.0}%  unique writes {:>4.1}%  {} req/day x {} days, footprint {} pages",
            p.name,
            p.write_ratio * 100.0,
            p.unique_write_frac * 100.0,
            p.requests_per_day,
            p.days,
            p.lpn_space
        );
    }
    println!("\nsystems: baseline dvp lru-dvp ideal lxssd dedup dvp-dedup");
    Ok(())
}

fn gen(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &[
            "workload",
            "out",
            "scale",
            "seed",
            "days",
            "arrival",
            "interval-us",
        ],
    )?;
    let profile = scaled_profile(&args)?;
    let out = args.required("out")?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    let mut records = trace.records().to_vec();
    if let Some(process) = ArrivalFlags::from_args(&args)?.process()? {
        process.stamp(&mut records);
        println!("stamped arrivals: {process}");
    }
    write_file(&records, out)?;
    let stats = TraceStats::measure(&records);
    println!("wrote {} records to {out}", records.len());
    println!("{stats}");
    Ok(())
}

/// The `--fault-rate`/`--fault-seed` pair. Absent flags fall back to
/// the `ZSSD_FAULTS` environment knob (which defaults to no faults).
fn fault_flags(args: &Args) -> Result<FaultConfig, Box<dyn Error>> {
    let mut faults = match args.optional("fault-rate") {
        Some(spec) => FaultConfig::from_spec(spec)
            .map_err(|e| ArgError(format!("bad value for --fault-rate: {e}")))?,
        None => FaultConfig::from_env(),
    };
    if let Some(raw) = args.optional("fault-seed") {
        faults = faults.with_seed(
            raw.parse()
                .map_err(|e| ArgError(format!("bad value for --fault-seed: {e}")))?,
        );
    }
    Ok(faults)
}

fn simulate(
    records: &[TraceRecord],
    footprint: u64,
    system: SystemKind,
    arrival: &ArrivalFlags,
    faults: FaultConfig,
    metrics_out: Option<&str>,
) -> CliResult {
    let config = arrival.apply(
        SsdConfig::for_footprint(footprint)
            .with_system(system)
            .with_faults(faults),
    )?;
    if !faults.is_none() {
        eprintln!("fault injection: {faults}");
    }
    eprintln!(
        "simulating {} requests on {} ({} physical pages, OP {:.1}%)...",
        records.len(),
        system,
        config.geometry.total_pages(),
        config.over_provisioning() * 100.0
    );
    let report = Ssd::new(config)?.run_trace(records)?;
    println!("{report}");
    println!(
        "  wear: min {} / mean {:.1} / max {} erases per block",
        report.wear.min_erases, report.wear.mean_erases, report.wear.max_erases
    );
    if let Some(path) = metrics_out {
        let doc = report.to_json(zssd_bench::METRICS_WINDOW);
        std::fs::write(path, format!("{doc}\n"))?;
        eprintln!("wrote metrics report to {path}");
    }
    Ok(())
}

fn run(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &[
            "workload",
            "system",
            "entries",
            "scale",
            "seed",
            "days",
            "arrival",
            "interval-us",
            "fault-rate",
            "fault-seed",
            "metrics-out",
        ],
    )?;
    let profile = scaled_profile(&args)?;
    let entries: usize = args.parse_or("entries", 200_000)?;
    let system = system(args.required("system")?, entries)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    let arrival = ArrivalFlags::from_args(&args)?;
    let faults = fault_flags(&args)?;
    simulate(
        trace.records(),
        profile.lpn_space,
        system,
        &arrival,
        faults,
        args.optional("metrics-out"),
    )
}

fn replay(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &[
            "trace",
            "system",
            "entries",
            "footprint",
            "seed",
            "arrival",
            "interval-us",
            "fault-rate",
            "fault-seed",
            "metrics-out",
        ],
    )?;
    let records = read_file(args.required("trace")?)?;
    let entries: usize = args.parse_or("entries", 200_000)?;
    let system = system(args.required("system")?, entries)?;
    let max_lpn = records
        .iter()
        .map(|r| r.lpn.index() + 1)
        .max()
        .unwrap_or(64);
    let footprint: u64 = args.parse_or("footprint", max_lpn.max(64))?;
    let arrival = ArrivalFlags::from_args(&args)?;
    let faults = fault_flags(&args)?;
    simulate(
        &records,
        footprint,
        system,
        &arrival,
        faults,
        args.optional("metrics-out"),
    )
}

/// `zssd events` — run a workload with event tracing enabled, print
/// the tail of the unified event stream, and optionally export the
/// whole stream as CSV.
fn events(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &[
            "workload", "system", "entries", "scale", "seed", "days", "tail", "out",
        ],
    )?;
    let profile = scaled_profile(&args)?;
    let entries: usize = args.parse_or("entries", 200_000)?;
    let system = system(args.required("system")?, entries)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let tail: usize = args.parse_or("tail", 20)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    let config = SsdConfig::for_footprint(profile.lpn_space)
        .with_system(system)
        .with_event_tracing(true);
    eprintln!(
        "tracing {} requests on {} ({} physical pages)...",
        trace.records().len(),
        system,
        config.geometry.total_pages()
    );
    let report = Ssd::new(config)?.run_trace(trace.records())?;
    println!(
        "{} events recorded ({} writes, {} reads, {} revives, {} GC erases)",
        report.events.len(),
        report.host_writes,
        report.host_reads,
        report.revived_writes,
        report.erases
    );
    let start = report.events.len().saturating_sub(tail);
    if start > 0 {
        println!("  ... {start} earlier events (--tail N shows more, --out F exports all)");
    }
    for event in &report.events[start..] {
        println!("{event}");
    }
    if let Some(path) = args.optional("out") {
        std::fs::write(path, zssd_metrics::events_to_csv(&report.events))?;
        eprintln!("wrote {} events to {path}", report.events.len());
    }
    Ok(())
}

fn analyze(argv: &[String]) -> CliResult {
    use zssd_analysis::{infinite_reuse, ValueLifecycles};
    let args = Args::parse(argv, &["workload", "scale", "seed", "days"])?;
    let profile = scaled_profile(&args)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let trace = SyntheticTrace::generate(&profile, seed);
    let stats = TraceStats::measure(trace.records());
    println!("{} — {stats}", profile.name);

    let lc = ValueLifecycles::analyze(trace.records());
    println!(
        "values: {} unique, {:.1}% died at least once, {} rebirths total",
        lc.unique_values(),
        lc.fraction_with_deaths() * 100.0,
        lc.total_rebirths()
    );
    println!(
        "popularity: top 20% of values carry {:.1}% of writes, {:.1}% of rebirths",
        lc.writes_share().share_of_top(0.2) * 100.0,
        lc.rebirths_share().share_of_top(0.2) * 100.0
    );
    let plain = infinite_reuse(trace.records(), false);
    let dedup = infinite_reuse(trace.records(), true);
    println!(
        "reuse bound: {:.1}% of writes revivable (infinite pool); after dedup {:.1}% \
         (+{:.1}% removed by dedup itself)",
        plain.reuse_fraction() * 100.0,
        dedup.reuse_fraction() * 100.0,
        dedup.dedup_fraction() * 100.0
    );
    Ok(())
}

fn fuzz(argv: &[String]) -> CliResult {
    let args = Args::parse(
        argv,
        &["seeds", "budget", "base-seed", "check-every", "corpus"],
    )?;
    let seeds: usize = args.parse_or("seeds", 8)?;
    let budget: usize = args.parse_or("budget", 4_096)?;
    let base_seed: u64 = args.parse_or("base-seed", 1)?;
    let check_every: usize = args.parse_or("check-every", 1)?;
    let corpus = args.optional("corpus").unwrap_or("tests/corpus").to_owned();
    if seeds == 0 || budget == 0 {
        return Err(Box::new(ArgError(
            "--seeds and --budget must be positive".into(),
        )));
    }
    let cells = zssd_oracle::standard_grid(base_seed).len();
    eprintln!(
        "fuzzing {seeds} seeds x {cells} grid cells, {budget} commands each \
         ({} worker threads)...",
        zssd_bench::grid_threads()
    );
    let outcomes = zssd_bench::run_jobs(seeds, |i| {
        zssd_oracle::fuzz_seed(base_seed + i as u64, budget, check_every)
    });
    let mut divergences = 0usize;
    for outcome in &outcomes {
        let sum = |f: fn(&zssd_oracle::DiffSummary) -> u64| -> u64 {
            outcome.cells.iter().map(|(_, s)| f(s)).sum()
        };
        let dead = outcome
            .cells
            .iter()
            .filter(|(_, s)| s.capacity_death_at.is_some())
            .count();
        println!(
            "seed {:>6}: {} commands x {} cells | reads {} | revived {} | \
             deduped {} | erases {} | faults {}p/{}e/{}r | retired {}{}{}",
            outcome.seed,
            outcome.commands,
            outcome.cells.len(),
            sum(|s| s.reads_checked),
            sum(|s| s.revived_writes),
            sum(|s| s.deduped_writes),
            sum(|s| s.erases),
            sum(|s| s.program_failures),
            sum(|s| s.erase_failures),
            sum(|s| s.read_retries),
            sum(|s| s.retired_blocks),
            if dead > 0 {
                format!(" | {dead} cell(s) died of fault-induced capacity loss")
            } else {
                String::new()
            },
            if outcome.ok() { "" } else { "  <-- DIVERGED" },
        );
        for failure in &outcome.failures {
            divergences += 1;
            let name = format!("fuzz-seed{}-{}", outcome.seed, slug(&failure.cell));
            eprintln!("  [{}] {}", failure.cell, failure.detail);
            let shrunk =
                zssd_oracle::normalize(&failure.shrunk, zssd_oracle::FUZZ_LOGICAL_PAGES, true);
            let header = vec![failure.repro.clone(), failure.detail.clone()];
            match zssd_oracle::write_corpus(&corpus, &name, &header, &shrunk) {
                Ok(path) => eprintln!(
                    "  minimized to {} commands -> {}",
                    shrunk.len(),
                    path.display()
                ),
                Err(e) => eprintln!("  could not write {corpus}/{name}.trace: {e}"),
            }
        }
    }
    if divergences > 0 {
        return Err(Box::new(ArgError(format!(
            "fuzz: {divergences} divergence(s) across {seeds} seeds; \
             minimized traces written to {corpus}/"
        ))));
    }
    println!("fuzz: {seeds} seeds x {cells} cells clean — no divergences, no invariant violations");
    Ok(())
}

/// Turns a grid-cell label like `DVP+Dedup-64/faulty/bursty` into a
/// file-name-safe slug.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_lookup() {
        assert_eq!(workload("mail").expect("known").name, "mail");
        assert!(workload("floppy").is_err());
    }

    #[test]
    fn system_lookup() {
        assert_eq!(
            system("dvp", 7).expect("known"),
            SystemKind::MqDvp { entries: 7 }
        );
        assert_eq!(system("baseline", 7).expect("known"), SystemKind::Baseline);
        assert_eq!(
            system("dvp-dedup", 9).expect("known"),
            SystemKind::DvpPlusDedup { entries: 9 }
        );
        assert!(system("magic", 7).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        let err = dispatch(&["frobnicate".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_and_list_succeed() {
        dispatch(&[]).expect("bare invocation prints help");
        dispatch(&["help".to_owned()]).expect("help");
        dispatch(&["list".to_owned()]).expect("list");
    }

    #[test]
    fn end_to_end_gen_replay_analyze() {
        let dir = std::env::temp_dir().join(format!("zssd-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("tiny.trace");
        let path_str = path.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "gen",
            "--workload",
            "trans",
            "--out",
            &path_str,
            "--scale",
            "0.002",
            "--seed",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("gen");
        let argv: Vec<String> = [
            "replay",
            "--trace",
            &path_str,
            "--system",
            "dvp",
            "--entries",
            "64",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("replay");
        let argv: Vec<String> = ["analyze", "--workload", "trans", "--scale", "0.002"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        dispatch(&argv).expect("analyze");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fuzz_small_clean_run_succeeds() {
        let dir = std::env::temp_dir().join(format!("zssd-cli-fuzz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let dir_str = dir.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "fuzz",
            "--seeds",
            "2",
            "--budget",
            "120",
            "--base-seed",
            "7",
            "--check-every",
            "8",
            "--corpus",
            &dir_str,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("a small clean fuzz run");
        // A clean run writes no corpus entries.
        let entries = std::fs::read_dir(&dir).expect("readable").count();
        assert_eq!(entries, 0, "clean fuzz runs must not write traces");
        assert!(dispatch(&["fuzz".into(), "--seeds".into(), "0".into()]).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn run_writes_metrics_json_and_events_exports_csv() {
        let dir = std::env::temp_dir().join(format!("zssd-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let json_path = dir.join("report.json");
        let json_str = json_path.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "run",
            "--workload",
            "trans",
            "--system",
            "dvp",
            "--scale",
            "0.002",
            "--entries",
            "64",
            "--metrics-out",
            &json_str,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("run with --metrics-out");
        let text = std::fs::read_to_string(&json_path).expect("report written");
        let doc = zssd_metrics::Json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(zssd_metrics::Json::as_str),
            Some("zssd-metrics-v1")
        );
        assert!(
            doc.get("counters")
                .and_then(|c| c.get("host_writes"))
                .and_then(zssd_metrics::Json::as_u64)
                .unwrap_or(0)
                > 0
        );

        let csv_path = dir.join("events.csv");
        let csv_str = csv_path.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "events",
            "--workload",
            "trans",
            "--system",
            "dvp",
            "--scale",
            "0.002",
            "--entries",
            "64",
            "--tail",
            "5",
            "--out",
            &csv_str,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("events with --out");
        let csv = std::fs::read_to_string(&csv_path).expect("events written");
        assert!(csv.starts_with("seq,at_ns,kind,fields"));
        assert!(csv.contains("host_write"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn slug_is_file_name_safe() {
        assert_eq!(
            slug("DVP+Dedup-64/faulty/bursty"),
            "dvp-dedup-64-faulty-bursty"
        );
    }

    #[test]
    fn run_honors_fault_flags() {
        let argv: Vec<String> = [
            "run",
            "--workload",
            "trans",
            "--system",
            "dvp",
            "--scale",
            "0.002",
            "--entries",
            "64",
            "--fault-rate",
            "program=1e-3,erase=5e-3,read=1e-3",
            "--fault-seed",
            "99",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("run with fault injection");
        // A bare probability applies to all three operation kinds.
        let argv: Vec<String> = [
            "run",
            "--workload",
            "trans",
            "--system",
            "baseline",
            "--scale",
            "0.002",
            "--fault-rate",
            "0.001",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("run with a bare fault rate");
        // Malformed specs are rejected up front.
        assert!(dispatch(&[
            "run".into(),
            "--workload".into(),
            "trans".into(),
            "--system".into(),
            "dvp".into(),
            "--fault-rate".into(),
            "program=2.0".into(),
        ])
        .is_err());
    }

    #[test]
    fn gen_stamps_arrivals_and_replay_honors_arrival_flags() {
        let dir = std::env::temp_dir().join(format!("zssd-cli-arrival-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("stamped.trace");
        let path_str = path.to_str().expect("utf8 path").to_owned();
        let argv: Vec<String> = [
            "gen",
            "--workload",
            "trans",
            "--out",
            &path_str,
            "--scale",
            "0.002",
            "--seed",
            "1",
            "--arrival",
            "poisson",
            "--interval-us",
            "500",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("gen with stamped arrivals");
        let records = read_file(&path).expect("readable");
        assert!(
            records.iter().all(|r| r.arrival.is_some()),
            "gen --arrival must stamp every record"
        );
        let argv: Vec<String> = [
            "replay",
            "--trace",
            &path_str,
            "--system",
            "baseline",
            "--entries",
            "64",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("replay of a stamped trace");
        // An unstamped run accepts the arrival flags too.
        let argv: Vec<String> = [
            "run",
            "--workload",
            "trans",
            "--system",
            "dvp",
            "--scale",
            "0.002",
            "--entries",
            "64",
            "--arrival",
            "bursty:8",
            "--interval-us",
            "200",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&argv).expect("run with bursty arrivals");
        assert!(dispatch(&[
            "run".into(),
            "--workload".into(),
            "trans".into(),
            "--system".into(),
            "dvp".into(),
            "--arrival".into(),
            "tidal".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
