//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// A malformed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` pairs with typed accessors.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs, rejecting unknown keys and bare
    /// positionals.
    pub fn parse(argv: &[String], allowed: &[&str]) -> Result<Args, ArgError> {
        let mut values = HashMap::new();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected argument {arg:?}")));
            };
            if !allowed.contains(&key) {
                return Err(ArgError(format!(
                    "unknown flag --{key}; expected one of: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("flag --{key} needs a value")))?;
            if values.insert(key.to_owned(), value.clone()).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(Args { values })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("bad value for --{key}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let args = Args::parse(&argv("--workload mail --scale 0.5"), &["workload", "scale"])
            .expect("valid");
        assert_eq!(args.required("workload").expect("present"), "mail");
        assert_eq!(args.parse_or("scale", 1.0f64).expect("parses"), 0.5);
        assert_eq!(args.parse_or("seed", 42u64).expect("default"), 42);
        assert_eq!(args.optional("missing"), None);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Args::parse(&argv("--bogus 1"), &["workload"]).is_err());
        assert!(Args::parse(&argv("mail"), &["workload"]).is_err());
        assert!(Args::parse(&argv("--workload"), &["workload"]).is_err());
        assert!(Args::parse(&argv("--workload a --workload b"), &["workload"]).is_err());
    }

    #[test]
    fn required_and_bad_parse_error() {
        let args = Args::parse(&argv("--scale abc"), &["scale"]).expect("parses as string");
        assert!(args.required("workload").is_err());
        assert!(args.parse_or("scale", 1.0f64).is_err());
    }
}
