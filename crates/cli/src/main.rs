//! `zssd` — command-line front end for the zombie-ssd simulator.
//!
//! ```text
//! zssd list
//! zssd gen     --workload mail --out mail.trace [--scale 0.1] [--seed 42]
//! zssd run     --workload mail --system dvp [--entries 200000] [--scale 0.1]
//! zssd replay  --trace mail.trace --system dedup
//! zssd analyze --workload mail [--scale 0.1]
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run `zssd help` for usage");
            ExitCode::FAILURE
        }
    }
}
