//! Flash operation latencies (Table I of the paper).

use zssd_types::SimDuration;

/// Latency parameters of the modeled NAND flash and controller.
///
/// Defaults come from Table I: "Read Latency = 75 µs, Program Latency =
/// 400 µs, Erase Latency = 3.8 ms", channels "work on ONFi 4.0", and
/// "the overhead of hash calculation is 12 µs".
///
/// # Examples
///
/// ```
/// use zssd_flash::FlashTiming;
/// use zssd_types::SimDuration;
///
/// let t = FlashTiming::paper_table1();
/// assert_eq!(t.read, SimDuration::from_micros(75));
/// assert_eq!(t.program, SimDuration::from_micros(400));
/// assert_eq!(t.erase, SimDuration::from_micros(3800));
/// assert_eq!(t.hash, SimDuration::from_micros(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashTiming {
    /// Page read (cell sense) latency, `tR`.
    pub read: SimDuration,
    /// Page program latency, `tPROG`.
    pub program: SimDuration,
    /// Block erase latency, `tBERS`.
    pub erase: SimDuration,
    /// Time to move one 4 KB page across the channel. ONFi 4.0 NV-DDR3
    /// at 800 MT/s moves 4 KB in ~5 µs.
    pub transfer: SimDuration,
    /// Controller hash-engine latency per 4 KB chunk (paper: 12 µs,
    /// citing Helion hashing cores). Charged on the write path of any
    /// content-aware system (DVP, Dedup).
    pub hash: SimDuration,
}

impl FlashTiming {
    /// The configuration of Table I.
    pub const fn paper_table1() -> Self {
        FlashTiming {
            read: SimDuration::from_micros(75),
            program: SimDuration::from_micros(400),
            erase: SimDuration::from_micros(3800),
            transfer: SimDuration::from_micros(5),
            hash: SimDuration::from_micros(12),
        }
    }

    /// Returns a copy with a different hash latency (used by the
    /// hash-latency sensitivity ablation).
    pub const fn with_hash(mut self, hash: SimDuration) -> Self {
        self.hash = hash;
        self
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_asymmetric() {
        let t = FlashTiming::paper_table1();
        assert!(t.program > t.read, "writes are slower than reads");
        assert!(t.erase > t.program, "erases are slower than writes");
        // The paper notes writes are "almost 10-20 times longer" than
        // reads once transfer overheads are folded in; raw tPROG/tR
        // here is 5.3x with the rest coming from queueing.
        assert!(t.program.as_nanos() >= 5 * t.read.as_nanos());
    }

    #[test]
    fn with_hash_overrides_only_hash() {
        let t = FlashTiming::paper_table1().with_hash(SimDuration::ZERO);
        assert_eq!(t.hash, SimDuration::ZERO);
        assert_eq!(t.read, FlashTiming::paper_table1().read);
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(FlashTiming::default(), FlashTiming::paper_table1());
    }
}
