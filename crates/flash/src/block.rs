//! Per-page and per-block state.

use core::fmt;

/// The life-cycle state of one physical page.
///
/// The paper's central move is the `Invalid → Valid` transition
/// ("rebirth"): a garbage page whose content matches an incoming write
/// is flipped back to valid instead of being erased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Erased and programmable.
    #[default]
    Free,
    /// Holds live data referenced by the mapping table.
    Valid,
    /// Holds dead data (a garbage / "zombie" page) awaiting GC — or
    /// revival.
    Invalid,
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageState::Free => "free",
            PageState::Valid => "valid",
            PageState::Invalid => "invalid",
        };
        f.write_str(s)
    }
}

/// Mutable state of one erase block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Block {
    pub(crate) pages: Vec<PageState>,
    /// Next page offset that may be programmed (NAND programs pages of
    /// a block strictly in order).
    pub(crate) write_cursor: u32,
    pub(crate) erase_count: u64,
    pub(crate) valid_count: u32,
    pub(crate) invalid_count: u32,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            write_cursor: 0,
            erase_count: 0,
            valid_count: 0,
            invalid_count: 0,
        }
    }

    pub(crate) fn free_count(&self) -> u32 {
        self.pages.len() as u32 - self.write_cursor
    }

    pub(crate) fn erase(&mut self) {
        self.pages.fill(PageState::Free);
        self.write_cursor = 0;
        self.valid_count = 0;
        self.invalid_count = 0;
        self.erase_count += 1;
    }

    pub(crate) fn info(&self) -> BlockInfo {
        BlockInfo {
            valid_pages: self.valid_count,
            invalid_pages: self.invalid_count,
            free_pages: self.free_count(),
            erase_count: self.erase_count,
        }
    }
}

/// A read-only snapshot of a block's occupancy, consumed by GC victim
/// selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockInfo {
    /// Pages holding live data.
    pub valid_pages: u32,
    /// Garbage pages (candidates for revival or erase).
    pub invalid_pages: u32,
    /// Pages still programmable.
    pub free_pages: u32,
    /// How many times this block has been erased (wear).
    pub erase_count: u64,
}

impl BlockInfo {
    /// Whether the block has been fully written (no free pages) — only
    /// such blocks are sensible GC victims.
    pub fn is_full(&self) -> bool {
        self.free_pages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_all_free() {
        let b = Block::new(8);
        assert_eq!(b.free_count(), 8);
        assert_eq!(b.info().valid_pages, 0);
        assert!(!b.info().is_full());
    }

    #[test]
    fn erase_resets_everything_but_wear() {
        let mut b = Block::new(4);
        b.pages[0] = PageState::Valid;
        b.pages[1] = PageState::Invalid;
        b.write_cursor = 2;
        b.valid_count = 1;
        b.invalid_count = 1;
        b.erase();
        assert_eq!(b.free_count(), 4);
        assert_eq!(b.erase_count, 1);
        assert!(b.pages.iter().all(|&p| p == PageState::Free));
    }

    #[test]
    fn page_state_default_and_display() {
        assert_eq!(PageState::default(), PageState::Free);
        assert_eq!(PageState::Invalid.to_string(), "invalid");
    }
}
