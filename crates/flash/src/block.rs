//! Per-page and per-block state.

use core::fmt;

/// The life-cycle state of one physical page.
///
/// The paper's central move is the `Invalid → Valid` transition
/// ("rebirth"): a garbage page whose content matches an incoming write
/// is flipped back to valid instead of being erased.
///
/// [`PageState::Bad`] is terminal: a page whose program failed (or
/// whose whole block was retired) never holds data again and is
/// skipped by the sequential program cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Erased and programmable.
    #[default]
    Free,
    /// Holds live data referenced by the mapping table.
    Valid,
    /// Holds dead data (a garbage / "zombie" page) awaiting GC — or
    /// revival.
    Invalid,
    /// Worn out or program-failed; permanently unusable.
    Bad,
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageState::Free => "free",
            PageState::Valid => "valid",
            PageState::Invalid => "invalid",
            PageState::Bad => "bad",
        };
        f.write_str(s)
    }
}

/// Mutable state of one erase block.
///
/// Invariant: every page at or beyond `write_cursor` is
/// [`PageState::Free`] — the cursor is advanced past bad pages by
/// [`Block::skip_bad`] whenever it moves, so callers may always program
/// at the cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Block {
    pub(crate) pages: Vec<PageState>,
    /// Next page offset that may be programmed (NAND programs pages of
    /// a block strictly in order).
    pub(crate) write_cursor: u32,
    pub(crate) erase_count: u64,
    pub(crate) valid_count: u32,
    pub(crate) invalid_count: u32,
    pub(crate) bad_count: u32,
    /// Programmable pages remaining; maintained explicitly so the hot
    /// allocator probe stays O(1) with bad pages in the mix.
    pub(crate) free_count: u32,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            write_cursor: 0,
            erase_count: 0,
            valid_count: 0,
            invalid_count: 0,
            bad_count: 0,
            free_count: pages_per_block,
        }
    }

    pub(crate) fn free_count(&self) -> u32 {
        self.free_count
    }

    /// Advances the cursor past bad pages so it rests on a free page
    /// (or the end of the block).
    pub(crate) fn skip_bad(&mut self) {
        while (self.write_cursor as usize) < self.pages.len()
            && self.pages[self.write_cursor as usize] == PageState::Bad
        {
            self.write_cursor += 1;
        }
    }

    /// Marks the page at the cursor valid (a successful program) and
    /// advances the cursor.
    pub(crate) fn program_at_cursor(&mut self) {
        self.pages[self.write_cursor as usize] = PageState::Valid;
        self.write_cursor += 1;
        self.valid_count += 1;
        self.free_count -= 1;
        self.skip_bad();
    }

    /// Marks the page at the cursor bad (a failed program) and
    /// advances the cursor — the page is consumed without ever holding
    /// data.
    pub(crate) fn fail_at_cursor(&mut self) {
        self.pages[self.write_cursor as usize] = PageState::Bad;
        self.write_cursor += 1;
        self.bad_count += 1;
        self.free_count -= 1;
        self.skip_bad();
    }

    /// Erases the block: every non-bad page becomes free, bad pages
    /// stay bad, and the cursor returns to the first free page.
    pub(crate) fn erase(&mut self) {
        for page in &mut self.pages {
            if *page != PageState::Bad {
                *page = PageState::Free;
            }
        }
        self.write_cursor = 0;
        self.valid_count = 0;
        self.invalid_count = 0;
        self.free_count = self.pages.len() as u32 - self.bad_count;
        self.erase_count += 1;
        self.skip_bad();
    }

    /// Retires the block: every page becomes bad and nothing is
    /// programmable ever again. The caller must have relocated or
    /// purged any data first (no valid pages remain).
    pub(crate) fn retire(&mut self) {
        self.pages.fill(PageState::Bad);
        self.write_cursor = self.pages.len() as u32;
        self.valid_count = 0;
        self.invalid_count = 0;
        self.bad_count = self.pages.len() as u32;
        self.free_count = 0;
    }

    pub(crate) fn info(&self) -> BlockInfo {
        BlockInfo {
            valid_pages: self.valid_count,
            invalid_pages: self.invalid_count,
            free_pages: self.free_count(),
            bad_pages: self.bad_count,
            erase_count: self.erase_count,
        }
    }
}

/// A read-only snapshot of a block's occupancy, consumed by GC victim
/// selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockInfo {
    /// Pages holding live data.
    pub valid_pages: u32,
    /// Garbage pages (candidates for revival or erase).
    pub invalid_pages: u32,
    /// Pages still programmable.
    pub free_pages: u32,
    /// Permanently unusable pages (program failures / retirement).
    pub bad_pages: u32,
    /// How many times this block has been erased (wear).
    pub erase_count: u64,
}

impl BlockInfo {
    /// Whether the block has been fully written (no free pages) — only
    /// such blocks are sensible GC victims.
    pub fn is_full(&self) -> bool {
        self.free_pages == 0
    }

    /// Whether the block is retired: every page is bad, so it holds no
    /// data and can never be programmed or erased back into service.
    pub fn is_retired(&self) -> bool {
        self.bad_pages > 0
            && self.valid_pages == 0
            && self.invalid_pages == 0
            && self.free_pages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_all_free() {
        let b = Block::new(8);
        assert_eq!(b.free_count(), 8);
        assert_eq!(b.info().valid_pages, 0);
        assert!(!b.info().is_full());
        assert!(!b.info().is_retired());
    }

    #[test]
    fn erase_resets_everything_but_wear() {
        let mut b = Block::new(4);
        b.pages[0] = PageState::Valid;
        b.pages[1] = PageState::Invalid;
        b.write_cursor = 2;
        b.valid_count = 1;
        b.invalid_count = 1;
        b.free_count = 2;
        b.erase();
        assert_eq!(b.free_count(), 4);
        assert_eq!(b.erase_count, 1);
        assert!(b.pages.iter().all(|&p| p == PageState::Free));
    }

    #[test]
    fn failed_programs_consume_pages_and_survive_erase() {
        let mut b = Block::new(4);
        b.program_at_cursor(); // page 0 valid
        b.fail_at_cursor(); // page 1 bad
        assert_eq!(b.write_cursor, 2);
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.info().bad_pages, 1);
        b.program_at_cursor(); // page 2 valid
        b.pages[0] = PageState::Invalid;
        b.pages[2] = PageState::Invalid;
        b.valid_count = 0;
        b.invalid_count = 2;
        b.erase();
        // Bad pages stay bad; capacity shrinks accordingly.
        assert_eq!(b.free_count(), 3);
        assert_eq!(b.pages[1], PageState::Bad);
        assert_eq!(b.write_cursor, 0, "cursor returns to the first free page");
    }

    #[test]
    fn cursor_skips_leading_and_mid_block_bad_pages() {
        let mut b = Block::new(4);
        b.fail_at_cursor(); // page 0 bad
        assert_eq!(b.write_cursor, 1, "cursor already past the bad page");
        b.program_at_cursor(); // page 1 valid
        b.fail_at_cursor(); // page 2 bad -> cursor lands on 3
        assert_eq!(b.write_cursor, 3);
        b.pages[1] = PageState::Invalid;
        b.valid_count = 0;
        b.invalid_count = 1;
        b.erase();
        // After erase the cursor skips the bad page 0.
        assert_eq!(b.write_cursor, 1);
        b.program_at_cursor(); // page 1 valid again
        assert_eq!(b.write_cursor, 3, "mid-block bad page 2 skipped");
    }

    #[test]
    fn retire_makes_every_page_bad() {
        let mut b = Block::new(4);
        b.program_at_cursor();
        b.pages[0] = PageState::Invalid;
        b.valid_count = 0;
        b.invalid_count = 1;
        b.retire();
        assert!(b.pages.iter().all(|&p| p == PageState::Bad));
        assert_eq!(b.free_count(), 0);
        assert!(b.info().is_retired());
        assert!(b.info().is_full());
        // Erasing a retired block frees nothing.
        b.erase();
        assert_eq!(b.free_count(), 0);
        assert!(b.info().is_retired());
    }

    #[test]
    fn page_state_default_and_display() {
        assert_eq!(PageState::default(), PageState::Free);
        assert_eq!(PageState::Invalid.to_string(), "invalid");
        assert_eq!(PageState::Bad.to_string(), "bad");
    }
}
