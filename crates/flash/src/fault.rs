//! Deterministic, seeded NAND fault injection.
//!
//! Real NAND fails: programs abort, erases wear out blocks until they
//! stop erasing, reads come back with uncorrectable ECC errors. The
//! [`FaultPlan`] decides — deterministically, from a seed — whether
//! each NAND operation the array executes fails, so the FTL's recovery
//! machinery (program retry, block retirement, read scrubbing) can be
//! exercised and tested reproducibly.
//!
//! # Determinism contract
//!
//! Every decision is a pure hash of `(seed, operation kind, target
//! address, per-plan operation counter)` — no shared RNG stream. Two
//! drives built from the same [`FaultConfig`] and driven with the same
//! operation sequence make bit-identical decisions, regardless of how
//! many other drives run concurrently (each [`FlashArray`] owns its
//! plan), so the threaded experiment grid reproduces single-threaded
//! results exactly.
//!
//! With every probability at zero the plan never fails anything and
//! the array behaves byte-identically to a fault-free build.
//!
//! [`FlashArray`]: crate::FlashArray
//!
//! # Examples
//!
//! ```
//! use zssd_flash::{FaultConfig, FaultKind, FaultPlan};
//!
//! let config = FaultConfig::none().with_program_fail(1.0);
//! let mut plan = FaultPlan::new(config);
//! assert!(plan.decide(FaultKind::Program, 0, 0));
//! assert!(!plan.decide(FaultKind::Erase, 0, 0));
//!
//! // Same config, same op sequence -> same decisions.
//! let replay: Vec<bool> = {
//!     let mut p = FaultPlan::new(config);
//!     (0..8).map(|i| p.decide(FaultKind::Program, i, 0)).collect()
//! };
//! let again: Vec<bool> = {
//!     let mut p = FaultPlan::new(config);
//!     (0..8).map(|i| p.decide(FaultKind::Program, i, 0)).collect()
//! };
//! assert_eq!(replay, again);
//! ```

use core::fmt;

/// Which NAND operation a fault decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A page program (host write or GC/scrub relocation).
    Program,
    /// A block erase.
    Erase,
    /// A page read (an uncorrectable-ECC event forcing a retry).
    Read,
}

impl FaultKind {
    /// A fixed per-kind salt so the three decision streams are
    /// independent even for the same target address.
    fn salt(self) -> u64 {
        match self {
            FaultKind::Program => 0x9e37_79b9_7f4a_7c15,
            FaultKind::Erase => 0xc2b2_ae3d_27d4_eb4f,
            FaultKind::Read => 0x1656_67b1_9e37_79f9,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Program => "program",
            FaultKind::Erase => "erase",
            FaultKind::Read => "read",
        };
        f.write_str(s)
    }
}

/// Per-operation fault probabilities plus the seed and wear knob that
/// make them reproducible.
///
/// The default ([`FaultConfig::none`]) injects nothing; the array then
/// behaves byte-identically to a build without fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a page program fails (the page is marked bad).
    pub program_fail: f64,
    /// Probability that a block erase fails (repeated failures retire
    /// the block).
    pub erase_fail: f64,
    /// Probability that a page read raises an uncorrectable ECC error
    /// and must be retried.
    pub read_error: f64,
    /// Wear acceleration: the effective program/erase failure
    /// probability of a block is scaled by
    /// `1 + wear_acceleration * erase_count`, modeling cells degrading
    /// with program/erase cycles. Zero (the default) keeps rates flat.
    pub wear_acceleration: f64,
    /// Seed of the decision hash; the same seed reproduces the same
    /// fault pattern for the same operation sequence.
    pub seed: u64,
}

impl FaultConfig {
    /// No injected faults at all — the fault-free default.
    pub const fn none() -> Self {
        FaultConfig {
            program_fail: 0.0,
            erase_fail: 0.0,
            read_error: 0.0,
            wear_acceleration: 0.0,
            seed: 0,
        }
    }

    /// Whether this configuration can ever inject a fault.
    pub fn is_none(&self) -> bool {
        self.program_fail <= 0.0 && self.erase_fail <= 0.0 && self.read_error <= 0.0
    }

    /// Returns a copy with the given program-failure probability.
    pub const fn with_program_fail(mut self, p: f64) -> Self {
        self.program_fail = p;
        self
    }

    /// Returns a copy with the given erase-failure probability.
    pub const fn with_erase_fail(mut self, p: f64) -> Self {
        self.erase_fail = p;
        self
    }

    /// Returns a copy with the given read-ECC-error probability.
    pub const fn with_read_error(mut self, p: f64) -> Self {
        self.read_error = p;
        self
    }

    /// Returns a copy with the given wear-acceleration factor.
    pub const fn with_wear_acceleration(mut self, accel: f64) -> Self {
        self.wear_acceleration = accel;
        self
    }

    /// Returns a copy with the given decision seed.
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a fault spec string, as used by the `ZSSD_FAULTS`
    /// environment variable and the `--fault-rate` CLI flag:
    ///
    /// * a bare probability (`1e-3`) — applied to program, erase, and
    ///   read alike,
    /// * a comma-separated key list —
    ///   `program=1e-3,erase=5e-3,read=1e-3,wear=0.1,seed=42`, any
    ///   subset, unnamed keys defaulting to zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for unknown keys, malformed
    /// numbers, or probabilities outside `[0, 1]`.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultConfig::none());
        }
        let mut config = FaultConfig::none();
        if !spec.contains('=') {
            let p = parse_probability("rate", spec)?;
            return Ok(config
                .with_program_fail(p)
                .with_erase_fail(p)
                .with_read_error(p));
        }
        for part in spec.split(',') {
            let part = part.trim();
            let Some((key, raw)) = part.split_once('=') else {
                return Err(format!("bad fault spec field {part:?}; expected key=value"));
            };
            let (key, raw) = (key.trim(), raw.trim());
            match key {
                "program" => config.program_fail = parse_probability(key, raw)?,
                "erase" => config.erase_fail = parse_probability(key, raw)?,
                "read" => config.read_error = parse_probability(key, raw)?,
                "wear" => {
                    let accel: f64 = raw
                        .parse()
                        .map_err(|e| format!("bad wear acceleration {raw:?}: {e}"))?;
                    if !accel.is_finite() || accel < 0.0 {
                        return Err(format!("wear acceleration {accel} must be finite and >= 0"));
                    }
                    config.wear_acceleration = accel;
                }
                "seed" => {
                    config.seed = raw
                        .parse()
                        .map_err(|e| format!("bad fault seed {raw:?}: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown fault spec key {other:?}; expected \
                         program | erase | read | wear | seed"
                    ));
                }
            }
        }
        Ok(config)
    }

    /// Reads the `ZSSD_FAULTS` environment knob; unset or empty means
    /// no injected faults.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a bad environment knob should stop
    /// an experiment loudly, not run it fault-free.
    pub fn from_env() -> Self {
        match std::env::var("ZSSD_FAULTS") {
            Ok(spec) => {
                FaultConfig::from_spec(&spec).unwrap_or_else(|e| panic!("invalid ZSSD_FAULTS: {e}"))
            }
            Err(_) => FaultConfig::none(),
        }
    }

    /// Validates the probabilities and wear factor.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if any probability is
    /// outside `[0, 1]` or the wear factor is negative or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("program_fail", self.program_fail),
            ("erase_fail", self.erase_fail),
            ("read_error", self.read_error),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("fault probability {name}={p} must be in [0, 1]"));
            }
        }
        if !self.wear_acceleration.is_finite() || self.wear_acceleration < 0.0 {
            return Err(format!(
                "wear_acceleration {} must be finite and >= 0",
                self.wear_acceleration
            ));
        }
        Ok(())
    }

    /// The effective failure probability of an operation on a block
    /// with the given wear: `base * (1 + wear_acceleration * erases)`,
    /// clamped to 1.
    pub fn effective(&self, base: f64, erase_count: u64) -> f64 {
        if base <= 0.0 {
            return 0.0;
        }
        (base * (1.0 + self.wear_acceleration * erase_count as f64)).min(1.0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program={} erase={} read={} wear={} seed={}",
            self.program_fail, self.erase_fail, self.read_error, self.wear_acceleration, self.seed
        )
    }
}

/// The per-array fault decider: a [`FaultConfig`] plus the operation
/// counter that individualizes otherwise-identical decisions.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    ops: u64,
}

impl FaultPlan {
    /// Creates a plan for the given configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config, ops: 0 }
    }

    /// The configuration this plan decides from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides whether the next operation of `kind` on `target` (a
    /// page or block index) fails, given the wear of the block it
    /// touches. Each call consumes one slot of the decision stream.
    pub fn decide(&mut self, kind: FaultKind, target: u64, erase_count: u64) -> bool {
        let op = self.ops;
        self.ops = self.ops.wrapping_add(1);
        let base = match kind {
            FaultKind::Program => self.config.program_fail,
            FaultKind::Erase => self.config.erase_fail,
            FaultKind::Read => self.config.read_error,
        };
        let p = match kind {
            // Reads do not stress the cells; wear acceleration applies
            // to program/erase only.
            FaultKind::Read => base,
            _ => self.config.effective(base, erase_count),
        };
        if p <= 0.0 {
            return false;
        }
        unit_interval(mix(self.config.seed ^ mix(kind.salt() ^ target) ^ mix(op))) < p
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)` from its top 53 bits.
fn unit_interval(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Parses one probability field of a fault spec.
fn parse_probability(name: &str, raw: &str) -> Result<f64, String> {
    let p: f64 = raw
        .parse()
        .map_err(|e| format!("bad fault probability {name}={raw:?}: {e}"))?;
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(format!("fault probability {name}={p} must be in [0, 1]"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut plan = FaultPlan::new(FaultConfig::none());
        assert!(FaultConfig::none().is_none());
        for i in 0..1000 {
            assert!(!plan.decide(FaultKind::Program, i, i));
            assert!(!plan.decide(FaultKind::Erase, i, i));
            assert!(!plan.decide(FaultKind::Read, i, i));
        }
    }

    #[test]
    fn certain_failure_always_fails() {
        let mut plan = FaultPlan::new(FaultConfig::none().with_program_fail(1.0));
        for i in 0..100 {
            assert!(plan.decide(FaultKind::Program, i, 0));
        }
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let config = FaultConfig::none()
            .with_program_fail(0.3)
            .with_read_error(0.2)
            .with_seed(42);
        let run = |config| {
            let mut plan = FaultPlan::new(config);
            (0..500)
                .map(|i| {
                    plan.decide(
                        if i % 2 == 0 {
                            FaultKind::Program
                        } else {
                            FaultKind::Read
                        },
                        i,
                        0,
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(config), run(config));
        assert_ne!(
            run(config),
            run(config.with_seed(43)),
            "different seeds differ"
        );
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let mut plan = FaultPlan::new(FaultConfig::none().with_program_fail(0.1).with_seed(7));
        let fails = (0..20_000)
            .filter(|&i| plan.decide(FaultKind::Program, i % 64, 0))
            .count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn wear_acceleration_raises_effective_rate() {
        let config = FaultConfig::none()
            .with_erase_fail(0.01)
            .with_wear_acceleration(0.5);
        assert_eq!(config.effective(0.01, 0), 0.01);
        assert!(config.effective(0.01, 10) > config.effective(0.01, 1));
        assert_eq!(config.effective(0.5, 1_000_000), 1.0, "clamped");
        assert_eq!(config.effective(0.0, 1_000_000), 0.0);
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(FaultConfig::from_spec("").expect("ok"), FaultConfig::none());
        let uniform = FaultConfig::from_spec("1e-3").expect("ok");
        assert_eq!(uniform.program_fail, 1e-3);
        assert_eq!(uniform.erase_fail, 1e-3);
        assert_eq!(uniform.read_error, 1e-3);
        let full = FaultConfig::from_spec("program=1e-3,erase=5e-3,read=1e-3,wear=0.1,seed=9")
            .expect("ok");
        assert_eq!(full.program_fail, 1e-3);
        assert_eq!(full.erase_fail, 5e-3);
        assert_eq!(full.read_error, 1e-3);
        assert_eq!(full.wear_acceleration, 0.1);
        assert_eq!(full.seed, 9);
        assert_eq!(
            FaultConfig::from_spec(" program = 0.5 ")
                .expect("ok")
                .program_fail,
            0.5,
            "whitespace tolerated"
        );
        assert!(FaultConfig::from_spec("bogus=1").is_err());
        assert!(FaultConfig::from_spec("program=2.0").is_err());
        assert!(FaultConfig::from_spec("program=x").is_err());
        assert!(FaultConfig::from_spec("wear=-1").is_err());
        assert!(FaultConfig::from_spec("seed=x").is_err());
        assert!(FaultConfig::from_spec("5").is_err(), "bare rate above 1");
    }

    #[test]
    fn validation_catches_bad_probabilities() {
        assert!(FaultConfig::none().validate().is_ok());
        assert!(FaultConfig::none()
            .with_program_fail(2.0)
            .validate()
            .is_err());
        assert!(FaultConfig::none()
            .with_erase_fail(-0.1)
            .validate()
            .is_err());
        assert!(FaultConfig::none()
            .with_read_error(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultConfig::none()
            .with_wear_acceleration(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn kinds_display_and_salt_independently() {
        assert_eq!(FaultKind::Program.to_string(), "program");
        assert_eq!(FaultKind::Erase.to_string(), "erase");
        assert_eq!(FaultKind::Read.to_string(), "read");
        // The same op index decides differently per kind (independent
        // streams) for a rate that fails about half the time.
        let config = FaultConfig::none()
            .with_program_fail(0.5)
            .with_erase_fail(0.5)
            .with_read_error(0.5)
            .with_seed(3);
        let mut a = FaultPlan::new(config);
        let mut b = FaultPlan::new(config);
        let programs: Vec<bool> = (0..64)
            .map(|i| a.decide(FaultKind::Program, i, 0))
            .collect();
        let erases: Vec<bool> = (0..64).map(|i| b.decide(FaultKind::Erase, i, 0)).collect();
        assert_ne!(programs, erases);
    }

    #[test]
    fn display_mentions_every_knob() {
        let text = FaultConfig::from_spec("program=0.1,seed=4")
            .expect("ok")
            .to_string();
        assert!(text.contains("program=0.1"));
        assert!(text.contains("seed=4"));
    }
}
