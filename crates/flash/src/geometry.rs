//! Device geometry and physical address arithmetic.

use core::fmt;

use zssd_types::{ConfigError, Ppn};

/// A flat block index across the whole device.
///
/// Blocks are the erase unit; GC victim selection operates on
/// `BlockId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block id from its flat index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockId(index)
    }

    /// Returns the flat index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A fully decoded physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageAddress {
    /// Channel index.
    pub channel: u32,
    /// Chip index within the channel.
    pub chip: u32,
    /// Die index within the chip.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl fmt::Display for PageAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/chip{}/die{}/pl{}/blk{}/pg{}",
            self.channel, self.chip, self.die, self.plane, self.block, self.page
        )
    }
}

/// The dimensions of the flash array.
///
/// The flat [`Ppn`] layout is page-major within a block, block-major
/// within a plane, and so on up to channels, so consecutive PPNs within
/// a block are consecutive pages — matching NAND's sequential-program
/// constraint.
///
/// # Examples
///
/// ```
/// use zssd_flash::Geometry;
/// // Table I topology: 8 channels × 8 chips, 4 dies, 2 planes.
/// let geom = Geometry::new(8, 8, 4, 2, 32, 256)?;
/// assert_eq!(geom.total_blocks(), 8 * 8 * 4 * 2 * 32);
/// let ppn = geom.ppn_at(7, 7, 3, 1, 31, 255);
/// assert_eq!(geom.decode(ppn).page, 255);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    channels: u32,
    chips_per_channel: u32,
    dies_per_chip: u32,
    planes_per_die: u32,
    blocks_per_plane: u32,
    pages_per_block: u32,
}

impl Geometry {
    /// Creates a geometry, validating that every dimension is nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero or the total
    /// page count overflows `u64`.
    pub fn new(
        channels: u32,
        chips_per_channel: u32,
        dies_per_chip: u32,
        planes_per_die: u32,
        blocks_per_plane: u32,
        pages_per_block: u32,
    ) -> Result<Self, ConfigError> {
        let dims = [
            ("channels", channels),
            ("chips_per_channel", chips_per_channel),
            ("dies_per_chip", dies_per_chip),
            ("planes_per_die", planes_per_die),
            ("blocks_per_plane", blocks_per_plane),
            ("pages_per_block", pages_per_block),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(ConfigError::new(format!("{name} must be nonzero")));
            }
        }
        let geom = Geometry {
            channels,
            chips_per_channel,
            dies_per_chip,
            planes_per_die,
            blocks_per_plane,
            pages_per_block,
        };
        let blocks = u64::from(channels)
            .checked_mul(u64::from(chips_per_channel))
            .and_then(|v| v.checked_mul(u64::from(dies_per_chip)))
            .and_then(|v| v.checked_mul(u64::from(planes_per_die)))
            .and_then(|v| v.checked_mul(u64::from(blocks_per_plane)))
            .ok_or_else(|| ConfigError::new("geometry block count overflows u64"))?;
        blocks
            .checked_mul(u64::from(pages_per_block))
            .ok_or_else(|| ConfigError::new("geometry page count overflows u64"))?;
        Ok(geom)
    }

    /// Number of channels.
    pub const fn channels(&self) -> u32 {
        self.channels
    }

    /// Chips per channel.
    pub const fn chips_per_channel(&self) -> u32 {
        self.chips_per_channel
    }

    /// Dies per chip.
    pub const fn dies_per_chip(&self) -> u32 {
        self.dies_per_chip
    }

    /// Planes per die.
    pub const fn planes_per_die(&self) -> u32 {
        self.planes_per_die
    }

    /// Blocks per plane.
    pub const fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }

    /// Pages per block (the erase-unit size).
    pub const fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Total chips in the device.
    pub const fn total_chips(&self) -> u64 {
        self.channels as u64 * self.chips_per_channel as u64
    }

    /// Total planes in the device.
    pub const fn total_planes(&self) -> u64 {
        self.total_chips() * self.dies_per_chip as u64 * self.planes_per_die as u64
    }

    /// Total erase blocks in the device.
    pub const fn total_blocks(&self) -> u64 {
        self.total_planes() * self.blocks_per_plane as u64
    }

    /// Total physical pages in the device.
    pub const fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Encodes a decomposed address into a flat [`Ppn`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component is out of range.
    pub fn ppn_at(
        &self,
        channel: u32,
        chip: u32,
        die: u32,
        plane: u32,
        block: u32,
        page: u32,
    ) -> Ppn {
        debug_assert!(channel < self.channels);
        debug_assert!(chip < self.chips_per_channel);
        debug_assert!(die < self.dies_per_chip);
        debug_assert!(plane < self.planes_per_die);
        debug_assert!(block < self.blocks_per_plane);
        debug_assert!(page < self.pages_per_block);
        let addr = PageAddress {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        };
        self.encode(addr)
    }

    /// Encodes a [`PageAddress`] into a flat [`Ppn`].
    pub fn encode(&self, addr: PageAddress) -> Ppn {
        let mut idx = u64::from(addr.channel);
        idx = idx * u64::from(self.chips_per_channel) + u64::from(addr.chip);
        idx = idx * u64::from(self.dies_per_chip) + u64::from(addr.die);
        idx = idx * u64::from(self.planes_per_die) + u64::from(addr.plane);
        idx = idx * u64::from(self.blocks_per_plane) + u64::from(addr.block);
        idx = idx * u64::from(self.pages_per_block) + u64::from(addr.page);
        Ppn::new(idx)
    }

    /// Decodes a flat [`Ppn`] into its components.
    ///
    /// # Panics
    ///
    /// Panics if the PPN is outside the device.
    pub fn decode(&self, ppn: Ppn) -> PageAddress {
        assert!(
            ppn.index() < self.total_pages(),
            "ppn {ppn} outside device of {} pages",
            self.total_pages()
        );
        let mut idx = ppn.index();
        let page = (idx % u64::from(self.pages_per_block)) as u32;
        idx /= u64::from(self.pages_per_block);
        let block = (idx % u64::from(self.blocks_per_plane)) as u32;
        idx /= u64::from(self.blocks_per_plane);
        let plane = (idx % u64::from(self.planes_per_die)) as u32;
        idx /= u64::from(self.planes_per_die);
        let die = (idx % u64::from(self.dies_per_chip)) as u32;
        idx /= u64::from(self.dies_per_chip);
        let chip = (idx % u64::from(self.chips_per_channel)) as u32;
        idx /= u64::from(self.chips_per_channel);
        let channel = idx as u32;
        PageAddress {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        }
    }

    /// The block that contains `ppn`.
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        BlockId::new(ppn.index() / u64::from(self.pages_per_block))
    }

    /// The first PPN of `block`.
    pub fn first_ppn_of(&self, block: BlockId) -> Ppn {
        Ppn::new(block.index() * u64::from(self.pages_per_block))
    }

    /// The page offset of `ppn` within its block.
    pub fn page_in_block(&self, ppn: Ppn) -> u32 {
        (ppn.index() % u64::from(self.pages_per_block)) as u32
    }

    /// Flat chip index (channel-major) that owns `ppn` — the unit of
    /// busy-time serialization for program/erase.
    pub fn chip_of(&self, ppn: Ppn) -> u64 {
        let addr = self.decode(ppn);
        u64::from(addr.channel) * u64::from(self.chips_per_channel) + u64::from(addr.chip)
    }

    /// Channel index that owns `ppn`.
    pub fn channel_of(&self, ppn: Ppn) -> u32 {
        self.decode(ppn).channel
    }

    /// Flat plane index that owns `block` — the unit of block
    /// allocation.
    pub fn plane_of_block(&self, block: BlockId) -> u64 {
        block.index() / u64::from(self.blocks_per_plane)
    }

    /// Iterates every PPN of `block` in program order.
    pub fn pages_of(&self, block: BlockId) -> impl Iterator<Item = Ppn> + '_ {
        let first = self.first_ppn_of(block).index();
        (first..first + u64::from(self.pages_per_block)).map(Ppn::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Geometry {
        Geometry::new(2, 2, 2, 2, 4, 8).expect("valid geometry")
    }

    #[test]
    fn totals_multiply_out() {
        let g = small();
        assert_eq!(g.total_chips(), 4);
        assert_eq!(g.total_planes(), 16);
        assert_eq!(g.total_blocks(), 64);
        assert_eq!(g.total_pages(), 512);
    }

    #[test]
    fn encode_decode_round_trips_every_page() {
        let g = small();
        for idx in 0..g.total_pages() {
            let ppn = Ppn::new(idx);
            let addr = g.decode(ppn);
            assert_eq!(g.encode(addr), ppn);
        }
    }

    #[test]
    fn consecutive_ppns_within_block_are_consecutive_pages() {
        let g = small();
        let ppn = g.ppn_at(1, 0, 1, 0, 2, 3);
        let next = Ppn::new(ppn.index() + 1);
        let a = g.decode(ppn);
        let b = g.decode(next);
        assert_eq!(b.page, a.page + 1);
        assert_eq!((b.block, b.plane), (a.block, a.plane));
    }

    #[test]
    fn block_arithmetic_consistent() {
        let g = small();
        let ppn = g.ppn_at(1, 1, 0, 1, 3, 5);
        let block = g.block_of(ppn);
        assert_eq!(g.page_in_block(ppn), 5);
        assert_eq!(
            g.first_ppn_of(block).index() + u64::from(g.page_in_block(ppn)),
            ppn.index()
        );
        let pages: Vec<Ppn> = g.pages_of(block).collect();
        assert_eq!(pages.len(), 8);
        assert!(pages.contains(&ppn));
    }

    #[test]
    fn chip_and_channel_of_agree_with_decode() {
        let g = small();
        let ppn = g.ppn_at(1, 0, 1, 1, 0, 0);
        assert_eq!(g.channel_of(ppn), 1);
        assert_eq!(g.chip_of(ppn), 2); // channel 1 * 2 chips + chip 0
    }

    #[test]
    fn plane_of_block_partitions_blocks() {
        let g = small();
        let mut per_plane = vec![0u32; g.total_planes() as usize];
        for b in 0..g.total_blocks() {
            per_plane[g.plane_of_block(BlockId::new(b)) as usize] += 1;
        }
        assert!(per_plane.iter().all(|&c| c == g.blocks_per_plane()));
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Geometry::new(0, 1, 1, 1, 1, 1).is_err());
        assert!(Geometry::new(1, 1, 1, 1, 1, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "outside device")]
    fn decode_out_of_range_panics() {
        let g = small();
        let _ = g.decode(Ppn::new(g.total_pages()));
    }

    #[test]
    fn display_formats() {
        let g = small();
        assert_eq!(BlockId::new(3).to_string(), "B3");
        let text = g.decode(Ppn::new(0)).to_string();
        assert!(text.starts_with("ch0/"));
    }
}
