//! NAND flash array model for the `zombie-ssd` simulator.
//!
//! This crate is the hardware substrate the paper assumes (its
//! evaluation modifies SSDSim; we rebuild the equivalent from scratch):
//!
//! * [`Geometry`] — channels × chips × dies × planes × blocks × pages,
//!   with flat [`Ppn`](zssd_types::Ppn) encoding/decoding,
//! * [`FlashTiming`] — operation latencies (Table I: read 75 µs,
//!   program 400 µs, erase 3.8 ms) plus ONFi-style channel transfer,
//! * [`FlashArray`] — per-page state (free/valid/invalid), sequential
//!   in-block programming, erase accounting, and a busy-until timing
//!   model per chip and per channel that converts page commands into
//!   completion times (reads and writes queue behind ongoing programs
//!   and erases, which is where the paper's tail latency comes from).
//!
//! The key operation for this paper is [`FlashArray::revive_page`]:
//! flipping an invalid ("zombie") page back to valid without a program
//! operation, which is how a dead-value-pool hit short-circuits a
//! write.
//!
//! Observability: with [`FlashArray::set_event_tracing`] enabled, the
//! array buffers typed fault and retirement events
//! ([`zssd_metrics::Event`]) that the FTL absorbs into its unified,
//! deterministic run log (DESIGN.md §13).
//!
//! # Examples
//!
//! ```
//! use zssd_flash::{FlashArray, FlashTiming, Geometry};
//! use zssd_types::SimTime;
//!
//! let geom = Geometry::new(1, 1, 1, 1, 4, 8)?;
//! let mut flash = FlashArray::new(geom, FlashTiming::paper_table1());
//! let ppn = geom.ppn_at(0, 0, 0, 0, 0, 0);
//! let done = flash.program_page(ppn, SimTime::ZERO)?;
//! assert!(done > SimTime::ZERO);
//! flash.invalidate_page(ppn)?;   // page dies (out-of-place update)
//! flash.revive_page(ppn)?;       // ...and is revived by a DVP hit
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod block;
mod fault;
mod geometry;
mod timing;

pub use array::{FlashArray, FlashOpError, FlashStats, WearSummary};
pub use block::{BlockInfo, PageState};
pub use fault::{FaultConfig, FaultKind, FaultPlan};
pub use geometry::{BlockId, Geometry, PageAddress};
pub use timing::FlashTiming;
