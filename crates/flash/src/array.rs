//! The flash array executor: page state plus the busy-until timing
//! model.

use core::fmt;
use std::error::Error;

use zssd_metrics::{Counter, Event, FaultEvent};
use zssd_types::{AddressError, Ppn, SimTime};

use crate::block::{Block, BlockInfo, PageState};
use crate::fault::{FaultConfig, FaultKind, FaultPlan};
use crate::geometry::{BlockId, Geometry};
use crate::timing::FlashTiming;

/// An illegal flash operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashOpError {
    /// The page or block does not exist.
    Address(AddressError),
    /// The page was not in the state the operation requires (e.g.
    /// programming a non-free page, reviving a valid page).
    State {
        /// The page operated on.
        ppn: Ppn,
        /// The state the operation requires.
        expected: PageState,
        /// The state the page was actually in.
        actual: PageState,
    },
    /// A program targeted a page other than the block's write cursor
    /// (NAND programs pages of a block strictly in order).
    OutOfOrderProgram {
        /// The page targeted.
        ppn: Ppn,
        /// The in-block offset that must be programmed next.
        expected_offset: u32,
    },
    /// An erase targeted a block that still holds valid pages; GC must
    /// relocate them first.
    BlockHasValidPages {
        /// The block targeted.
        block: BlockId,
        /// How many valid pages remain.
        valid_pages: u32,
    },
    /// A program targeted a block with no free pages.
    BlockFull {
        /// The block targeted.
        block: BlockId,
    },
    /// A copyback crossed planes; the internal-data-move command only
    /// works within one plane's page register.
    CrossPlaneCopyback {
        /// The source page.
        src: Ppn,
        /// The destination block (in another plane).
        dest_block: BlockId,
    },
    /// An injected program failure: the NAND reported a program-status
    /// error. The target page is now [`PageState::Bad`] and the
    /// block's cursor has moved past it — the caller retries on the
    /// next page.
    ProgramFailed {
        /// The page that went bad.
        ppn: Ppn,
    },
    /// An injected erase failure: the block did not erase. Its page
    /// states are unchanged; the caller retries, and retires the block
    /// if failures repeat.
    EraseFailed {
        /// The block that failed to erase.
        block: BlockId,
    },
}

impl fmt::Display for FlashOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashOpError::Address(e) => write!(f, "{e}"),
            FlashOpError::State {
                ppn,
                expected,
                actual,
            } => write!(f, "page {ppn} is {actual}, operation requires {expected}"),
            FlashOpError::OutOfOrderProgram {
                ppn,
                expected_offset,
            } => write!(
                f,
                "out-of-order program of {ppn}; next programmable offset is {expected_offset}"
            ),
            FlashOpError::BlockHasValidPages { block, valid_pages } => {
                write!(f, "erase of {block} with {valid_pages} valid pages")
            }
            FlashOpError::BlockFull { block } => write!(f, "program into full block {block}"),
            FlashOpError::CrossPlaneCopyback { src, dest_block } => {
                write!(f, "copyback from {src} to {dest_block} crosses planes")
            }
            FlashOpError::ProgramFailed { ppn } => {
                write!(f, "program of {ppn} failed; page marked bad")
            }
            FlashOpError::EraseFailed { block } => write!(f, "erase of {block} failed"),
        }
    }
}

impl Error for FlashOpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlashOpError::Address(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AddressError> for FlashOpError {
    fn from(e: AddressError) -> Self {
        FlashOpError::Address(e)
    }
}

/// Aggregate operation counters for the whole array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashStats {
    /// Page reads executed (host + GC relocation reads).
    pub reads: Counter,
    /// Page programs executed (host + GC relocation writes).
    pub programs: Counter,
    /// Block erases executed.
    pub erases: Counter,
    /// Pages invalidated (deaths).
    pub invalidations: Counter,
    /// Invalid pages flipped back to valid (rebirths via the DVP).
    pub revivals: Counter,
    /// Injected program failures (the failed attempts are *not*
    /// counted in [`FlashStats::programs`]).
    pub program_failures: Counter,
    /// Injected erase failures (not counted in [`FlashStats::erases`]).
    pub erase_failures: Counter,
    /// Reads that hit an uncorrectable-ECC event and re-sensed the
    /// page (each costs an extra read pass).
    pub read_retries: Counter,
    /// Blocks permanently removed from service after repeated erase
    /// failures.
    pub retired_blocks: Counter,
}

/// The simulated NAND array: per-page state, per-block wear, and the
/// busy-until timing model that converts operations into completion
/// times.
///
/// Timing model (per operation, all on the simulated wall clock):
///
/// * **read** — the owning chip senses for `tR` as soon as it is free,
///   then the 4 KB transfer serializes on the channel;
/// * **program** — the transfer serializes on the channel, then the
///   chip is busy for `tPROG`;
/// * **erase** — the chip is busy for `tBERS`; channel time is
///   negligible.
///
/// Chips on the same channel overlap their cell operations but contend
/// for the channel; operations on the same chip serialize entirely.
/// Reads that arrive while a program/erase occupies their chip wait —
/// this queueing is the source of the latency the paper attacks.
///
/// State changes that involve no flash command — [`invalidate_page`]
/// (a mapping update) and [`revive_page`] (the paper's short-circuited
/// write) — take zero simulated time here; the controller-side costs
/// (hashing) are charged by the FTL layer, and the completion itself
/// goes through [`controller_complete`] so fast-path requests still
/// queue behind an occupied device.
///
/// [`controller_complete`]: FlashArray::controller_complete
///
/// [`invalidate_page`]: FlashArray::invalidate_page
/// [`revive_page`]: FlashArray::revive_page
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: Geometry,
    timing: FlashTiming,
    blocks: Vec<Block>,
    chip_busy_until: Vec<SimTime>,
    channel_busy_until: Vec<SimTime>,
    controller_busy_until: SimTime,
    stats: FlashStats,
    fault: FaultPlan,
    /// Event-trace buffer (DESIGN.md §13). The array cannot see the
    /// FTL's unified [`zssd_metrics::EventLog`], so fault/retirement
    /// events are buffered here and absorbed by the owner before each
    /// of its own emissions, preserving causal order. Empty and
    /// untouched unless tracing is enabled.
    trace: bool,
    events: Vec<(SimTime, Event)>,
}

impl FlashArray {
    /// Creates a fully erased array with the given geometry and timing,
    /// injecting no faults.
    pub fn new(geometry: Geometry, timing: FlashTiming) -> Self {
        FlashArray::with_faults(geometry, timing, FaultConfig::none())
    }

    /// Creates a fully erased array whose operations fail according to
    /// the given (seeded, deterministic) fault configuration.
    pub fn with_faults(geometry: Geometry, timing: FlashTiming, faults: FaultConfig) -> Self {
        FlashArray {
            geometry,
            timing,
            blocks: (0..geometry.total_blocks())
                .map(|_| Block::new(geometry.pages_per_block()))
                .collect(),
            chip_busy_until: vec![SimTime::ZERO; geometry.total_chips() as usize],
            channel_busy_until: vec![SimTime::ZERO; geometry.channels() as usize],
            controller_busy_until: SimTime::ZERO,
            stats: FlashStats::default(),
            fault: FaultPlan::new(faults),
            trace: false,
            events: Vec::new(),
        }
    }

    /// Enables or disables event tracing. Disabled by default; when
    /// disabled, emission sites cost one branch and the buffer stays
    /// empty.
    pub fn set_event_tracing(&mut self, on: bool) {
        self.trace = on;
        if !on {
            self.events.clear();
        }
    }

    /// Whether event tracing is enabled.
    pub fn event_tracing(&self) -> bool {
        self.trace
    }

    /// Drains the buffered fault/retirement events in emission order.
    /// The FTL absorbs these into its unified log before each of its
    /// own emissions.
    pub fn take_events(&mut self) -> Vec<(SimTime, Event)> {
        std::mem::take(&mut self.events)
    }

    fn emit(&mut self, at: SimTime, event: Event) {
        if self.trace {
            self.events.push((at, event));
        }
    }

    /// The fault configuration this array injects from.
    pub fn fault_config(&self) -> &FaultConfig {
        self.fault.config()
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Aggregate operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    fn check_ppn(&self, ppn: Ppn) -> Result<(), AddressError> {
        if ppn.index() >= self.geometry.total_pages() {
            Err(AddressError::out_of_range(
                "ppn",
                ppn.index(),
                self.geometry.total_pages(),
            ))
        } else {
            Ok(())
        }
    }

    fn check_block(&self, block: BlockId) -> Result<(), AddressError> {
        if block.index() >= self.geometry.total_blocks() {
            Err(AddressError::out_of_range(
                "block",
                block.index(),
                self.geometry.total_blocks(),
            ))
        } else {
            Ok(())
        }
    }

    /// Current state of a page.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is outside the device.
    pub fn page_state(&self, ppn: Ppn) -> Result<PageState, AddressError> {
        self.check_ppn(ppn)?;
        let block = self.geometry.block_of(ppn);
        let offset = self.geometry.page_in_block(ppn) as usize;
        Ok(self.blocks[block.index() as usize].pages[offset])
    }

    /// Occupancy snapshot of a block.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is outside the device.
    pub fn block_info(&self, block: BlockId) -> Result<BlockInfo, AddressError> {
        self.check_block(block)?;
        Ok(self.blocks[block.index() as usize].info())
    }

    /// Wear (erase count) of a block.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is outside the device.
    pub fn erase_count(&self, block: BlockId) -> Result<u64, AddressError> {
        self.check_block(block)?;
        Ok(self.blocks[block.index() as usize].erase_count)
    }

    /// Number of free (programmable) pages in a block.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is outside the device.
    pub fn free_pages_in(&self, block: BlockId) -> Result<u32, AddressError> {
        self.check_block(block)?;
        Ok(self.blocks[block.index() as usize].free_count())
    }

    /// Reads a page, returning the completion time.
    ///
    /// The page must hold data (valid or invalid — GC and revival
    /// verification may read garbage pages). An injected ECC error is
    /// resolved internally by a retry (see
    /// [`FlashArray::read_page_outcome`] to observe it).
    ///
    /// # Errors
    ///
    /// Returns an error if the page is out of range, free, or bad.
    pub fn read_page(&mut self, ppn: Ppn, at: SimTime) -> Result<SimTime, FlashOpError> {
        self.read_page_outcome(ppn, at).map(|(done, _)| done)
    }

    /// Reads a page, returning the completion time and whether an
    /// uncorrectable-ECC event forced a retry. A retried read costs a
    /// full second sense + transfer pass; the retry always succeeds
    /// (the data survives — the FTL should still relocate it off the
    /// suspect page).
    ///
    /// # Errors
    ///
    /// Returns an error if the page is out of range, free, or bad.
    pub fn read_page_outcome(
        &mut self,
        ppn: Ppn,
        at: SimTime,
    ) -> Result<(SimTime, bool), FlashOpError> {
        let state = self.page_state(ppn)?;
        if state == PageState::Free || state == PageState::Bad {
            return Err(FlashOpError::State {
                ppn,
                expected: PageState::Valid,
                actual: state,
            });
        }
        let chip = self.geometry.chip_of(ppn) as usize;
        let channel = self.geometry.channel_of(ppn) as usize;
        let sense_start = at.max(self.chip_busy_until[chip]);
        let sense_done = sense_start + self.timing.read;
        let xfer_start = sense_done.max(self.channel_busy_until[channel]);
        let mut done = xfer_start + self.timing.transfer;
        self.stats.reads.incr();
        let retried = self
            .fault
            .decide(FaultKind::Read, ppn.index(), self.wear_of(ppn));
        if retried {
            // ECC failed on the first sense: sense and transfer again.
            let retry_xfer = (done + self.timing.read).max(self.channel_busy_until[channel]);
            done = retry_xfer + self.timing.transfer;
            self.stats.reads.incr();
            self.stats.read_retries.incr();
            self.emit(
                done,
                Event::Fault {
                    kind: FaultEvent::ReadRetry,
                    unit: ppn.index(),
                },
            );
        }
        self.chip_busy_until[chip] = done;
        self.channel_busy_until[channel] = done;
        Ok((done, retried))
    }

    /// Wear (erase count) of the block owning `ppn`; the address has
    /// already been validated by the caller.
    fn wear_of(&self, ppn: Ppn) -> u64 {
        self.blocks[self.geometry.block_of(ppn).index() as usize].erase_count
    }

    /// Programs a page, returning the completion time. The page becomes
    /// [`PageState::Valid`].
    ///
    /// # Errors
    ///
    /// Returns an error if the page is out of range, not free, or not
    /// the next sequential page of its block. An injected program
    /// failure ([`FlashOpError::ProgramFailed`]) marks the page bad and
    /// advances the cursor past it — the full transfer + `tPROG` time
    /// is still spent (the failure only shows in the status poll), and
    /// the caller retries on the block's next page.
    pub fn program_page(&mut self, ppn: Ppn, at: SimTime) -> Result<SimTime, FlashOpError> {
        let state = self.page_state(ppn)?;
        if state != PageState::Free {
            return Err(FlashOpError::State {
                ppn,
                expected: PageState::Free,
                actual: state,
            });
        }
        let block_id = self.geometry.block_of(ppn);
        let offset = self.geometry.page_in_block(ppn);
        let wear = self.blocks[block_id.index() as usize].erase_count;
        if offset != self.blocks[block_id.index() as usize].write_cursor {
            return Err(FlashOpError::OutOfOrderProgram {
                ppn,
                expected_offset: self.blocks[block_id.index() as usize].write_cursor,
            });
        }
        let failed = self.fault.decide(FaultKind::Program, ppn.index(), wear);
        let block = &mut self.blocks[block_id.index() as usize];
        if failed {
            block.fail_at_cursor();
        } else {
            block.program_at_cursor();
        }

        let chip = self.geometry.chip_of(ppn) as usize;
        let channel = self.geometry.channel_of(ppn) as usize;
        let xfer_start = at
            .max(self.chip_busy_until[chip])
            .max(self.channel_busy_until[channel]);
        let xfer_done = xfer_start + self.timing.transfer;
        let done = xfer_done + self.timing.program;
        self.channel_busy_until[channel] = xfer_done;
        self.chip_busy_until[chip] = done;
        if failed {
            self.stats.program_failures.incr();
            self.emit(
                done,
                Event::Fault {
                    kind: FaultEvent::Program,
                    unit: ppn.index(),
                },
            );
            return Err(FlashOpError::ProgramFailed { ppn });
        }
        self.stats.programs.incr();
        Ok(done)
    }

    /// Programs the next sequential page of `block`, returning the
    /// chosen page and completion time.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is out of range or full.
    pub fn program_next(
        &mut self,
        block: BlockId,
        at: SimTime,
    ) -> Result<(Ppn, SimTime), FlashOpError> {
        self.check_block(block)?;
        let cursor = self.blocks[block.index() as usize].write_cursor;
        if cursor >= self.geometry.pages_per_block() {
            return Err(FlashOpError::BlockFull { block });
        }
        let ppn = Ppn::new(self.geometry.first_ppn_of(block).index() + u64::from(cursor));
        let done = self.program_page(ppn, at)?;
        Ok((ppn, done))
    }

    /// Marks a valid page invalid (a death). Pure bookkeeping: no flash
    /// command, no simulated time.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is out of range or not valid.
    pub fn invalidate_page(&mut self, ppn: Ppn) -> Result<(), FlashOpError> {
        let state = self.page_state(ppn)?;
        if state != PageState::Valid {
            return Err(FlashOpError::State {
                ppn,
                expected: PageState::Valid,
                actual: state,
            });
        }
        let block = &mut self.blocks[self.geometry.block_of(ppn).index() as usize];
        block.pages[self.geometry.page_in_block(ppn) as usize] = PageState::Invalid;
        block.valid_count -= 1;
        block.invalid_count += 1;
        self.stats.invalidations.incr();
        Ok(())
    }

    /// Flips an invalid page back to valid — the paper's rebirth, used
    /// when a dead-value-pool hit short-circuits a write. Pure
    /// bookkeeping: no flash command, no simulated time.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is out of range or not invalid.
    pub fn revive_page(&mut self, ppn: Ppn) -> Result<(), FlashOpError> {
        let state = self.page_state(ppn)?;
        if state != PageState::Invalid {
            return Err(FlashOpError::State {
                ppn,
                expected: PageState::Invalid,
                actual: state,
            });
        }
        let block = &mut self.blocks[self.geometry.block_of(ppn).index() as usize];
        block.pages[self.geometry.page_in_block(ppn) as usize] = PageState::Valid;
        block.invalid_count -= 1;
        block.valid_count += 1;
        self.stats.revivals.incr();
        Ok(())
    }

    /// Copies a page to the next free page of a destination block in
    /// the **same plane** without crossing the channel (the ONFi
    /// copyback / internal-data-move advanced command): the plane
    /// reads the source into its page register and programs the
    /// destination directly. Returns the destination page and the
    /// completion time. The source keeps its state (the caller
    /// invalidates it); the destination becomes valid.
    ///
    /// Cost: `tR + tPROG` of chip time, no channel occupancy — cheaper
    /// than a read–modify–write relocation and the reason GC prefers
    /// in-plane moves.
    ///
    /// # Errors
    ///
    /// Returns an error if the source holds no data, the destination
    /// block is full or in a different plane, or addresses are out of
    /// range.
    pub fn copyback_page(
        &mut self,
        src: Ppn,
        dest_block: BlockId,
        at: SimTime,
    ) -> Result<(Ppn, SimTime), FlashOpError> {
        let state = self.page_state(src)?;
        if state == PageState::Free {
            return Err(FlashOpError::State {
                ppn: src,
                expected: PageState::Valid,
                actual: state,
            });
        }
        self.check_block(dest_block)?;
        let src_plane = self.geometry.plane_of_block(self.geometry.block_of(src));
        if self.geometry.plane_of_block(dest_block) != src_plane {
            return Err(FlashOpError::CrossPlaneCopyback { src, dest_block });
        }
        let cursor = self.blocks[dest_block.index() as usize].write_cursor;
        if cursor >= self.geometry.pages_per_block()
            || self.blocks[dest_block.index() as usize].free_count() == 0
        {
            return Err(FlashOpError::BlockFull { block: dest_block });
        }
        let dest = Ppn::new(self.geometry.first_ppn_of(dest_block).index() + u64::from(cursor));

        // The program half of the move is subject to the same injected
        // failures as a host program.
        let wear = self.blocks[dest_block.index() as usize].erase_count;
        let failed = self.fault.decide(FaultKind::Program, dest.index(), wear);
        // State transition of the destination page, mirroring
        // program_page but without touching the channel.
        {
            let block = &mut self.blocks[dest_block.index() as usize];
            if failed {
                block.fail_at_cursor();
            } else {
                block.program_at_cursor();
            }
        }
        let chip = self.geometry.chip_of(src) as usize;
        let start = at.max(self.chip_busy_until[chip]);
        let done = start + self.timing.read + self.timing.program;
        self.chip_busy_until[chip] = done;
        self.stats.reads.incr();
        if failed {
            self.stats.program_failures.incr();
            self.emit(
                done,
                Event::Fault {
                    kind: FaultEvent::Program,
                    unit: dest.index(),
                },
            );
            return Err(FlashOpError::ProgramFailed { ppn: dest });
        }
        self.stats.programs.incr();
        Ok((dest, done))
    }

    /// Erases a block, returning the completion time. All non-bad
    /// pages become free and the block's wear count increments.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is out of range or still holds
    /// valid pages (relocate them first). An injected erase failure
    /// ([`FlashOpError::EraseFailed`]) spends the full `tBERS` but
    /// leaves page states untouched — the caller retries, and retires
    /// the block if failures repeat.
    pub fn erase_block(&mut self, block: BlockId, at: SimTime) -> Result<SimTime, FlashOpError> {
        self.check_block(block)?;
        let wear = self.blocks[block.index() as usize].erase_count;
        if self.blocks[block.index() as usize].valid_count > 0 {
            return Err(FlashOpError::BlockHasValidPages {
                block,
                valid_pages: self.blocks[block.index() as usize].valid_count,
            });
        }
        let failed = self.fault.decide(FaultKind::Erase, block.index(), wear);
        let chip = self.geometry.chip_of(self.geometry.first_ppn_of(block)) as usize;
        let start = at.max(self.chip_busy_until[chip]);
        let done = start + self.timing.erase;
        self.chip_busy_until[chip] = done;
        if failed {
            self.stats.erase_failures.incr();
            self.emit(
                done,
                Event::Fault {
                    kind: FaultEvent::Erase,
                    unit: block.index(),
                },
            );
            return Err(FlashOpError::EraseFailed { block });
        }
        self.blocks[block.index() as usize].erase();
        self.stats.erases.incr();
        Ok(done)
    }

    /// Permanently removes a block from service: every page becomes
    /// [`PageState::Bad`], so the block can never be programmed again
    /// and never offers garbage to GC or the dead-value pool. Pure
    /// bookkeeping (the failed erase attempts already paid their
    /// time). The FTL calls this after repeated erase failures, once
    /// all mapping/pool/rmap entries into the block are purged.
    ///
    /// # Errors
    ///
    /// Returns an error if the block is out of range or still holds
    /// valid pages (relocate them first).
    pub fn retire_block(&mut self, block: BlockId) -> Result<(), FlashOpError> {
        self.check_block(block)?;
        let b = &mut self.blocks[block.index() as usize];
        if b.valid_count > 0 {
            return Err(FlashOpError::BlockHasValidPages {
                block,
                valid_pages: b.valid_count,
            });
        }
        b.retire();
        self.stats.retired_blocks.incr();
        // Retirement itself is pure bookkeeping; timestamp it with the
        // owning chip's busy-until, which the failed erases just paid.
        let at =
            self.chip_busy_until[self.geometry.chip_of(self.geometry.first_ppn_of(block)) as usize];
        self.emit(
            at,
            Event::Retire {
                block: block.index(),
            },
        );
        Ok(())
    }

    /// Earliest time the chip owning `ppn` is free — lets the FTL
    /// estimate queueing before issuing.
    pub fn chip_free_at(&self, ppn: Ppn) -> SimTime {
        self.chip_busy_until[self.geometry.chip_of(ppn) as usize]
    }

    /// Completes a request on the *controller's* fast path — a revival,
    /// a dedup hit, or an unmapped read — without issuing any NAND
    /// command. Even these short-circuited requests occupy the host
    /// interface: completion waits for the controller to be free, and
    /// when the request's content sits on flash (`ppn` is `Some`) also
    /// for that page's channel, then holds the controller for one 4 KB
    /// transfer. The channel itself is **not** occupied — no flash
    /// command crosses it — so this models a device answering from
    /// mapping state while the array keeps working.
    ///
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns an error if `ppn` is outside the device.
    pub fn controller_complete(
        &mut self,
        ppn: Option<Ppn>,
        at: SimTime,
    ) -> Result<SimTime, FlashOpError> {
        let mut start = at.max(self.controller_busy_until);
        if let Some(ppn) = ppn {
            self.check_ppn(ppn)?;
            let channel = self.geometry.channel_of(ppn) as usize;
            start = start.max(self.channel_busy_until[channel]);
        }
        let done = start + self.timing.transfer;
        self.controller_busy_until = done;
        Ok(done)
    }

    /// Forgets all busy times (used after preconditioning fills, so
    /// warm-up programs do not delay the measured trace).
    pub fn reset_time(&mut self) {
        self.chip_busy_until.fill(SimTime::ZERO);
        self.channel_busy_until.fill(SimTime::ZERO);
        self.controller_busy_until = SimTime::ZERO;
    }

    /// Zeroes the operation counters (used after preconditioning).
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    /// Iterates `(BlockId, BlockInfo)` over every block, for GC victim
    /// scans.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, BlockInfo)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u64), b.info()))
    }

    /// Total valid pages across the device.
    pub fn total_valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.valid_count)).sum()
    }

    /// Total invalid (zombie) pages across the device.
    pub fn total_invalid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.invalid_count)).sum()
    }

    /// Total bad (program-failed or retired) pages across the device.
    pub fn total_bad_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.bad_count)).sum()
    }

    /// Total free (programmable) pages across the device.
    pub fn total_free_pages(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.free_count())).sum()
    }

    /// Wear summary across all blocks (min/max/mean erase counts) —
    /// the paper's lifetime argument is about total erases, but
    /// *spread* matters for wear levelling.
    pub fn wear_summary(&self) -> WearSummary {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        for b in &self.blocks {
            min = min.min(b.erase_count);
            max = max.max(b.erase_count);
            sum += b.erase_count;
        }
        WearSummary {
            min_erases: if self.blocks.is_empty() { 0 } else { min },
            max_erases: max,
            mean_erases: if self.blocks.is_empty() {
                0.0
            } else {
                sum as f64 / self.blocks.len() as f64
            },
        }
    }
}

/// Distribution of block wear across the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    /// Fewest erases of any block.
    pub min_erases: u64,
    /// Most erases of any block.
    pub max_erases: u64,
    /// Mean erases per block.
    pub mean_erases: f64,
}

impl WearSummary {
    /// Max-to-mean wear imbalance; 1.0 is perfectly level. Returns 0
    /// when nothing has been erased.
    pub fn imbalance(&self) -> f64 {
        if self.mean_erases == 0.0 {
            0.0
        } else {
            self.max_erases as f64 / self.mean_erases
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::SimDuration;

    fn tiny() -> FlashArray {
        let geom = Geometry::new(2, 1, 1, 1, 2, 4).expect("valid geometry");
        FlashArray::new(geom, FlashTiming::paper_table1())
    }

    #[test]
    fn program_then_read_round_trip_times() {
        let mut flash = tiny();
        let ppn = Ppn::new(0);
        let t = FlashTiming::paper_table1();
        let done = flash.program_page(ppn, SimTime::ZERO).expect("program");
        assert_eq!(done, SimTime::ZERO + t.transfer + t.program);
        let read_done = flash.read_page(ppn, SimTime::ZERO).expect("read");
        // The read waits for the program to finish on the same chip.
        assert_eq!(read_done, done + t.read + t.transfer);
    }

    #[test]
    fn programs_on_different_channels_overlap() {
        let mut flash = tiny();
        let geom = *flash.geometry();
        let a = geom.ppn_at(0, 0, 0, 0, 0, 0);
        let b = geom.ppn_at(1, 0, 0, 0, 0, 0);
        let da = flash.program_page(a, SimTime::ZERO).expect("program a");
        let db = flash.program_page(b, SimTime::ZERO).expect("program b");
        assert_eq!(da, db, "independent channels see identical latency");
    }

    #[test]
    fn programs_on_same_chip_serialize() {
        let mut flash = tiny();
        let a = Ppn::new(0);
        let b = Ppn::new(1);
        let da = flash.program_page(a, SimTime::ZERO).expect("program a");
        let db = flash.program_page(b, SimTime::ZERO).expect("program b");
        assert!(db > da, "same-chip programs must queue");
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut flash = tiny();
        let err = flash.program_page(Ppn::new(2), SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            FlashOpError::OutOfOrderProgram {
                expected_offset: 0,
                ..
            }
        ));
    }

    #[test]
    fn double_program_rejected() {
        let mut flash = tiny();
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        let err = flash.program_page(Ppn::new(0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::State { .. }));
    }

    #[test]
    fn invalidate_then_revive_counts_and_states() {
        let mut flash = tiny();
        let ppn = Ppn::new(0);
        flash.program_page(ppn, SimTime::ZERO).expect("program");
        flash.invalidate_page(ppn).expect("invalidate");
        assert_eq!(flash.page_state(ppn).expect("state"), PageState::Invalid);
        assert_eq!(flash.total_invalid_pages(), 1);
        flash.revive_page(ppn).expect("revive");
        assert_eq!(flash.page_state(ppn).expect("state"), PageState::Valid);
        assert_eq!(flash.stats().revivals.get(), 1);
        assert_eq!(flash.total_valid_pages(), 1);
    }

    #[test]
    fn revive_requires_invalid() {
        let mut flash = tiny();
        let err = flash.revive_page(Ppn::new(0)).unwrap_err();
        assert!(matches!(err, FlashOpError::State { .. }));
    }

    #[test]
    fn erase_requires_no_valid_pages_and_bumps_wear() {
        let mut flash = tiny();
        let block = BlockId::new(0);
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        let err = flash.erase_block(block, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::BlockHasValidPages { .. }));
        flash.invalidate_page(Ppn::new(0)).expect("invalidate");
        // The erase queues behind the still-running program on the
        // same chip.
        let chip_free = flash.chip_free_at(Ppn::new(0));
        let done = flash.erase_block(block, SimTime::ZERO).expect("erase");
        assert_eq!(done, chip_free + SimDuration::from_micros(3800));
        assert_eq!(flash.erase_count(block).expect("count"), 1);
        assert_eq!(flash.free_pages_in(block).expect("free"), 4);
        // Block can be programmed again from offset zero.
        flash.program_page(Ppn::new(0), done).expect("reprogram");
    }

    #[test]
    fn program_next_walks_the_block() {
        let mut flash = tiny();
        let block = BlockId::new(1);
        let mut last = SimTime::ZERO;
        for expect in 4..8u64 {
            let (ppn, done) = flash.program_next(block, last).expect("program");
            assert_eq!(ppn.index(), expect);
            last = done;
        }
        let err = flash.program_next(block, last).unwrap_err();
        assert!(matches!(err, FlashOpError::BlockFull { .. }));
    }

    #[test]
    fn reads_of_free_pages_rejected() {
        let mut flash = tiny();
        let err = flash.read_page(Ppn::new(0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::State { .. }));
    }

    #[test]
    fn out_of_range_is_address_error() {
        let mut flash = tiny();
        let bad = Ppn::new(flash.geometry().total_pages());
        assert!(matches!(
            flash.read_page(bad, SimTime::ZERO).unwrap_err(),
            FlashOpError::Address(_)
        ));
        assert!(flash.block_info(BlockId::new(99)).is_err());
    }

    #[test]
    fn stats_track_each_operation() {
        let mut flash = tiny();
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        flash.read_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        flash.invalidate_page(Ppn::new(0)).expect("ok");
        flash
            .erase_block(BlockId::new(0), SimTime::ZERO)
            .expect("ok");
        let s = flash.stats();
        assert_eq!(
            (
                s.programs.get(),
                s.reads.get(),
                s.invalidations.get(),
                s.erases.get()
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn blocks_iterator_covers_device() {
        let flash = tiny();
        assert_eq!(
            flash.blocks().count() as u64,
            flash.geometry().total_blocks()
        );
    }

    #[test]
    fn copyback_moves_within_plane_without_channel() {
        let geom = Geometry::new(1, 1, 1, 2, 2, 4).expect("valid geometry");
        let mut flash = FlashArray::new(geom, FlashTiming::paper_table1());
        let t = FlashTiming::paper_table1();
        // Program page 0 of block 0 (plane 0), then copy it into
        // block 1 (same plane).
        let src = Ppn::new(0);
        let done = flash.program_page(src, SimTime::ZERO).expect("program");
        let (dest, cb_done) = flash
            .copyback_page(src, BlockId::new(1), done)
            .expect("copyback");
        assert_eq!(geom.block_of(dest), BlockId::new(1));
        assert_eq!(
            cb_done,
            done + t.read + t.program,
            "tR + tPROG, no transfer"
        );
        assert_eq!(flash.page_state(dest).expect("state"), PageState::Valid);
        // Source is untouched until the caller invalidates it.
        assert_eq!(flash.page_state(src).expect("state"), PageState::Valid);
        flash.invalidate_page(src).expect("invalidate");
        // Cross-plane copyback is rejected (block 2 is plane 1).
        let err = flash
            .copyback_page(dest, BlockId::new(2), cb_done)
            .unwrap_err();
        assert!(matches!(err, FlashOpError::CrossPlaneCopyback { .. }));
        // Copyback of a free page is rejected.
        let err = flash
            .copyback_page(Ppn::new(3), BlockId::new(1), cb_done)
            .unwrap_err();
        assert!(matches!(err, FlashOpError::State { .. }));
    }

    #[test]
    fn copyback_fills_destination_sequentially() {
        let geom = Geometry::new(1, 1, 1, 1, 2, 2).expect("valid geometry");
        let mut flash = FlashArray::new(geom, FlashTiming::paper_table1());
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        flash.program_page(Ppn::new(1), SimTime::ZERO).expect("ok");
        let (d1, _) = flash
            .copyback_page(Ppn::new(0), BlockId::new(1), SimTime::ZERO)
            .expect("copyback");
        let (d2, _) = flash
            .copyback_page(Ppn::new(1), BlockId::new(1), SimTime::ZERO)
            .expect("copyback");
        assert_eq!((d1.index(), d2.index()), (2, 3));
        let err = flash
            .copyback_page(Ppn::new(0), BlockId::new(1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FlashOpError::BlockFull { .. }));
    }

    #[test]
    fn wear_summary_tracks_erase_spread() {
        let mut flash = tiny();
        let fresh = flash.wear_summary();
        assert_eq!((fresh.min_erases, fresh.max_erases), (0, 0));
        assert_eq!(fresh.imbalance(), 0.0);
        // Erase block 0 three times, block 1 once (4 blocks total).
        for _ in 0..3 {
            flash
                .erase_block(BlockId::new(0), SimTime::ZERO)
                .expect("erase");
        }
        flash
            .erase_block(BlockId::new(1), SimTime::ZERO)
            .expect("erase");
        let worn = flash.wear_summary();
        assert_eq!(worn.max_erases, 3);
        assert_eq!(worn.min_erases, 0);
        assert_eq!(worn.mean_erases, 1.0);
        assert_eq!(worn.imbalance(), 3.0);
    }

    #[test]
    fn controller_completions_serialize_on_the_controller() {
        let mut flash = tiny();
        let t = FlashTiming::paper_table1();
        let d1 = flash
            .controller_complete(None, SimTime::ZERO)
            .expect("first");
        assert_eq!(d1, SimTime::ZERO + t.transfer);
        let d2 = flash
            .controller_complete(None, SimTime::ZERO)
            .expect("second");
        assert_eq!(d2, d1 + t.transfer, "same-instant completions queue");
        // Out-of-range pages are rejected.
        let bad = Ppn::new(flash.geometry().total_pages());
        assert!(matches!(
            flash.controller_complete(Some(bad), SimTime::ZERO),
            Err(FlashOpError::Address(_))
        ));
    }

    #[test]
    fn controller_completion_waits_for_a_busy_channel() {
        let mut flash = tiny();
        let t = FlashTiming::paper_table1();
        let ppn = Ppn::new(0);
        flash.program_page(ppn, SimTime::ZERO).expect("program");
        // Read holds the channel until its transfer finishes.
        let read_done = flash.read_page(ppn, SimTime::ZERO).expect("read");
        let done = flash
            .controller_complete(Some(ppn), SimTime::ZERO)
            .expect("complete");
        assert_eq!(done, read_done + t.transfer, "waits out the channel");
        // A flash-free completion ignores channels entirely.
        let free = flash.controller_complete(None, SimTime::ZERO).expect("ok");
        assert_eq!(free, done + t.transfer, "only the controller serializes");
    }

    #[test]
    fn injected_program_failure_marks_page_bad_and_advances_cursor() {
        let geom = Geometry::new(1, 1, 1, 1, 2, 4).expect("valid geometry");
        let mut flash = FlashArray::with_faults(
            geom,
            FlashTiming::paper_table1(),
            crate::FaultConfig::none().with_program_fail(1.0),
        );
        let block = BlockId::new(0);
        let err = flash.program_next(block, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::ProgramFailed { ppn } if ppn == Ppn::new(0)));
        assert_eq!(
            flash.page_state(Ppn::new(0)).expect("state"),
            PageState::Bad
        );
        assert_eq!(flash.free_pages_in(block).expect("free"), 3);
        assert_eq!(flash.stats().program_failures.get(), 1);
        assert_eq!(flash.stats().programs.get(), 0, "failures are not programs");
        // The failed attempt still occupied the chip for a full program.
        let t = FlashTiming::paper_table1();
        assert_eq!(
            flash.chip_free_at(Ppn::new(0)),
            SimTime::ZERO + t.transfer + t.program
        );
        // At rate 1.0 every retry fails too, until the block is consumed.
        for _ in 0..3 {
            assert!(flash.program_next(block, SimTime::ZERO).is_err());
        }
        assert!(matches!(
            flash.program_next(block, SimTime::ZERO).unwrap_err(),
            FlashOpError::BlockFull { .. }
        ));
        assert_eq!(flash.total_bad_pages(), 4);
    }

    #[test]
    fn injected_erase_failure_leaves_block_intact() {
        let geom = Geometry::new(1, 1, 1, 1, 2, 4).expect("valid geometry");
        let mut flash = FlashArray::with_faults(
            geom,
            FlashTiming::paper_table1(),
            crate::FaultConfig::none().with_erase_fail(1.0),
        );
        let block = BlockId::new(0);
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        flash.invalidate_page(Ppn::new(0)).expect("ok");
        let err = flash.erase_block(block, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::EraseFailed { .. }));
        // Page states and wear are untouched, but tBERS was spent.
        assert_eq!(
            flash.page_state(Ppn::new(0)).expect("state"),
            PageState::Invalid
        );
        assert_eq!(flash.erase_count(block).expect("wear"), 0);
        assert_eq!(flash.stats().erase_failures.get(), 1);
        assert_eq!(flash.stats().erases.get(), 0);
        // Retirement takes the block out of service for good.
        flash.retire_block(block).expect("retire");
        assert_eq!(flash.stats().retired_blocks.get(), 1);
        assert!(flash.block_info(block).expect("info").is_retired());
        assert_eq!(flash.free_pages_in(block).expect("free"), 0);
        assert!(flash.read_page(Ppn::new(0), SimTime::ZERO).is_err());
    }

    #[test]
    fn retire_refuses_blocks_with_valid_pages() {
        let mut flash = tiny();
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        assert!(matches!(
            flash.retire_block(BlockId::new(0)).unwrap_err(),
            FlashOpError::BlockHasValidPages { .. }
        ));
    }

    #[test]
    fn injected_read_error_retries_and_costs_a_second_pass() {
        let geom = Geometry::new(1, 1, 1, 1, 2, 4).expect("valid geometry");
        let mut flash = FlashArray::with_faults(
            geom,
            FlashTiming::paper_table1(),
            crate::FaultConfig::none().with_read_error(1.0),
        );
        let t = FlashTiming::paper_table1();
        let done = flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        let (read_done, retried) = flash
            .read_page_outcome(Ppn::new(0), done)
            .expect("read survives via retry");
        assert!(retried);
        assert_eq!(
            read_done,
            done + t.read + t.transfer + t.read + t.transfer,
            "two full sense + transfer passes"
        );
        assert_eq!(flash.stats().read_retries.get(), 1);
        assert_eq!(flash.stats().reads.get(), 2, "the retry re-senses");
    }

    #[test]
    fn zero_rate_faults_change_nothing() {
        let mut faulty = FlashArray::with_faults(
            *tiny().geometry(),
            FlashTiming::paper_table1(),
            crate::FaultConfig::none().with_seed(12345),
        );
        let mut plain = tiny();
        for (a, b) in [(&mut faulty, &mut plain)] {
            for ppn in 0..4u64 {
                let da = a.program_page(Ppn::new(ppn), SimTime::ZERO).expect("ok");
                let db = b.program_page(Ppn::new(ppn), SimTime::ZERO).expect("ok");
                assert_eq!(da, db);
            }
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn event_tracing_buffers_faults_and_retirements() {
        let geom = Geometry::new(1, 1, 1, 1, 2, 4).expect("valid geometry");
        let mut flash = FlashArray::with_faults(
            geom,
            FlashTiming::paper_table1(),
            crate::FaultConfig::none().with_erase_fail(1.0),
        );
        // Disabled by default: nothing is buffered.
        assert!(!flash.event_tracing());
        let block = BlockId::new(0);
        let _ = flash.erase_block(block, SimTime::ZERO);
        assert!(flash.take_events().is_empty());

        flash.set_event_tracing(true);
        let err = flash.erase_block(block, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashOpError::EraseFailed { .. }));
        flash.retire_block(block).expect("retire");
        let events = flash.take_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].1,
            Event::Fault {
                kind: FaultEvent::Erase,
                unit: 0
            }
        ));
        assert!(matches!(events[1].1, Event::Retire { block: 0 }));
        // The retirement is stamped with the chip time the failed
        // erases paid, and draining empties the buffer.
        assert_eq!(events[1].0, flash.chip_free_at(Ppn::new(0)));
        assert!(flash.take_events().is_empty());
        // Turning tracing off clears any pending buffer.
        let _ = flash.erase_block(block, SimTime::ZERO);
        flash.set_event_tracing(false);
        assert!(flash.take_events().is_empty());
    }

    #[test]
    fn reset_time_and_stats_clear_state() {
        let mut flash = tiny();
        flash.program_page(Ppn::new(0), SimTime::ZERO).expect("ok");
        flash
            .controller_complete(None, SimTime::ZERO)
            .expect("controller");
        assert!(flash.chip_free_at(Ppn::new(0)) > SimTime::ZERO);
        flash.reset_time();
        assert_eq!(flash.chip_free_at(Ppn::new(0)), SimTime::ZERO);
        let d = flash
            .controller_complete(None, SimTime::ZERO)
            .expect("controller");
        assert_eq!(
            d,
            SimTime::ZERO + FlashTiming::paper_table1().transfer,
            "controller busy-until cleared"
        );
        assert_eq!(flash.stats().programs.get(), 1);
        flash.reset_stats();
        assert_eq!(flash.stats().programs.get(), 0);
        // Page states survive the resets.
        assert_eq!(flash.page_state(Ppn::new(0)).expect("ok"), PageState::Valid);
    }
}
