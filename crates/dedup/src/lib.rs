//! CAFTL-style device-level deduplication (§VII of the paper).
//!
//! With deduplication, the FTL keeps a **many-to-one** mapping: several
//! logical pages may point at one physical page holding their shared
//! content. A physical page "turns into garbage only when all pointers
//! to that page are removed" — i.e. when its reference count drops to
//! zero.
//!
//! The [`DedupStore`] has two parts with different budgets, as in
//! CAFTL/CA-SSD:
//!
//! * the **per-page reference counts** (`PPN → fingerprint, refs`) are
//!   FTL metadata and are kept for every live page, and
//! * the **fingerprint index** (`fingerprint → PPN`) lives in scarce
//!   controller RAM and is therefore *capacity-bounded* with LRU
//!   replacement. Evicting an index entry does not affect the page or
//!   its references — it only means future duplicates of that content
//!   can no longer be detected and will be programmed again (possibly
//!   creating a second live physical copy, exactly as on a real
//!   bounded-index deduplicating SSD).
//!
//! # Examples
//!
//! ```
//! use zssd_dedup::DedupStore;
//! use zssd_types::{Fingerprint, Ppn, ValueId};
//!
//! let mut store = DedupStore::new(); // unbounded index
//! let fp = Fingerprint::of_value(ValueId::new(1));
//!
//! // First write of a value programs a page and registers it.
//! store.register(fp, Ppn::new(10))?;
//! // A second logical copy deduplicates against it.
//! assert_eq!(store.reference(fp), Some(Ppn::new(10)));
//! assert_eq!(store.refs(Ppn::new(10)), Some(2));
//!
//! // Overwrites release references; the page dies at zero.
//! assert_eq!(store.release(Ppn::new(10))?.remaining, 1);
//! let released = store.release(Ppn::new(10))?;
//! assert_eq!(released.remaining, 0);      // page is now garbage
//! assert_eq!(released.fingerprint, fp);   // ...and can enter the DVP
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use std::collections::BTreeMap;
use std::error::Error;

use zssd_types::{Fingerprint, FxHashMap, Ppn};

/// An inconsistent use of the deduplication index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DedupError {
    /// `register` was called for a physical page already tracked.
    PpnInUse {
        /// The busy page.
        ppn: Ppn,
    },
    /// `release`/`relocate` was called for an untracked physical page.
    UnknownPpn {
        /// The unknown page.
        ppn: Ppn,
    },
}

impl fmt::Display for DedupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DedupError::PpnInUse { ppn } => write!(f, "physical page {ppn} already registered"),
            DedupError::UnknownPpn { ppn } => write!(f, "physical page {ppn} not in dedup index"),
        }
    }
}

impl Error for DedupError {}

/// The result of releasing one logical reference to a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefRelease {
    /// The content of the page (still physically present).
    pub fingerprint: Fingerprint,
    /// References remaining. Zero means the page just became garbage —
    /// the moment the paper's dead-value pool takes over (§VII).
    pub remaining: u32,
}

/// Usage counters for the dedup index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// `reference` calls that found a live copy (writes removed).
    pub dedup_hits: u64,
    /// `reference` calls that found nothing in the index.
    pub misses: u64,
    /// New unique values registered.
    pub registrations: u64,
    /// Pages whose last reference was released (true deaths).
    pub deaths: u64,
    /// Fingerprint index entries evicted for capacity.
    pub index_evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    fp: Fingerprint,
    refs: u32,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    ppn: Ppn,
    stamp: u64,
}

/// The content-addressed index of live values: a bounded
/// fingerprint → physical-page lookup plus per-page reference counts.
#[derive(Debug, Clone, Default)]
pub struct DedupStore {
    pages: FxHashMap<Ppn, PageEntry>,
    index: FxHashMap<Fingerprint, IndexEntry>,
    lru: BTreeMap<u64, Fingerprint>,
    next_stamp: u64,
    capacity: Option<usize>,
    stats: DedupStats,
}

impl DedupStore {
    /// Creates a store with an unbounded fingerprint index.
    pub fn new() -> Self {
        DedupStore::default()
    }

    /// Creates a store whose fingerprint index holds at most
    /// `entries` fingerprints (LRU-replaced). Reference counts are
    /// unaffected by index evictions.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn with_index_capacity(entries: usize) -> Self {
        assert!(entries > 0, "dedup index capacity must be nonzero");
        DedupStore {
            capacity: Some(entries),
            ..DedupStore::default()
        }
    }

    /// The index capacity, or `None` when unbounded.
    pub fn index_capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn touch(&mut self, fp: Fingerprint) {
        let Some(entry) = self.index.get_mut(&fp) else {
            return;
        };
        self.lru.remove(&entry.stamp);
        entry.stamp = self.next_stamp;
        self.lru.insert(self.next_stamp, fp);
        self.next_stamp += 1;
    }

    fn index_insert(&mut self, fp: Fingerprint, ppn: Ppn) {
        if let Some(old) = self.index.insert(
            fp,
            IndexEntry {
                ppn,
                stamp: self.next_stamp,
            },
        ) {
            self.lru.remove(&old.stamp);
        }
        self.lru.insert(self.next_stamp, fp);
        self.next_stamp += 1;
        if let Some(cap) = self.capacity {
            while self.index.len() > cap {
                let (&stamp, &victim) = self.lru.iter().next().expect("index non-empty");
                self.lru.remove(&stamp);
                self.index.remove(&victim);
                self.stats.index_evictions += 1;
            }
        }
    }

    fn index_remove_if(&mut self, fp: Fingerprint, ppn: Ppn) {
        if let Some(entry) = self.index.get(&fp) {
            if entry.ppn == ppn {
                let stamp = entry.stamp;
                self.index.remove(&fp);
                self.lru.remove(&stamp);
            }
        }
    }

    /// Looks up the live copy of a value without taking a reference or
    /// refreshing recency.
    pub fn lookup(&self, fp: Fingerprint) -> Option<Ppn> {
        self.index.get(&fp).map(|e| e.ppn)
    }

    /// Takes a reference to the live copy of a value, if the index
    /// still knows one: returns the physical page the new logical page
    /// should point at. Counts a dedup hit (an eliminated write) on
    /// success and refreshes the entry's recency.
    pub fn reference(&mut self, fp: Fingerprint) -> Option<Ppn> {
        let Some(&IndexEntry { ppn, .. }) = self.index.get(&fp) else {
            self.stats.misses += 1;
            return None;
        };
        self.pages
            .get_mut(&ppn)
            .expect("indexed pages are tracked")
            .refs += 1;
        self.touch(fp);
        self.stats.dedup_hits += 1;
        Some(ppn)
    }

    /// Registers a freshly programmed copy of a value with one
    /// reference, making it the index's target for that fingerprint.
    ///
    /// Registering a fingerprint that already has an indexed copy is
    /// allowed — it repoints the index at the new page (the old copy
    /// keeps its references and dies when they drain). This is what
    /// happens on a real bounded-index device after an index miss on
    /// duplicated content.
    ///
    /// # Errors
    ///
    /// Returns an error if the physical page is already registered.
    pub fn register(&mut self, fp: Fingerprint, ppn: Ppn) -> Result<(), DedupError> {
        if self.pages.contains_key(&ppn) {
            return Err(DedupError::PpnInUse { ppn });
        }
        self.pages.insert(ppn, PageEntry { fp, refs: 1 });
        self.index_insert(fp, ppn);
        self.stats.registrations += 1;
        Ok(())
    }

    /// Releases one logical reference to a physical page (an overwrite
    /// of one of the logical pages sharing it). When the count reaches
    /// zero the page is forgotten: it is garbage now.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is not tracked.
    pub fn release(&mut self, ppn: Ppn) -> Result<RefRelease, DedupError> {
        let entry = self
            .pages
            .get_mut(&ppn)
            .ok_or(DedupError::UnknownPpn { ppn })?;
        entry.refs -= 1;
        let remaining = entry.refs;
        let fp = entry.fp;
        if remaining == 0 {
            self.pages.remove(&ppn);
            self.index_remove_if(fp, ppn);
            self.stats.deaths += 1;
        }
        Ok(RefRelease {
            fingerprint: fp,
            remaining,
        })
    }

    /// Rebinds a live page to a new physical location (GC relocated
    /// it), updating the index if it pointed at the old location.
    ///
    /// # Errors
    ///
    /// Returns an error if `old` is untracked or `new` is already in
    /// use.
    pub fn relocate(&mut self, old: Ppn, new: Ppn) -> Result<(), DedupError> {
        if self.pages.contains_key(&new) {
            return Err(DedupError::PpnInUse { ppn: new });
        }
        let entry = self
            .pages
            .remove(&old)
            .ok_or(DedupError::UnknownPpn { ppn: old })?;
        if let Some(idx) = self.index.get_mut(&entry.fp) {
            if idx.ppn == old {
                idx.ppn = new;
            }
        }
        self.pages.insert(new, entry);
        Ok(())
    }

    /// Reference count of a physical page, if tracked.
    pub fn refs(&self, ppn: Ppn) -> Option<u32> {
        self.pages.get(&ppn).map(|e| e.refs)
    }

    /// Fingerprint stored in a physical page, if tracked.
    pub fn fingerprint_of(&self, ppn: Ppn) -> Option<Fingerprint> {
        self.pages.get(&ppn).map(|e| e.fp)
    }

    /// Number of live tracked pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Number of fingerprints currently in the bounded index.
    pub fn indexed_len(&self) -> usize {
        self.index.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Usage counters.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::ValueId;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint::of_value(ValueId::new(v))
    }

    #[test]
    fn reference_counts_rise_and_fall() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        assert_eq!(s.reference(fp(1)), Some(Ppn::new(1)));
        assert_eq!(s.reference(fp(1)), Some(Ppn::new(1)));
        assert_eq!(s.refs(Ppn::new(1)), Some(3));
        assert_eq!(s.release(Ppn::new(1)).expect("release").remaining, 2);
        assert_eq!(s.release(Ppn::new(1)).expect("release").remaining, 1);
        let last = s.release(Ppn::new(1)).expect("release");
        assert_eq!(last.remaining, 0);
        assert_eq!(last.fingerprint, fp(1));
        assert!(s.is_empty());
        assert_eq!(s.indexed_len(), 0);
        assert_eq!(s.stats().deaths, 1);
        assert_eq!(s.stats().dedup_hits, 2);
    }

    #[test]
    fn lookup_does_not_take_references() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(1)));
        assert_eq!(s.refs(Ppn::new(1)), Some(1));
        assert_eq!(s.lookup(fp(2)), None);
    }

    #[test]
    fn busy_ppn_rejected() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        assert!(matches!(
            s.register(fp(2), Ppn::new(1)),
            Err(DedupError::PpnInUse { .. })
        ));
    }

    #[test]
    fn release_unknown_rejected() {
        let mut s = DedupStore::new();
        assert!(matches!(
            s.release(Ppn::new(9)),
            Err(DedupError::UnknownPpn { .. })
        ));
    }

    #[test]
    fn relocate_moves_the_live_copy() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.reference(fp(1));
        s.relocate(Ppn::new(1), Ppn::new(5)).expect("relocate");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(5)));
        assert_eq!(s.refs(Ppn::new(5)), Some(2));
        assert_eq!(s.refs(Ppn::new(1)), None);
        assert_eq!(s.fingerprint_of(Ppn::new(5)), Some(fp(1)));
        assert!(matches!(
            s.relocate(Ppn::new(1), Ppn::new(6)),
            Err(DedupError::UnknownPpn { .. })
        ));
    }

    #[test]
    fn relocate_to_busy_page_rejected() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.register(fp(2), Ppn::new(2)).expect("register");
        assert!(matches!(
            s.relocate(Ppn::new(1), Ppn::new(2)),
            Err(DedupError::PpnInUse { .. })
        ));
    }

    #[test]
    fn a_value_can_be_reregistered_after_death() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        assert_eq!(s.release(Ppn::new(1)).expect("release").remaining, 0);
        s.register(fp(1), Ppn::new(1)).expect("re-register");
        assert_eq!(s.refs(Ppn::new(1)), Some(1));
    }

    #[test]
    fn bounded_index_evicts_lru_fingerprints() {
        let mut s = DedupStore::with_index_capacity(2);
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.register(fp(2), Ppn::new(2)).expect("register");
        s.reference(fp(1)); // refresh 1; 2 becomes LRU
        s.register(fp(3), Ppn::new(3)).expect("register"); // evicts fp(2)
        assert_eq!(s.lookup(fp(2)), None, "index entry evicted");
        assert_eq!(s.refs(Ppn::new(2)), Some(1), "references survive eviction");
        assert_eq!(s.indexed_len(), 2);
        assert_eq!(s.stats().index_evictions, 1);
        // Page 2 still releases normally.
        assert_eq!(s.release(Ppn::new(2)).expect("release").remaining, 0);
    }

    #[test]
    fn duplicate_content_can_be_registered_twice_after_eviction() {
        let mut s = DedupStore::with_index_capacity(1);
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.register(fp(2), Ppn::new(2)).expect("register"); // evicts fp(1)
                                                           // fp(1) content arrives again: index miss, a second physical
                                                           // copy is programmed and registered.
        assert_eq!(s.reference(fp(1)), None);
        s.register(fp(1), Ppn::new(3)).expect("second copy");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(3)));
        // Both copies carry independent references.
        assert_eq!(s.refs(Ppn::new(1)), Some(1));
        assert_eq!(s.refs(Ppn::new(3)), Some(1));
        // Releasing the *indexed* copy clears its index entry...
        s.release(Ppn::new(3)).expect("release");
        assert_eq!(s.lookup(fp(1)), None);
        // ...while releasing a non-indexed copy leaves the index alone.
        s.register(fp(1), Ppn::new(4)).expect("third copy");
        s.release(Ppn::new(1)).expect("release old copy");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(4)));
    }

    #[test]
    fn reregistering_a_fingerprint_repoints_the_index() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.register(fp(1), Ppn::new(2)).expect("repoint");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(2)));
        assert_eq!(s.len(), 2, "both physical copies tracked");
    }

    #[test]
    fn relocate_of_non_indexed_copy_keeps_index() {
        let mut s = DedupStore::new();
        s.register(fp(1), Ppn::new(1)).expect("register");
        s.register(fp(1), Ppn::new(2)).expect("repoint");
        s.relocate(Ppn::new(1), Ppn::new(9)).expect("relocate old");
        assert_eq!(s.lookup(fp(1)), Some(Ppn::new(2)));
        assert_eq!(s.refs(Ppn::new(9)), Some(1));
    }

    #[test]
    fn stats_track_misses() {
        let mut s = DedupStore::new();
        assert_eq!(s.reference(fp(3)), None);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = DedupStore::with_index_capacity(0);
    }
}
