//! Per-write simulator cost on the full FTL stack: how much host-side
//! work a write costs under each system (pure simulator throughput,
//! not simulated latency).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use zssd_core::SystemKind;
use zssd_ftl::{Ssd, SsdConfig};
use zssd_types::{Lpn, SimTime, ValueId};

fn drive(system: SystemKind) -> Ssd {
    Ssd::new(
        SsdConfig::for_footprint(20_000)
            .without_precondition()
            .with_system(system),
    )
    .expect("valid drive")
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl_write_path");
    group.sample_size(20);
    for system in [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries: 10_000 },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries: 10_000 },
    ] {
        group.bench_function(format!("10k_writes/{system}"), |b| {
            b.iter_batched_ref(
                || drive(system),
                |ssd| {
                    for i in 0..10_000u64 {
                        let lpn = Lpn::new((i * 13) % 20_000);
                        let value = ValueId::new(i % 700); // heavy reuse
                        ssd.write(lpn, value, SimTime::ZERO).expect("write");
                    }
                    black_box(ssd.stats().host_writes)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep `cargo bench --workspace` to a few minutes: fewer
    // samples and shorter windows than criterion's defaults.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_write_path
}
criterion_main!(benches);
