//! Synthetic trace generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zssd_trace::{SyntheticTrace, WorkloadProfile};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    group.sample_size(10);
    for profile in [
        WorkloadProfile::mail().scaled(0.02),
        WorkloadProfile::trans().scaled(0.02),
    ] {
        let name = format!("{}_{}req", profile.name, profile.total_requests());
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(SyntheticTrace::generate(&profile, seed).records().len())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep `cargo bench --workspace` to a few minutes: fewer
    // samples and shorter windows than criterion's defaults.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generation
}
criterion_main!(benches);
