//! Small full-system runs for each evaluated system: whole-stack
//! simulator throughput (trace replay + FTL + GC + pool + dedup).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zssd_core::SystemKind;
use zssd_ftl::{Ssd, SsdConfig};
use zssd_trace::{SyntheticTrace, WorkloadProfile};

fn bench_end_to_end(c: &mut Criterion) {
    let profile = WorkloadProfile::mail().scaled(0.005);
    let trace = SyntheticTrace::generate(&profile, 7);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for system in [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries: 2_000 },
        SystemKind::LruDvp { entries: 2_000 },
        SystemKind::Ideal,
        SystemKind::LxSsd { entries: 2_000 },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries: 2_000 },
    ] {
        group.bench_function(format!("mail_15k/{system}"), |b| {
            b.iter(|| {
                let config = SsdConfig::for_footprint(profile.lpn_space).with_system(system);
                let report = Ssd::new(config)
                    .expect("valid drive")
                    .run_trace(trace.records())
                    .expect("run succeeds");
                black_box(report.flash_programs)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep `cargo bench --workspace` to a few minutes: fewer
    // samples and shorter windows than criterion's defaults.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_end_to_end
}
criterion_main!(benches);
