//! Microbenchmarks of the CAFTL-style dedup index.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zssd_dedup::DedupStore;
use zssd_types::{Fingerprint, Ppn, ValueId};

fn filled_store(values: u64) -> DedupStore {
    let mut store = DedupStore::new();
    for i in 0..values {
        store
            .register(Fingerprint::of_value(ValueId::new(i)), Ppn::new(i))
            .expect("fresh registration");
    }
    store
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup_store");
    group.bench_function("lookup_hit_1m", |b| {
        let store = filled_store(1_000_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1_000_000;
            black_box(store.lookup(Fingerprint::of_value(ValueId::new(i))))
        });
    });
    group.bench_function("lookup_miss_1m", |b| {
        let store = filled_store(1_000_000);
        let fp = Fingerprint::of_value(ValueId::new(u64::MAX));
        b.iter(|| black_box(store.lookup(black_box(fp))));
    });
    group.bench_function("reference_release_cycle_1m", |b| {
        let mut store = filled_store(1_000_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1_000_000;
            let ppn = store
                .reference(Fingerprint::of_value(ValueId::new(i)))
                .expect("live value");
            store.release(ppn).expect("tracked page");
            black_box(ppn)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep `cargo bench --workspace` to a few minutes: fewer
    // samples and shorter windows than criterion's defaults.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ops
}
criterion_main!(benches);
