//! Microbenchmarks of the MQ dead-value pool: the per-write costs the
//! controller pays (lookup, death insertion, promotion churn).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use zssd_core::{DeadValuePool, MqConfig, MqDeadValuePool};
use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, ValueId, WriteClock};

fn filled_pool(entries: usize) -> MqDeadValuePool {
    let mut pool = MqDeadValuePool::new(MqConfig::paper_default().with_capacity(entries));
    for i in 0..entries as u64 {
        pool.insert_dead(
            Fingerprint::of_value(ValueId::new(i)),
            Ppn::new(i),
            Lpn::new(i),
            PopularityDegree::new((i % 16) as u8),
            WriteClock::from_count(i + 1),
        );
    }
    pool
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("mq_pool/insert_dead_into_full_200k", |b| {
        let pool = filled_pool(200_000);
        let mut i = 1_000_000u64;
        b.iter_batched_ref(
            || pool.clone(),
            |pool| {
                i += 1;
                pool.insert_dead(
                    Fingerprint::of_value(ValueId::new(i)),
                    Ppn::new(i),
                    Lpn::new(i),
                    PopularityDegree::new(3),
                    WriteClock::from_count(i),
                );
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq_pool");
    group.bench_function("lookup_miss_200k", |b| {
        let mut pool = filled_pool(200_000);
        let fp = Fingerprint::of_value(ValueId::new(u64::MAX));
        b.iter(|| black_box(pool.take_match(black_box(fp), WriteClock::from_count(1))));
    });
    group.bench_function("hit_then_reinsert_200k", |b| {
        let mut pool = filled_pool(200_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 200_000;
            let fp = Fingerprint::of_value(ValueId::new(i));
            let now = WriteClock::from_count(1_000_000 + i);
            if let Some(ppn) = pool.take_match(fp, now) {
                pool.insert_dead(fp, ppn, Lpn::new(i), PopularityDegree::new(3), now);
            }
            black_box(pool.len())
        });
    });
    group.finish();
}

fn bench_weight(c: &mut Criterion) {
    c.bench_function("mq_pool/garbage_weight_200k", |b| {
        let pool = filled_pool(200_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 400_000;
            black_box(pool.garbage_weight(Ppn::new(i)))
        });
    });
}

criterion_group! {
    name = benches;
    // Keep `cargo bench --workspace` to a few minutes: fewer
    // samples and shorter windows than criterion's defaults.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert, bench_lookup, bench_weight
}
criterion_main!(benches);
