//! The parallel grid executor: serial vs threaded replay of a small
//! (workload × system) matrix over shared traces. On a multicore host
//! the `threads/N` rows should approach `serial / N`; on a single
//! hardware thread they only measure the executor's overhead (see
//! `BENCH_grid.json` for the measured `all_experiments` matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zssd_bench::{config_for, grid_threads, run_grid_with_threads, shared_traces, GridCell};
use zssd_core::SystemKind;
use zssd_trace::WorkloadProfile;

/// A 2×3 grid at a fixed tiny scale — small enough for criterion,
/// large enough that a cell dominates per-task bookkeeping.
fn small_grid() -> Vec<GridCell> {
    let profiles = [
        WorkloadProfile::mail().scaled(0.002),
        WorkloadProfile::trans().scaled(0.002),
    ];
    let traces = shared_traces(&profiles);
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries: 1_000 },
        SystemKind::Dedup,
    ];
    profiles
        .iter()
        .zip(&traces)
        .flat_map(|(profile, records)| {
            systems.iter().map(|&system| {
                GridCell::new(
                    profile.name.clone(),
                    system.label(),
                    config_for(profile, system),
                    records.clone(),
                )
            })
        })
        .collect()
}

fn bench_grid_runner(c: &mut Criterion) {
    let cells = small_grid();
    let mut group = c.benchmark_group("grid_runner");
    group.sample_size(10);
    group.bench_function(format!("serial/{}_cells", cells.len()), |b| {
        b.iter(|| {
            let reports = run_grid_with_threads(cells.clone(), 1).expect("grid runs");
            black_box(reports.len())
        });
    });
    let threads = grid_threads();
    group.bench_function(format!("threads_{threads}/{}_cells", cells.len()), |b| {
        b.iter(|| {
            let reports = run_grid_with_threads(cells.clone(), threads).expect("grid runs");
            black_box(reports.len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_grid_runner
}
criterion_main!(benches);
