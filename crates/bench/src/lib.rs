//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (see `DESIGN.md` §5 for the index); this library holds what they
//! share: the experiment workload set, full-system runners, and plain
//! text-table rendering.
//!
//! Scale: experiments default to the paper-sized traces (150 K
//! requests/day × 3 days per workload). Set `ZSSD_SCALE` (e.g. `0.1`)
//! to shrink every trace and footprint proportionally for quick runs,
//! and `ZSSD_SEED` to change the generator seed.
//!
//! Parallelism: the (workload × system) matrix runs through the
//! [`run_grid`] executor, which fans cells across worker threads
//! (`ZSSD_THREADS` overrides the count) while keeping output order —
//! and every report — identical to a serial run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;

use std::fmt::Display;

use zssd_core::SystemKind;
use zssd_ftl::{RunReport, SsdConfig, SsdError};
use zssd_metrics::Json;
use zssd_trace::{ArrivalProcess, SyntheticTrace, TraceRecord, WorkloadProfile};
use zssd_types::SimDuration;

pub use grid::{
    grid_for, grid_threads, run_grid, run_grid_with_threads, run_jobs, run_jobs_with_threads,
    shared_traces, GridCell,
};

/// The paper's headline pool size (entries).
pub const PAPER_POOL_ENTRIES: usize = 200_000;

/// The timeline bucket width every experiment export uses (250 ms of
/// simulated time), so GC-episode series from different binaries line
/// up bucket-for-bucket.
pub const METRICS_WINDOW: SimDuration = SimDuration::from_millis(250);

/// Reads the experiment scale factor from `ZSSD_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("ZSSD_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

/// Reads the trace seed from `ZSSD_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("ZSSD_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42)
}

/// The arrival-process spec from `ZSSD_ARRIVAL` (default `constant`).
/// Accepted specs: `constant` (alias `uniform`/`fixed`), `poisson`,
/// `bursty`, `bursty:<mean-burst-len>` — see
/// [`ArrivalProcess::from_spec`].
pub fn arrival_spec() -> String {
    std::env::var("ZSSD_ARRIVAL").unwrap_or_else(|_| "constant".to_owned())
}

/// Resolves [`arrival_spec`] against a mean inter-arrival gap and the
/// configured seed.
///
/// # Panics
///
/// Panics with a descriptive message when `ZSSD_ARRIVAL` holds an
/// unknown spec — experiments should fail loudly, not silently fall
/// back to uniform arrivals.
pub fn arrival_for(mean: zssd_types::SimDuration) -> ArrivalProcess {
    let spec = arrival_spec();
    ArrivalProcess::from_spec(&spec, mean, seed()).unwrap_or_else(|e| panic!("ZSSD_ARRIVAL: {e}"))
}

/// Pool entry capacity scaled with the trace scale, so "200 K entries"
/// keeps its meaning relative to trace footprint when `ZSSD_SCALE`
/// shrinks the run. At scale 1.0 this is the identity.
pub fn scaled_entries(entries: usize) -> usize {
    ((entries as f64) * scale()).round().max(16.0) as usize
}

/// The six paper workloads at the configured scale.
pub fn experiment_profiles() -> Vec<WorkloadProfile> {
    WorkloadProfile::paper_set()
        .into_iter()
        .map(|p| p.scaled(scale()))
        .collect()
}

/// The three FIU day-series workloads (Figs 1, 5, 6) at the configured
/// scale.
pub fn fiu_profiles() -> Vec<WorkloadProfile> {
    WorkloadProfile::fiu_set()
        .into_iter()
        .map(|p| p.scaled(scale()))
        .collect()
}

/// Generates the trace for a profile with the configured seed.
pub fn trace_for(profile: &WorkloadProfile) -> SyntheticTrace {
    SyntheticTrace::generate(profile, seed())
}

/// Builds the drive configuration for a profile/system pair. The
/// dedup fingerprint index gets the same RAM budget as the paper's
/// pool (200 K entries), scaled with the traces. The arrival process
/// comes from `ZSSD_ARRIVAL`, keeping the config's default mean gap.
pub fn config_for(profile: &WorkloadProfile, system: SystemKind) -> SsdConfig {
    let config = SsdConfig::for_footprint(profile.lpn_space)
        .with_system(system)
        .with_dedup_index_entries(scaled_entries(PAPER_POOL_ENTRIES));
    let arrival = arrival_for(config.arrival.mean_interval());
    config.with_arrival(arrival)
}

/// Runs one full-system simulation of `records` under `system`, sized
/// for `profile`.
///
/// Note: superseded by [`run_grid`], which runs many such cells in
/// parallel and shares each trace buffer instead of copying it; this
/// single-cell wrapper is kept for API compatibility and convenience.
///
/// # Errors
///
/// Propagates simulator errors (configuration, out-of-space).
pub fn run_system(
    profile: &WorkloadProfile,
    records: &[TraceRecord],
    system: SystemKind,
) -> Result<RunReport, SsdError> {
    GridCell::new(
        profile.name.clone(),
        system.to_string(),
        config_for(profile, system),
        records.into(),
    )
    .run()
}

/// Runs the same records under several systems, returning reports in
/// system order.
///
/// Note: superseded by [`run_grid`] — this wrapper builds the
/// single-row grid for you (sharing one copy of `records` across the
/// cells) and fans it across [`grid_threads`] workers. Callers
/// running more than one workload should build the full grid with
/// [`grid_for`] instead, so all cells parallelize together.
///
/// # Errors
///
/// Propagates the error of the earliest failing system.
pub fn compare_systems(
    profile: &WorkloadProfile,
    records: &[TraceRecord],
    systems: &[SystemKind],
) -> Result<Vec<RunReport>, SsdError> {
    let shared: std::sync::Arc<[TraceRecord]> = records.into();
    run_grid(
        systems
            .iter()
            .map(|&system| {
                GridCell::new(
                    profile.name.clone(),
                    system.to_string(),
                    config_for(profile, system),
                    shared.clone(),
                )
            })
            .collect(),
    )
}

/// A minimal aligned text table for experiment output.
///
/// # Examples
///
/// ```
/// use zssd_bench::TextTable;
/// let mut t = TextTable::new(vec!["workload", "reduction"]);
/// t.row(vec!["mail".into(), "70.0%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("mail"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: formats and appends a row of displayable cells.
    pub fn row_display<D: Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

impl TextTable {
    /// Renders the table as CSV (header row + data rows, commas and
    /// quotes escaped by double-quoting).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as `<name>.csv` into the directory named by the
/// `ZSSD_CSV` environment variable, if set. Silent no-op otherwise;
/// I/O errors are reported to stderr but never fail an experiment.
pub fn maybe_write_csv(name: &str, table: &TextTable) {
    let Ok(dir) = std::env::var("ZSSD_CSV") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, table.to_csv()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Serializes a whole experiment grid as one deterministic JSON
/// document: `{"schema":"zssd-grid-v1","window_ns":…,"cells":[…]}`
/// with one object per cell — its `workload`/`system` labels plus the
/// full [`RunReport::to_json`] report — in input (row-major) order.
/// Because reports are input-ordered regardless of `ZSSD_THREADS`, the
/// output is byte-identical for serial and parallel runs.
///
/// # Panics
///
/// Panics if `cells` and `reports` have different lengths (a grid's
/// reports always pair one-to-one with its cells).
pub fn grid_metrics_json(cells: &[GridCell], reports: &[RunReport]) -> String {
    assert_eq!(
        cells.len(),
        reports.len(),
        "one report per grid cell required"
    );
    let cell_objects = cells
        .iter()
        .zip(reports)
        .map(|(cell, report)| {
            Json::Obj(vec![
                ("workload".into(), Json::Str(cell.row.clone())),
                ("system".into(), Json::Str(cell.col.clone())),
                ("report".into(), report.to_json(METRICS_WINDOW)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("zssd-grid-v1".into())),
        ("window_ns".into(), Json::U64(METRICS_WINDOW.as_nanos())),
        ("cells".into(), Json::Arr(cell_objects)),
    ]);
    format!("{doc}\n")
}

/// Writes an export as `<name>.<ext>` into the directory named by the
/// `ZSSD_METRICS` environment variable, if set — the metrics twin of
/// [`maybe_write_csv`]. Silent no-op otherwise; I/O errors are
/// reported to stderr but never fail an experiment.
pub fn maybe_write_metrics(name: &str, ext: &str, contents: &str) {
    let Ok(dir) = std::env::var("ZSSD_METRICS") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.{ext}"));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, contents)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x)
}

/// Formats a fraction as a percentage with one decimal.
pub fn frac_pct(x: f64) -> String {
    pct(x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "quantity"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row_display(vec![12, 345]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes_delimiters_and_quotes() {
        let mut t = TextTable::new(vec!["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.row(vec!["plain".into(), "ok".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "\"a,b\",\"say \"\"hi\"\"\"");
        assert_eq!(lines[2], "plain,ok");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(frac_pct(0.5), "50.0%");
    }

    #[test]
    fn env_defaults() {
        // Do not set env vars here (tests run in parallel); just check
        // the defaults are sane when unset.
        assert!(scale() > 0.0);
        let _ = seed();
        assert!(scaled_entries(100) >= 16);
    }
}
