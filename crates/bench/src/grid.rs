//! The parallel experiment grid executor.
//!
//! Every evaluation figure runs a (workload × system) matrix of
//! independent full-system simulations. Cells share nothing mutable —
//! each builds its own drive and replays a read-only trace — so the
//! grid fans out across threads with a simple work-queue:
//!
//! * each workload's trace is generated **once** and shared read-only
//!   (`Arc<[TraceRecord]>`) by every cell in its row,
//! * worker threads claim cells from an atomic counter, so any number
//!   of threads drains the queue without partitioning skew,
//! * results land in per-cell slots, so output order equals input
//!   order no matter which thread finished first — a parallel run is
//!   byte-identical to a serial one.
//!
//! Thread count comes from [`grid_threads`]: the `ZSSD_THREADS`
//! environment variable if set, otherwise the machine's available
//! parallelism. `ZSSD_THREADS=1` forces the serial order, which is
//! also what [`run_grid_with_threads`] uses as the speedup baseline
//! in `all_experiments --timing`.
//!
//! # Examples
//!
//! ```
//! use zssd_bench::{config_for, GridCell, run_grid};
//! use zssd_core::SystemKind;
//! use zssd_trace::{SyntheticTrace, WorkloadProfile};
//!
//! let profile = WorkloadProfile::paper_set().remove(0).scaled(0.001);
//! let records: std::sync::Arc<[_]> =
//!     SyntheticTrace::generate(&profile, 42).into_records().into();
//! let cells: Vec<GridCell> = [SystemKind::Baseline, SystemKind::Ideal]
//!     .iter()
//!     .map(|&system| GridCell::new(
//!         profile.name.clone(),
//!         system.to_string(),
//!         config_for(&profile, system),
//!         records.clone(),
//!     ))
//!     .collect();
//! let reports = run_grid(cells)?;
//! assert_eq!(reports.len(), 2);
//! # Ok::<(), zssd_ftl::SsdError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use zssd_core::SystemKind;
use zssd_ftl::{RunReport, Ssd, SsdConfig, SsdError};
use zssd_trace::{SyntheticTrace, TraceRecord, WorkloadProfile};

use crate::{config_for, seed};

/// One independent (workload, system) simulation of an experiment
/// grid: a drive configuration plus the shared read-only trace it
/// replays, labeled with its row and column for reporting.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Row label — usually the workload name.
    pub row: String,
    /// Column label — usually the system name.
    pub col: String,
    /// The drive configuration this cell simulates.
    pub config: SsdConfig,
    /// The trace this cell replays; one `Arc` per workload, shared by
    /// every system column in the row.
    pub records: Arc<[TraceRecord]>,
}

impl GridCell {
    /// Builds a cell from its labels, configuration, and shared trace.
    pub fn new(
        row: impl Into<String>,
        col: impl Into<String>,
        config: SsdConfig,
        records: Arc<[TraceRecord]>,
    ) -> Self {
        GridCell {
            row: row.into(),
            col: col.into(),
            config,
            records,
        }
    }

    /// Runs this cell's simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (configuration, out-of-space).
    pub fn run(&self) -> Result<RunReport, SsdError> {
        Ssd::new(self.config.clone())?.run_trace(&self.records)
    }
}

/// The number of worker threads grid runs use: `ZSSD_THREADS` if set
/// to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn grid_threads() -> usize {
    std::env::var("ZSSD_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `n` independent jobs on `threads` workers and returns their
/// results in job order. Jobs are claimed from an atomic counter, so
/// threads that draw short jobs automatically pick up more.
fn parallel_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return (0..n).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// Runs `n` independent jobs across [`grid_threads`] worker threads
/// and returns the results **in job order** — the general-purpose
/// fan-out behind [`run_grid`], exposed for other embarrassingly
/// parallel work (the `zssd fuzz` differential fuzzer spreads its
/// seeds through this). Jobs must be pure functions of their index for
/// the serial/parallel bit-identity guarantee to mean anything.
pub fn run_jobs<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_indexed(n, grid_threads(), job)
}

/// [`run_jobs`] with an explicit worker count (1 = serial), for tests
/// that pin the thread count.
pub fn run_jobs_with_threads<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_indexed(n, threads, job)
}

/// Runs every cell of a grid, fanning out across [`grid_threads`]
/// worker threads, and returns the reports **in input order**.
///
/// Cells are independent simulations; the executor guarantees the
/// result vector is identical to running the cells serially (a
/// `ZSSD_THREADS=1` run produces byte-identical reports).
///
/// # Errors
///
/// If any cells fail, the error of the earliest failing cell (in input
/// order) is returned.
pub fn run_grid(cells: Vec<GridCell>) -> Result<Vec<RunReport>, SsdError> {
    run_grid_with_threads(cells, grid_threads())
}

/// [`run_grid`] with an explicit worker count (1 = serial). Used for
/// the serial-vs-parallel timing comparison and by tests that pin the
/// thread count.
///
/// # Errors
///
/// If any cells fail, the error of the earliest failing cell (in input
/// order) is returned.
pub fn run_grid_with_threads(
    cells: Vec<GridCell>,
    threads: usize,
) -> Result<Vec<RunReport>, SsdError> {
    parallel_indexed(cells.len(), threads, |i| cells[i].run())
        .into_iter()
        .collect()
}

/// Generates each profile's trace once — in parallel across
/// [`grid_threads`] workers — and returns the records as shareable
/// `Arc` buffers, in profile order. Each trace is seeded with the
/// configured [`seed`], so this matches serial [`crate::trace_for`]
/// calls exactly.
pub fn shared_traces(profiles: &[WorkloadProfile]) -> Vec<Arc<[TraceRecord]>> {
    let seed = seed();
    parallel_indexed(profiles.len(), grid_threads(), |i| {
        Arc::from(SyntheticTrace::generate(&profiles[i], seed).into_records())
    })
}

/// Builds the standard (profile × system) grid: one shared trace per
/// profile, one cell per system column, row-major order (all systems
/// of the first profile, then the second, …). Configurations come
/// from [`config_for`].
pub fn grid_for(profiles: &[WorkloadProfile], systems: &[SystemKind]) -> Vec<GridCell> {
    let traces = shared_traces(profiles);
    profiles
        .iter()
        .zip(&traces)
        .flat_map(|(profile, records)| {
            systems.iter().map(|&system| {
                GridCell::new(
                    profile.name.clone(),
                    system.to_string(),
                    config_for(profile, system),
                    records.clone(),
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> WorkloadProfile {
        WorkloadProfile::paper_set().remove(0).scaled(0.002)
    }

    #[test]
    fn parallel_indexed_preserves_order() {
        let results = parallel_indexed(100, 8, |i| i * 2);
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Serial path.
        let results = parallel_indexed(5, 1, |i| i);
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
        // Empty grid.
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn parallel_and_serial_grids_agree() {
        let profile = tiny_profile();
        let systems = [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 64 },
            SystemKind::Ideal,
        ];
        let cells = grid_for(&[profile], &systems);
        assert_eq!(cells.len(), 3);
        let serial = run_grid_with_threads(cells.clone(), 1).expect("serial run");
        let parallel = run_grid_with_threads(cells, 4).expect("parallel run");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_rows_share_one_trace() {
        let profile = tiny_profile();
        let cells = grid_for(&[profile], &[SystemKind::Baseline, SystemKind::Ideal]);
        assert!(Arc::ptr_eq(&cells[0].records, &cells[1].records));
        assert_eq!(cells[0].row, cells[1].row);
        assert_ne!(cells[0].col, cells[1].col);
    }

    #[test]
    fn shared_traces_match_serial_generation() {
        let profiles = vec![tiny_profile(), tiny_profile().scaled(2.0)];
        let shared = shared_traces(&profiles);
        for (profile, records) in profiles.iter().zip(&shared) {
            let serial = crate::trace_for(profile);
            assert_eq!(&records[..], serial.records());
        }
    }

    #[test]
    fn grid_metrics_json_labels_cells_and_is_thread_invariant() {
        let profile = tiny_profile();
        let mut cells = grid_for(&[profile], &[SystemKind::Baseline, SystemKind::Ideal]);
        for cell in &mut cells {
            cell.config.trace_events = true;
        }
        let serial = run_grid_with_threads(cells.clone(), 1).expect("serial run");
        let parallel = run_grid_with_threads(cells.clone(), 4).expect("parallel run");
        let text = crate::grid_metrics_json(&cells, &serial);
        assert_eq!(
            text,
            crate::grid_metrics_json(&cells, &parallel),
            "export is byte-identical across thread counts"
        );
        let doc = zssd_metrics::Json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(zssd_metrics::Json::as_str),
            Some("zssd-grid-v1")
        );
        let cells_json = doc
            .get("cells")
            .and_then(zssd_metrics::Json::as_arr)
            .expect("cells array");
        assert_eq!(cells_json.len(), 2);
        assert_eq!(
            cells_json[1]
                .get("system")
                .and_then(zssd_metrics::Json::as_str),
            Some("Ideal")
        );
        let events = cells_json[0]
            .get("report")
            .and_then(|r| r.get("events"))
            .and_then(zssd_metrics::Json::as_arr)
            .expect("events array");
        assert!(!events.is_empty(), "traced run exports its events");
    }

    #[test]
    fn grid_errors_surface_in_input_order() {
        let profile = tiny_profile();
        let records: Arc<[TraceRecord]> = crate::trace_for(&profile).into_records().into();
        let mut bad_config = config_for(&profile, SystemKind::Baseline);
        bad_config.logical_pages = 0; // fails validation
        let cells = vec![
            GridCell::new(
                "w",
                "ok",
                config_for(&profile, SystemKind::Baseline),
                records.clone(),
            ),
            GridCell::new("w", "bad", bad_config, records),
        ];
        assert!(run_grid_with_threads(cells, 2).is_err());
    }
}
