//! **Figure 9** — reduction in the number of writes (NAND programs),
//! normalized to the Baseline system, for MQ dead-value pools of
//! 100 K / 200 K / 300 K entries plus the Ideal (infinite) pool,
//! across the six workloads.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig09_write_reduction`.
//! Scale down with `ZSSD_SCALE=0.1` for a quick pass (pool sizes scale
//! with the trace so the sweep stays meaningful).

use zssd_bench::{
    experiment_profiles, maybe_write_csv, pct, run_system, scaled_entries, trace_for, TextTable,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 9: % reduction in number of writes vs Baseline\n");
    let sweeps = [100_000usize, 200_000, 300_000];
    let mut table = TextTable::new(vec!["trace", "DVP-100K", "DVP-200K", "DVP-300K", "Ideal"]);
    let mut means = [0.0f64; 4];
    let profiles = experiment_profiles();
    for profile in &profiles {
        let trace = trace_for(profile);
        let records = trace.records();
        let baseline = run_system(profile, records, SystemKind::Baseline)?;
        let mut cells = vec![profile.name.clone()];
        for (i, &entries) in sweeps.iter().enumerate() {
            let report = run_system(
                profile,
                records,
                SystemKind::MqDvp {
                    entries: scaled_entries(entries),
                },
            )?;
            let red = reduction_pct(baseline.flash_programs as f64, report.flash_programs as f64);
            means[i] += red;
            cells.push(pct(red));
        }
        let ideal = run_system(profile, records, SystemKind::Ideal)?;
        let red = reduction_pct(baseline.flash_programs as f64, ideal.flash_programs as f64);
        means[3] += red;
        cells.push(pct(red));
        table.row(cells);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec![
        "MEAN".into(),
        pct(means[0] / n),
        pct(means[1] / n),
        pct(means[2] / n),
        pct(means[3] / n),
    ]);
    maybe_write_csv("fig09_write_reduction", &table);
    println!("{table}");
    println!("paper: mean 29% at 200K entries, up to 70% (mail); gains saturate beyond 200K");
    Ok(())
}
