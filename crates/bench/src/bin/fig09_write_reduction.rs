//! **Figure 9** — reduction in the number of writes (NAND programs),
//! normalized to the Baseline system, for MQ dead-value pools of
//! 100 K / 200 K / 300 K entries plus the Ideal (infinite) pool,
//! across the six workloads.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig09_write_reduction`.
//! Scale down with `ZSSD_SCALE=0.1` for a quick pass (pool sizes scale
//! with the trace so the sweep stays meaningful). The whole sweep runs
//! through the parallel grid executor (`ZSSD_THREADS` to pin).

use zssd_bench::{
    experiment_profiles, grid_for, maybe_write_csv, pct, run_grid, scaled_entries, TextTable,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 9: % reduction in number of writes vs Baseline\n");
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp {
            entries: scaled_entries(100_000),
        },
        SystemKind::MqDvp {
            entries: scaled_entries(200_000),
        },
        SystemKind::MqDvp {
            entries: scaled_entries(300_000),
        },
        SystemKind::Ideal,
    ];
    let mut table = TextTable::new(vec!["trace", "DVP-100K", "DVP-200K", "DVP-300K", "Ideal"]);
    let mut means = [0.0f64; 4];
    let profiles = experiment_profiles();
    let reports = run_grid(grid_for(&profiles, &systems))?;
    for (profile, reports) in profiles.iter().zip(reports.chunks(systems.len())) {
        let baseline = &reports[0];
        let mut cells = vec![profile.name.clone()];
        for (i, report) in reports[1..].iter().enumerate() {
            let red = reduction_pct(baseline.flash_programs as f64, report.flash_programs as f64);
            means[i] += red;
            cells.push(pct(red));
        }
        table.row(cells);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec![
        "MEAN".into(),
        pct(means[0] / n),
        pct(means[1] / n),
        pct(means[2] / n),
        pct(means[3] / n),
    ]);
    maybe_write_csv("fig09_write_reduction", &table);
    println!("{table}");
    println!("paper: mean 29% at 200K entries, up to 70% (mail); gains saturate beyond 200K");
    Ok(())
}
