//! **Figure 6** — average number of LRU-buffer misses per value, per
//! popularity band, for the m2 trace prefix with a 100 K-entry
//! buffer: the motivation for MQ (popular values miss the most under
//! plain LRU).
//!
//! Run with `cargo run -p zssd-bench --release --bin fig06_lru_miss_breakdown`.

use zssd_analysis::PoolReuseSim;
use zssd_bench::{scale, scaled_entries, trace_for, TextTable};
use zssd_core::{LruDeadValuePool, MqConfig, MqDeadValuePool};
use zssd_trace::WorkloadProfile;

fn main() {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let records = trace.through_day(1); // the paper's m2 prefix
    let entries = scaled_entries(100_000);

    let lru = PoolReuseSim::new(LruDeadValuePool::new(entries)).run(records);
    // MQ at the same size, for contrast (the fix Fig 6 motivates).
    let mq = PoolReuseSim::new(MqDeadValuePool::new(
        MqConfig::paper_default().with_capacity(entries),
    ))
    .run(records);

    println!("Figure 6: mean buffer misses per value by popularity band (m2, {entries} entries)\n");
    let mut table = TextTable::new(vec![
        "band (writes)",
        "values",
        "LRU mean misses",
        "MQ mean misses",
    ]);
    let mq_bins = mq.mean_misses_by_popularity();
    for (degree, lru_mean, values) in lru.mean_misses_by_popularity() {
        let mq_mean = mq_bins
            .iter()
            .find(|&&(d, _, _)| d == degree)
            .map_or(0.0, |&(_, m, _)| m);
        table.row(vec![
            format!("{}-{}", 1u64 << degree, (1u64 << (degree + 1)) - 1),
            values.to_string(),
            format!("{lru_mean:.3}"),
            format!("{mq_mean:.3}"),
        ]);
    }
    println!("{table}");
    println!(
        "totals: LRU hits {} misses {} | MQ hits {} misses {}",
        lru.hits, lru.capacity_misses, mq.hits, mq.capacity_misses
    );
    println!("paper: LRU leads to many misses especially for popular values —");
    println!("       motivating popularity-aware (MQ) replacement");
}
