//! **Figure 10** — reduction in erase counts for the 200 K-entry MQ
//! dead-value pool and the Ideal pool, normalized to Baseline.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig10_erase_reduction`.

use zssd_bench::{
    experiment_profiles, grid_for, grid_metrics_json, maybe_write_csv, maybe_write_metrics, pct,
    run_grid, scaled_entries, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 10: % reduction in erase counts vs Baseline\n");
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp {
            entries: scaled_entries(PAPER_POOL_ENTRIES),
        },
        SystemKind::Ideal,
    ];
    let mut table = TextTable::new(vec!["trace", "DVP-200K", "Ideal"]);
    let mut mean = [0.0f64; 2];
    let profiles = experiment_profiles();
    let cells = grid_for(&profiles, &systems);
    let all = run_grid(cells.clone())?;
    maybe_write_metrics(
        "fig10_erase_reduction",
        "json",
        &grid_metrics_json(&cells, &all),
    );
    for (profile, reports) in profiles.iter().zip(all.chunks(systems.len())) {
        let base = reports[0].erases as f64;
        let dvp = reduction_pct(base, reports[1].erases as f64);
        let ideal = reduction_pct(base, reports[2].erases as f64);
        mean[0] += dvp;
        mean[1] += ideal;
        table.row(vec![profile.name.clone(), pct(dvp), pct(ideal)]);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec!["MEAN".into(), pct(mean[0] / n), pct(mean[1] / n)]);
    maybe_write_csv("fig10_erase_reduction", &table);
    println!("{table}");
    println!("paper: mean 35.5% erase reduction, up to 59.2% (mail); trend follows Fig 9");
    Ok(())
}
