//! **Figure 12** — tail (99th percentile) latency improvement of the
//! 200 K-entry dead-value pool vs Baseline.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig12_tail_latency`.

use zssd_bench::{
    arrival_spec, experiment_profiles, grid_for, grid_metrics_json, maybe_write_csv,
    maybe_write_metrics, pct, run_grid, scaled_entries, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::RunReport;
use zssd_metrics::reduction_pct;

/// p99/p50 across all requests — how much of the tail is queueing and
/// GC stalls rather than the typical service time. Bursty and Poisson
/// arrivals widen this gap; uniform arrivals hide it.
fn tail_gap(report: &RunReport) -> String {
    let p50 = report.all_latency.p50.as_nanos() as f64;
    if p50 == 0.0 {
        return "-".into();
    }
    format!("{:.2}x", report.tail_latency().as_nanos() as f64 / p50)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 12: % tail (p99) latency improvement vs Baseline");
    println!(
        "arrivals: {} (set ZSSD_ARRIVAL to poisson or bursty)\n",
        arrival_spec()
    );
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp {
            entries: scaled_entries(PAPER_POOL_ENTRIES),
        },
    ];
    let mut table = TextTable::new(vec![
        "trace",
        "improvement",
        "baseline p99",
        "DVP p99",
        "baseline p50",
        "baseline p99/p50",
        "DVP p99/p50",
    ]);
    let mut mean = 0.0f64;
    let profiles = experiment_profiles();
    let cells = grid_for(&profiles, &systems);
    let all = run_grid(cells.clone())?;
    maybe_write_metrics(
        "fig12_tail_latency",
        "json",
        &grid_metrics_json(&cells, &all),
    );
    for (profile, reports) in profiles.iter().zip(all.chunks(systems.len())) {
        let base = reports[0].tail_latency();
        let dvp = reports[1].tail_latency();
        let improvement = reduction_pct(base.as_nanos() as f64, dvp.as_nanos() as f64);
        mean += improvement;
        table.row(vec![
            profile.name.clone(),
            pct(improvement),
            base.to_string(),
            dvp.to_string(),
            reports[0].all_latency.p50.to_string(),
            tail_gap(&reports[0]),
            tail_gap(&reports[1]),
        ]);
        eprintln!("  [{}] done", profile.name);
    }
    table.row(vec![
        "MEAN".into(),
        pct(mean / profiles.len() as f64),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    maybe_write_csv("fig12_tail_latency", &table);
    println!("{table}");
    println!("paper: 22% mean tail-latency reduction, up to 43.1%; trend mirrors Fig 11");
    Ok(())
}
