//! **Ablation** — the self-sizing MQ pool (the paper's §V future
//! work) against fixed capacities, on a workload whose redundancy
//! changes phase: the adaptive pool should grow in the redundant
//! phase and shrink in the unique phase.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_adaptive`.

use std::sync::Arc;

use zssd_bench::{config_for, run_grid, scale, scaled_entries, GridCell, TextTable};
use zssd_core::SystemKind;
use zssd_trace::{SyntheticTrace, TraceRecord, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: mail-like (redundant). Phase 2: trans-like (unique).
    let mail = WorkloadProfile::mail().scaled(scale() * 0.3);
    let trans = WorkloadProfile::trans().scaled(scale() * 0.3);
    let t1 = SyntheticTrace::generate(&mail, 5);
    let t2 = SyntheticTrace::generate(&trans, 6);
    // Splice: mail records then trans records remapped into the mail
    // footprint.
    let mut records = t1.records().to_vec();
    let base = records.len() as u64;
    records.extend(t2.records().iter().map(|r| {
        let mut r = *r;
        r.seq += base;
        r.lpn = zssd_types::Lpn::new(r.lpn.index() % mail.lpn_space);
        r
    }));
    println!(
        "phase-change workload: {} mail-like + {} trans-like requests\n",
        t1.records().len(),
        t2.records().len()
    );
    let records: Arc<[TraceRecord]> = records.into();

    let min = scaled_entries(50_000);
    let max = scaled_entries(400_000);
    let systems = [
        SystemKind::MqDvp { entries: min },
        SystemKind::MqDvp {
            entries: scaled_entries(200_000),
        },
        SystemKind::MqDvp { entries: max },
        SystemKind::AdaptiveDvp {
            min_entries: min,
            max_entries: max,
        },
    ];
    let cells: Vec<GridCell> = systems
        .iter()
        .map(|&system| {
            GridCell::new(
                "phase-change",
                system.label(),
                config_for(&mail, system),
                records.clone(),
            )
        })
        .collect();
    let reports = run_grid(cells)?;

    let mut table = TextTable::new(vec!["system", "revived", "programs", "mean latency"]);
    for (system, report) in systems.iter().zip(&reports) {
        table.row(vec![
            system.label(),
            report.revived_writes.to_string(),
            report.flash_programs.to_string(),
            report.mean_latency().to_string(),
        ]);
        eprintln!("  [{system}] done");
    }
    println!("{table}");
    println!("the adaptive pool tracks the fixed pool that suits each phase without");
    println!("committing worst-case RAM for the whole run (paper SV future work)");
    Ok(())
}
