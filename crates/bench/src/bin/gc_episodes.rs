//! **Episode analysis** — the consistency story behind Figs 11/12:
//! GC "imposes frequent short episodes of high latencies"; recycling
//! garbage pages removes many of them. Prints per-window worst
//! latencies for Baseline vs DVP on the mail workload, plus the
//! fraction of windows containing an episode.
//!
//! Run with `cargo run -p zssd-bench --release --bin gc_episodes`.

use zssd_bench::{
    config_for, frac_pct, maybe_write_metrics, scale, scaled_entries, trace_for, TextTable,
    METRICS_WINDOW, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::Ssd;
use zssd_metrics::{windows_to_csv, windows_to_json};
use zssd_trace::WorkloadProfile;
use zssd_types::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let window = METRICS_WINDOW;
    let threshold = SimDuration::from_millis(4); // ~ one erase stall

    let baseline =
        Ssd::new(config_for(&profile, SystemKind::Baseline))?.run_trace(trace.records())?;
    eprintln!("  [baseline] done");
    let dvp = Ssd::new(config_for(
        &profile,
        SystemKind::MqDvp {
            entries: scaled_entries(PAPER_POOL_ENTRIES),
        },
    ))?
    .run_trace(trace.records())?;
    eprintln!("  [dvp] done");

    println!("GC latency episodes (mail): windows of {window}, episode = max > {threshold}\n");
    let base_windows = baseline.timeline.windows(window);
    let dvp_windows = dvp.timeline.windows(window);
    maybe_write_metrics(
        "gc_episodes_baseline",
        "json",
        &format!("{}\n", windows_to_json(window, &base_windows)),
    );
    maybe_write_metrics(
        "gc_episodes_dvp",
        "json",
        &format!("{}\n", windows_to_json(window, &dvp_windows)),
    );
    maybe_write_metrics(
        "gc_episodes_baseline",
        "csv",
        &windows_to_csv(&base_windows),
    );
    maybe_write_metrics("gc_episodes_dvp", "csv", &windows_to_csv(&dvp_windows));
    let mut table = TextTable::new(vec!["window", "baseline max", "DVP max"]);
    // Print a readable subsample: every Nth window.
    let step = (base_windows.len() / 24).max(1);
    for (b, d) in base_windows.iter().zip(&dvp_windows).step_by(step) {
        table.row(vec![
            b.start.to_string(),
            b.max.to_string(),
            d.max.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "episode fraction: baseline {}  DVP {}",
        frac_pct(baseline.timeline.episode_fraction(window, threshold)),
        frac_pct(dvp.timeline.episode_fraction(window, threshold)),
    );
    println!("the pool removes programs and erases, so fewer windows contain a GC stall");
    Ok(())
}
