//! **Figure 1** — probability of reusing garbage pages to service
//! incoming writes, assuming an *infinite* buffer, per trace day of
//! the FIU workloads (mail, home, web), with and without
//! deduplication.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig01_reuse_probability`.

use zssd_analysis::infinite_reuse;
use zssd_bench::{fiu_profiles, frac_pct, maybe_write_csv, trace_for, TextTable};

fn main() {
    println!("Figure 1: P(service an incoming write from garbage pages), infinite buffer\n");
    let mut table = TextTable::new(vec![
        "day",
        "writes",
        "reuse",
        "reuse after dedup",
        "dedup removed",
    ]);
    for profile in fiu_profiles() {
        let trace = trace_for(&profile);
        for (day, label) in trace.day_labels().into_iter().enumerate() {
            // The paper's per-day points accumulate history: day d's
            // probability reflects garbage created since the start.
            let records = trace.through_day(day as u32);
            let plain = infinite_reuse(records, false);
            let dedup = infinite_reuse(records, true);
            table.row(vec![
                label,
                plain.writes.to_string(),
                frac_pct(plain.reuse_fraction()),
                frac_pct(dedup.reuse_fraction()),
                frac_pct(dedup.dedup_fraction()),
            ]);
        }
    }
    maybe_write_csv("fig01_reuse_probability", &table);
    println!("{table}");
    println!("paper: reuse up to 86% (mail); the opportunity shrinks but persists after dedup");
}
