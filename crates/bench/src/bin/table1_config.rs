//! **Table I** — main characteristics of the modeled SSD.
//!
//! Run with `cargo run -p zssd-bench --release --bin table1_config`.

use zssd_ftl::SsdConfig;

fn main() {
    let paper = SsdConfig::paper_table1();
    let geom = paper.geometry;
    let t = paper.timing;
    println!("Table I: main characteristics of the modeled SSD\n");
    println!("paper configuration (SsdConfig::paper_table1):");
    println!(
        "  dimension            : {}x{} (channels x chips per channel)",
        geom.channels(),
        geom.chips_per_channel()
    );
    println!(
        "  capacity             : {} GiB ({} pages)",
        geom.total_pages() * 4096 / (1 << 30),
        geom.total_pages()
    );
    println!(
        "  over-provisioning    : {:.0}%",
        paper.over_provisioning() * 100.0
    );
    println!("  page size            : 4 KB");
    println!("  block size           : {} pages", geom.pages_per_block());
    println!("  planes per die       : {}", geom.planes_per_die());
    println!("  dies per chip        : {}", geom.dies_per_chip());
    println!("  read latency         : {}", t.read);
    println!("  program latency      : {}", t.program);
    println!("  erase latency        : {}", t.erase);
    println!("  channel transfer/4KB : {}", t.transfer);
    println!("  hashing latency      : {}", t.hash);

    let scaled = SsdConfig::for_footprint(100_000);
    let g = scaled.geometry;
    println!("\nscaled experiment drive (SsdConfig::for_footprint, e.g. 100K logical pages):");
    println!(
        "  dimension            : {}x{}, {} dies x {} planes, {} blocks/plane x {} pages",
        g.channels(),
        g.chips_per_channel(),
        g.dies_per_chip(),
        g.planes_per_die(),
        g.blocks_per_plane(),
        g.pages_per_block()
    );
    println!(
        "  capacity             : {} pages physical / {} logical (OP {:.1}%)",
        g.total_pages(),
        scaled.logical_pages,
        scaled.over_provisioning() * 100.0
    );
    println!("  same Table I latencies; topology keeps channel/chip queueing effects");
}
