//! **Figure 15** — mean latency improvement vs Baseline for DVP,
//! Dedup, and DVP+Dedup (§VII-A).
//!
//! Run with `cargo run -p zssd-bench --release --bin fig15_dedup_latency`.

use zssd_bench::{
    experiment_profiles, grid_for, maybe_write_csv, pct, run_grid, scaled_entries, TextTable,
    PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 15: % mean latency improvement vs Baseline\n");
    let entries = scaled_entries(PAPER_POOL_ENTRIES);
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries },
    ];
    let mut table = TextTable::new(vec!["trace", "DVP", "Dedup", "DVP+Dedup"]);
    let mut sums = [0.0f64; 3];
    let profiles = experiment_profiles();
    let all = run_grid(grid_for(&profiles, &systems))?;
    for (profile, reports) in profiles.iter().zip(all.chunks(systems.len())) {
        let base = reports[0].mean_latency().as_nanos() as f64;
        let mut cells = vec![profile.name.clone()];
        for (i, report) in reports[1..].iter().enumerate() {
            let improvement = reduction_pct(base, report.mean_latency().as_nanos() as f64);
            sums[i] += improvement;
            cells.push(pct(improvement));
        }
        table.row(cells);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec![
        "MEAN".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
    ]);
    maybe_write_csv("fig15_dedup_latency", &table);
    println!("{table}");
    println!("paper: dedup improves latency by up to 58.5%; stacking the DVP adds");
    println!("       another ~9.8% on average (up to 15%)");
    Ok(())
}
