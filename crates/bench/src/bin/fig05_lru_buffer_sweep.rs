//! **Figure 5** — number of writes remaining when a *plain LRU*
//! dead-value buffer of 100 K–1 M entries services the FIU day
//! traces, against the no-buffer and infinite-buffer extremes.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig05_lru_buffer_sweep`.
//! Buffer sizes scale with `ZSSD_SCALE` like the traces do.

use zssd_analysis::{infinite_reuse, PoolReuseSim};
use zssd_bench::{fiu_profiles, maybe_write_csv, scaled_entries, trace_for, TextTable};
use zssd_core::LruDeadValuePool;

fn main() {
    println!("Figure 5: writes remaining with an LRU dead-value buffer\n");
    let sizes = [100_000usize, 200_000, 500_000, 1_000_000];
    let mut headers = vec!["day".to_owned(), "no buffer".to_owned()];
    headers.extend(sizes.iter().map(|s| format!("LRU {}K", s / 1000)));
    headers.push("infinite".to_owned());
    let mut table = TextTable::new(headers);

    for profile in fiu_profiles() {
        let trace = trace_for(&profile);
        for (day, label) in trace.day_labels().into_iter().enumerate() {
            let records = trace.through_day(day as u32);
            let oracle = infinite_reuse(records, false);
            let mut cells = vec![label, oracle.writes.to_string()];
            for &size in &sizes {
                let summary =
                    PoolReuseSim::new(LruDeadValuePool::new(scaled_entries(size))).run(records);
                cells.push(summary.writes_remaining().to_string());
            }
            cells.push((oracle.writes - oracle.reused).to_string());
            table.row(cells);
        }
        eprintln!("  [{}] done", profile.name);
    }
    maybe_write_csv("fig05_lru_buffer_sweep", &table);
    println!("{table}");
    println!("paper: even 100K entries removes up to 62% of writes, but large traces");
    println!("       (mail) leave a sizeable gap to the infinite buffer under plain LRU");
}
