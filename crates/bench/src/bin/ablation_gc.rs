//! **Ablation** — the §IV-D popularity-aware GC victim selector vs
//! plain greedy (max-invalid) selection, both under the 200 K-entry
//! MQ dead-value pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_gc`.

use zssd_bench::{
    config_for, experiment_profiles, pct, scaled_entries, trace_for, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::Ssd;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation: popularity-aware GC (SIV-D) vs greedy GC, DVP-200K\n");
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    let mut table = TextTable::new(vec![
        "trace",
        "revived (greedy)",
        "revived (pop-aware)",
        "revive gain",
        "erases (greedy)",
        "erases (pop-aware)",
    ]);
    for profile in experiment_profiles() {
        let trace = trace_for(&profile);
        let greedy = Ssd::new(config_for(&profile, system).with_popularity_aware_gc(false))?
            .run_trace(trace.records())?;
        let aware = Ssd::new(config_for(&profile, system).with_popularity_aware_gc(true))?
            .run_trace(trace.records())?;
        table.row(vec![
            profile.name.clone(),
            greedy.revived_writes.to_string(),
            aware.revived_writes.to_string(),
            pct(
                100.0 * (aware.revived_writes as f64 - greedy.revived_writes as f64)
                    / greedy.revived_writes.max(1) as f64,
            ),
            greedy.erases.to_string(),
            aware.erases.to_string(),
        ]);
        eprintln!("  [{}] done", profile.name);
    }
    println!("{table}");
    println!("popularity-aware selection keeps popular zombies alive longer, so more");
    println!("incoming writes find their content still resident (SIV-D)");
    Ok(())
}
