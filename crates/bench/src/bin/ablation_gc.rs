//! **Ablation** — the §IV-D popularity-aware GC victim selector vs
//! plain greedy (max-invalid) selection, both under the 200 K-entry
//! MQ dead-value pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_gc`.

use zssd_bench::{
    config_for, experiment_profiles, pct, run_grid, scaled_entries, shared_traces, GridCell,
    TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation: popularity-aware GC (SIV-D) vs greedy GC, DVP-200K\n");
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    let mut table = TextTable::new(vec![
        "trace",
        "revived (greedy)",
        "revived (pop-aware)",
        "revive gain",
        "erases (greedy)",
        "erases (pop-aware)",
    ]);
    let profiles = experiment_profiles();
    // Two columns per workload — greedy and popularity-aware — each
    // pair replaying one shared trace.
    let cells: Vec<GridCell> = profiles
        .iter()
        .zip(shared_traces(&profiles))
        .flat_map(|(profile, records)| {
            [false, true].into_iter().map(move |aware| {
                GridCell::new(
                    profile.name.clone(),
                    if aware { "pop-aware" } else { "greedy" },
                    config_for(profile, system).with_popularity_aware_gc(aware),
                    records.clone(),
                )
            })
        })
        .collect();
    let reports = run_grid(cells)?;
    for (profile, pair) in profiles.iter().zip(reports.chunks(2)) {
        let (greedy, aware) = (&pair[0], &pair[1]);
        table.row(vec![
            profile.name.clone(),
            greedy.revived_writes.to_string(),
            aware.revived_writes.to_string(),
            pct(
                100.0 * (aware.revived_writes as f64 - greedy.revived_writes as f64)
                    / greedy.revived_writes.max(1) as f64,
            ),
            greedy.erases.to_string(),
            aware.erases.to_string(),
        ]);
        eprintln!("  [{}] done", profile.name);
    }
    println!("{table}");
    println!("popularity-aware selection keeps popular zombies alive longer, so more");
    println!("incoming writes find their content still resident (SIV-D)");
    Ok(())
}
