//! **Ablation** — sensitivity to the hash-engine latency (the paper
//! models 12 µs, citing Helion hashing cores). Mail workload,
//! 200 K-entry pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_hash_latency`.

use zssd_bench::{
    config_for, pct, scale, scaled_entries, trace_for, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_flash::FlashTiming;
use zssd_ftl::Ssd;
use zssd_metrics::reduction_pct;
use zssd_trace::WorkloadProfile;
use zssd_types::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    let baseline =
        Ssd::new(config_for(&profile, SystemKind::Baseline))?.run_trace(trace.records())?;
    eprintln!("  [baseline] done");

    println!("Ablation: hash-engine latency sensitivity (mail, DVP-200K)\n");
    let mut table = TextTable::new(vec!["hash latency", "mean latency", "improvement"]);
    for us in [0u64, 6, 12, 25, 50, 100] {
        let timing = FlashTiming::paper_table1().with_hash(SimDuration::from_micros(us));
        let report = Ssd::new(config_for(&profile, system).with_timing(timing))?
            .run_trace(trace.records())?;
        table.row(vec![
            SimDuration::from_micros(us).to_string(),
            report.mean_latency().to_string(),
            pct(reduction_pct(
                baseline.mean_latency().as_nanos() as f64,
                report.mean_latency().as_nanos() as f64,
            )),
        ]);
        eprintln!("  [{us}us] done");
    }
    println!("{table}");
    println!("the 12us engine cost is small against the 400us program it replaces;");
    println!("benefits erode only when hashing approaches flash-read latency");
    Ok(())
}
