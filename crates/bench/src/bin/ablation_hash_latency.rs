//! **Ablation** — sensitivity to the hash-engine latency (the paper
//! models 12 µs, citing Helion hashing cores). Mail workload,
//! 200 K-entry pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_hash_latency`.

use std::sync::Arc;

use zssd_bench::{
    config_for, pct, run_grid, scale, scaled_entries, trace_for, GridCell, TextTable,
    PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_flash::FlashTiming;
use zssd_metrics::reduction_pct;
use zssd_trace::{TraceRecord, WorkloadProfile};
use zssd_types::SimDuration;

const HASH_SWEEP_US: [u64; 6] = [0, 6, 12, 25, 50, 100];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(scale());
    let records: Arc<[TraceRecord]> = trace_for(&profile).into_records().into();
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    // One grid: the baseline plus one column per hash latency, all
    // replaying the same shared trace.
    let mut cells = vec![GridCell::new(
        profile.name.clone(),
        "baseline",
        config_for(&profile, SystemKind::Baseline),
        records.clone(),
    )];
    cells.extend(HASH_SWEEP_US.iter().map(|&us| {
        let timing = FlashTiming::paper_table1().with_hash(SimDuration::from_micros(us));
        GridCell::new(
            profile.name.clone(),
            format!("hash {us}us"),
            config_for(&profile, system).with_timing(timing),
            records.clone(),
        )
    }));
    let reports = run_grid(cells)?;
    let baseline = &reports[0];

    println!("Ablation: hash-engine latency sensitivity (mail, DVP-200K)\n");
    let mut table = TextTable::new(vec!["hash latency", "mean latency", "improvement"]);
    for (us, report) in HASH_SWEEP_US.iter().zip(&reports[1..]) {
        table.row(vec![
            SimDuration::from_micros(*us).to_string(),
            report.mean_latency().to_string(),
            pct(reduction_pct(
                baseline.mean_latency().as_nanos() as f64,
                report.mean_latency().as_nanos() as f64,
            )),
        ]);
        eprintln!("  [{us}us] done");
    }
    println!("{table}");
    println!("the 12us engine cost is small against the 400us program it replaces;");
    println!("benefits erode only when hashing approaches flash-read latency");
    Ok(())
}
