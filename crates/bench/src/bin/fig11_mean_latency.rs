//! **Figure 11** — mean latency improvement of the dead-value pool
//! (DVP, 200 K entries) and the prior-work LX-SSD recycler, vs
//! Baseline.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig11_mean_latency`.

use zssd_bench::{
    arrival_spec, experiment_profiles, grid_for, maybe_write_csv, pct, run_grid, scaled_entries,
    TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 11: % mean latency improvement vs Baseline");
    println!(
        "arrivals: {} (set ZSSD_ARRIVAL to poisson or bursty)\n",
        arrival_spec()
    );
    let entries = scaled_entries(PAPER_POOL_ENTRIES);
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries },
        SystemKind::LxSsd { entries },
    ];
    let mut table = TextTable::new(vec!["trace", "DVP", "LX-SSD"]);
    let mut mean = [0.0f64; 2];
    let profiles = experiment_profiles();
    let all = run_grid(grid_for(&profiles, &systems))?;
    for (profile, reports) in profiles.iter().zip(all.chunks(systems.len())) {
        let base = reports[0].mean_latency().as_nanos() as f64;
        let dvp = reduction_pct(base, reports[1].mean_latency().as_nanos() as f64);
        let lx = reduction_pct(base, reports[2].mean_latency().as_nanos() as f64);
        mean[0] += dvp;
        mean[1] += lx;
        table.row(vec![profile.name.clone(), pct(dvp), pct(lx)]);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec!["MEAN".into(), pct(mean[0] / n), pct(mean[1] / n)]);
    maybe_write_csv("fig11_mean_latency", &table);
    println!("{table}");
    println!("paper: DVP improves mean latency 4.8%-52% (mean 24.5%) and beats LX-SSD");
    println!("       by ~2x on average (LX-SSD is weakest on mail)");
    Ok(())
}
