//! **Figure 4** — per-popularity-band life-cycle statistics: (a) mean
//! writes from creation to death, (b) mean writes from death to
//! rebirth, (c) mean rebirth counts. Popularity bands are
//! `floor(log2(write count))`.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig04_lifecycle_intervals`.

use zssd_analysis::ValueLifecycles;
use zssd_bench::{scale, trace_for, TextTable};
use zssd_trace::WorkloadProfile;

fn main() {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let lc = ValueLifecycles::analyze(trace.records());

    println!("Figure 4: value life-cycle intervals by popularity band (mail)\n");
    let lifetime = lc.lifetime_by_popularity();
    let dead_time = lc.dead_time_by_popularity();
    let rebirths = lc.rebirths_by_popularity();

    let mut table = TextTable::new(vec![
        "band (writes)",
        "values",
        "(a) creation->death [writes]",
        "(b) death->rebirth [writes]",
        "(c) mean rebirths",
    ]);
    for bin in &rebirths {
        let lt = lifetime.iter().find(|b| b.degree == bin.degree);
        let dt = dead_time.iter().find(|b| b.degree == bin.degree);
        table.row(vec![
            format!("{}-{}", bin.write_range.0, bin.write_range.1),
            bin.values.to_string(),
            lt.map_or("-".into(), |b| format!("{:.0}", b.mean)),
            dt.map_or("-".into(), |b| format!("{:.0}", b.mean)),
            format!("{:.2}", bin.mean),
        ]);
    }
    println!("{table}");
    println!("paper: highly popular values die and are reborn more quickly, and");
    println!("       the higher the popularity, the higher the number of rebirths");
}
