//! **Figure 2** — CDF of invalidation counts across all values written
//! by the mail workload: x = number of invalidations, y = fraction of
//! values with ≤ x invalidations.
//!
//! Run with `cargo run -p zssd-bench --release --bin fig02_invalidation_cdf`.

use zssd_analysis::ValueLifecycles;
use zssd_bench::{frac_pct, scale, trace_for, TextTable};
use zssd_trace::WorkloadProfile;

fn main() {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let lc = ValueLifecycles::analyze(trace.records());
    let cdf = lc.invalidation_cdf();

    println!("Figure 2: CDF of per-value invalidation counts (mail)\n");
    let mut table = TextTable::new(vec!["invalidations <=", "fraction of values"]);
    let max = cdf.max().unwrap_or(0);
    let mut points: Vec<u64> = vec![0, 1, 2, 3, 5, 8, 12, 20, 50, 100];
    points.retain(|&p| p <= max.max(1));
    points.push(max);
    for x in points {
        table.row(vec![x.to_string(), frac_pct(cdf.fraction_le(x))]);
    }
    println!("{table}");
    println!(
        "fraction of values still live (never invalidated): {}",
        frac_pct(1.0 - lc.fraction_with_deaths())
    );
    println!("paper: ~30% of values remain live; the rest became garbage at least once");
}
