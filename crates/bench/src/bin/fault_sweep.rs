//! **Fault sweep** — write amplification and latency versus the
//! injected NAND program-failure rate.
//!
//! Sweeps the program-failure probability on the mail workload
//! (erase and read faults stay off so the x-axis is pure) and
//! reports, per rate:
//!
//! * **attempts/write** — (successful programs + failed attempts) per
//!   host write: the write-amplification figure of merit. Failed
//!   programs consume pages and force retries, so this must grow
//!   monotonically with the program-failure rate.
//! * the failure counters themselves (program failures, bad pages
//!   burned, GC relocations),
//! * mean and p99 request latency — retries queue behind everything
//!   else, so the tail degrades first.
//!
//! Run with `cargo run -p zssd-bench --release --bin fault_sweep`.
//! Scale down with `ZSSD_SCALE=0.1` for a quick pass; the fault seed
//! is fixed so runs are reproducible.
//!
//! A rate of zero is byte-identical to a fault-free build, so the
//! first row doubles as the no-fault baseline.

use std::sync::Arc;

use zssd_bench::{config_for, maybe_write_csv, run_grid, scale, trace_for, GridCell, TextTable};
use zssd_core::SystemKind;
use zssd_flash::FaultConfig;
use zssd_trace::{TraceRecord, WorkloadProfile};

const RATES: [f64; 5] = [0.0, 1e-3, 2e-3, 5e-3, 1e-2];
const FAULT_SEED: u64 = 0xFA17;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fault sweep: write amplification and latency vs program-failure rate\n");
    let profile = WorkloadProfile::mail().scaled(scale());
    // Baseline keeps the figure of merit clean: no dedup or revival,
    // so every flash program traces back to a host write or GC copy
    // and the ratio is the classic write-amplification factor.
    let system = SystemKind::Baseline;
    let records: Arc<[TraceRecord]> = trace_for(&profile).into_records().into();
    let cells: Vec<GridCell> = RATES
        .iter()
        .map(|&rate| {
            let faults = FaultConfig::none()
                .with_program_fail(rate)
                .with_seed(FAULT_SEED);
            GridCell::new(
                profile.name.clone(),
                format!("p={rate:.0e}"),
                config_for(&profile, system).with_faults(faults),
                records.clone(),
            )
        })
        .collect();
    let reports = run_grid(cells)?;

    let mut table = TextTable::new(vec![
        "program-fail",
        "attempts/write",
        "prog-fails",
        "gc-programs",
        "mean-lat",
        "p99-lat",
    ]);
    let mut last_wa = 0.0f64;
    let mut monotone = true;
    for (&rate, report) in RATES.iter().zip(&reports) {
        let attempts = report.flash_programs + report.program_failures;
        let wa = attempts as f64 / report.host_writes.max(1) as f64;
        monotone &= wa >= last_wa;
        last_wa = wa;
        table.row(vec![
            format!("{rate:.0e}"),
            format!("{wa:.4}"),
            report.program_failures.to_string(),
            report.gc_programs.to_string(),
            format!("{}", report.all_latency.mean),
            format!("{}", report.all_latency.p99),
        ]);
        eprintln!("  [p={rate:.0e}] done");
    }
    maybe_write_csv("fault_sweep", &table);
    println!("{table}");
    println!(
        "write amplification (attempts/write) is {} in the program-failure rate",
        if monotone {
            "monotonically increasing"
        } else {
            "NOT monotone — investigate"
        }
    );
    assert!(
        monotone,
        "every failed program forces a retry, so attempts per host write must rise with the rate"
    );
    Ok(())
}
