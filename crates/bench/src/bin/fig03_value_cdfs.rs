//! **Figure 3** — cumulative share of (a) writes, (b) invalidations,
//! and (c) rebirths across unique values, with values sorted by write
//! count descending (the paper's x-axis).
//!
//! Run with `cargo run -p zssd-bench --release --bin fig03_value_cdfs`.

use zssd_analysis::ValueLifecycles;
use zssd_bench::{frac_pct, scale, trace_for, TextTable};
use zssd_trace::WorkloadProfile;

fn main() {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let lc = ValueLifecycles::analyze(trace.records());
    let writes = lc.writes_share();
    let invals = lc.invalidations_share();
    let rebirths = lc.rebirths_share();

    println!("Figure 3: cumulative shares over values sorted by write count (mail)\n");
    let mut table = TextTable::new(vec![
        "top values",
        "(a) writes",
        "(b) invalidations",
        "(c) rebirths",
    ]);
    for pctile in [0.01, 0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.00] {
        table.row(vec![
            frac_pct(pctile),
            frac_pct(writes.share_of_top(pctile)),
            frac_pct(invals.share_of_top(pctile)),
            frac_pct(rebirths.share_of_top(pctile)),
        ]);
    }
    println!("{table}");
    println!(
        "values needed for 80% of writes: top {}",
        frac_pct(writes.items_for_share(0.8))
    );
    println!("paper: ~20% of values account for ~80% of writes and >80% of garbage pages");
}
