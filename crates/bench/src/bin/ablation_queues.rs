//! **Ablation** — number of MQ queues (1 queue degenerates toward
//! LRU; the paper uses 8). Runs the mail workload with the 200 K-entry
//! pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_queues`.

use zssd_bench::{
    config_for, pct, scale, scaled_entries, trace_for, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::Ssd;
use zssd_metrics::reduction_pct;
use zssd_trace::WorkloadProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(scale());
    let trace = trace_for(&profile);
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    let baseline =
        Ssd::new(config_for(&profile, SystemKind::Baseline))?.run_trace(trace.records())?;
    eprintln!("  [baseline] done");

    println!("Ablation: MQ queue count (mail, 200K entries)\n");
    let mut table = TextTable::new(vec![
        "queues",
        "revived",
        "write reduction",
        "promotions",
        "demotions",
    ]);
    for queues in [1usize, 2, 4, 8, 16] {
        let report = Ssd::new(config_for(&profile, system).with_mq_queues(queues))?
            .run_trace(trace.records())?;
        table.row(vec![
            queues.to_string(),
            report.revived_writes.to_string(),
            pct(reduction_pct(
                baseline.flash_programs as f64,
                report.flash_programs as f64,
            )),
            report.pool.promotions.to_string(),
            report.pool.demotions.to_string(),
        ]);
        eprintln!("  [{queues} queues] done");
    }
    println!("{table}");
    println!("paper: 8 queues chosen 'after an extensive evaluation' (SV footnote)");
    Ok(())
}
