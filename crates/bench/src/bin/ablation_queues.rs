//! **Ablation** — number of MQ queues (1 queue degenerates toward
//! LRU; the paper uses 8). Runs the mail workload with the 200 K-entry
//! pool.
//!
//! Run with `cargo run -p zssd-bench --release --bin ablation_queues`.

use std::sync::Arc;

use zssd_bench::{
    config_for, pct, run_grid, scale, scaled_entries, trace_for, GridCell, TextTable,
    PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_metrics::reduction_pct;
use zssd_trace::{TraceRecord, WorkloadProfile};

const QUEUE_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = WorkloadProfile::mail().scaled(scale());
    let records: Arc<[TraceRecord]> = trace_for(&profile).into_records().into();
    let system = SystemKind::MqDvp {
        entries: scaled_entries(PAPER_POOL_ENTRIES),
    };
    // One grid: the baseline column plus one column per queue count,
    // all replaying the same shared trace.
    let mut cells = vec![GridCell::new(
        profile.name.clone(),
        "baseline",
        config_for(&profile, SystemKind::Baseline),
        records.clone(),
    )];
    cells.extend(QUEUE_SWEEP.iter().map(|&queues| {
        GridCell::new(
            profile.name.clone(),
            format!("{queues} queues"),
            config_for(&profile, system).with_mq_queues(queues),
            records.clone(),
        )
    }));
    let reports = run_grid(cells)?;
    let baseline = &reports[0];

    println!("Ablation: MQ queue count (mail, 200K entries)\n");
    let mut table = TextTable::new(vec![
        "queues",
        "revived",
        "write reduction",
        "promotions",
        "demotions",
    ]);
    for (queues, report) in QUEUE_SWEEP.iter().zip(&reports[1..]) {
        table.row(vec![
            queues.to_string(),
            report.revived_writes.to_string(),
            pct(reduction_pct(
                baseline.flash_programs as f64,
                report.flash_programs as f64,
            )),
            report.pool.promotions.to_string(),
            report.pool.demotions.to_string(),
        ]);
        eprintln!("  [{queues} queues] done");
    }
    println!("{table}");
    println!("paper: 8 queues chosen 'after an extensive evaluation' (SV footnote)");
    Ok(())
}
