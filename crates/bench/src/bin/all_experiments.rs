//! Runs the full evaluation matrix once — every system of §V on every
//! workload of Table II — and prints the consolidated numbers behind
//! Figures 9–12, 14, 15 plus the paper's headline means. This is the
//! binary `EXPERIMENTS.md` is produced from.
//!
//! Run with `cargo run -p zssd-bench --release --bin all_experiments`
//! (`ZSSD_SCALE=0.1` for a quick pass).

use zssd_bench::{
    compare_systems, experiment_profiles, pct, scaled_entries, trace_for, TextTable,
    PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::RunReport;
use zssd_metrics::reduction_pct;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = scaled_entries(PAPER_POOL_ENTRIES);
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries },
        SystemKind::LruDvp { entries },
        SystemKind::Ideal,
        SystemKind::LxSsd { entries },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries },
    ];
    println!(
        "Full evaluation matrix ({} systems x 6 workloads)\n",
        systems.len()
    );

    let mut all: Vec<(String, Vec<RunReport>)> = Vec::new();
    for profile in experiment_profiles() {
        let trace = trace_for(&profile);
        eprintln!("[{}] {} records", profile.name, trace.records().len());
        let reports = compare_systems(&profile, trace.records(), &systems)?;
        for r in &reports {
            eprintln!(
                "  {} programs={} erases={} mean={}",
                r.system,
                r.flash_programs,
                r.erases,
                r.mean_latency()
            );
        }
        all.push((profile.name.clone(), reports));
    }

    // Write reduction (Fig 9 / 14 style) -----------------------------
    let mut writes = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut erase = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut mean_lat = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut tail_lat = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut sums = [[0.0f64; 6]; 4];
    for (name, reports) in &all {
        let base = &reports[0];
        let mut wr = vec![name.clone()];
        let mut er = vec![name.clone()];
        let mut ml = vec![name.clone()];
        let mut tl = vec![name.clone()];
        for (i, r) in reports[1..].iter().enumerate() {
            let w = reduction_pct(base.flash_programs as f64, r.flash_programs as f64);
            let e = reduction_pct(base.erases as f64, r.erases as f64);
            let m = reduction_pct(
                base.mean_latency().as_nanos() as f64,
                r.mean_latency().as_nanos() as f64,
            );
            let t = reduction_pct(
                base.tail_latency().as_nanos() as f64,
                r.tail_latency().as_nanos() as f64,
            );
            sums[0][i] += w;
            sums[1][i] += e;
            sums[2][i] += m;
            sums[3][i] += t;
            wr.push(pct(w));
            er.push(pct(e));
            ml.push(pct(m));
            tl.push(pct(t));
        }
        writes.row(wr);
        erase.row(er);
        mean_lat.row(ml);
        tail_lat.row(tl);
    }
    let n = all.len() as f64;
    for (table, sums) in [
        (&mut writes, &sums[0]),
        (&mut erase, &sums[1]),
        (&mut mean_lat, &sums[2]),
        (&mut tail_lat, &sums[3]),
    ] {
        let mut row = vec!["MEAN".to_owned()];
        row.extend(sums.iter().map(|&s| pct(s / n)));
        table.row(row);
    }

    println!("\n== % write (NAND program) reduction vs Baseline  [Figs 9, 14]\n{writes}");
    println!("\n== % erase reduction vs Baseline  [Fig 10]\n{erase}");
    println!("\n== % mean latency improvement vs Baseline  [Figs 11, 15]\n{mean_lat}");
    println!("\n== % tail (p99) latency improvement vs Baseline  [Fig 12]\n{tail_lat}");

    println!("\npaper headlines: 29% writes / 35.5% erases / 24.5% mean / 22% tail (DVP-200K);");
    println!("DVP ~2x LX-SSD on mean latency; DVP+Dedup adds ~11% writes over Dedup alone");
    Ok(())
}
