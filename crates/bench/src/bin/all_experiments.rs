//! Runs the full evaluation matrix once — every system of §V on every
//! workload of Table II — and prints the consolidated numbers behind
//! Figures 9–12, 14, 15 plus the paper's headline means. This is the
//! binary `EXPERIMENTS.md` is produced from.
//!
//! The whole (workload × system) matrix runs through the parallel
//! grid executor; `ZSSD_THREADS` pins the worker count.
//!
//! Run with `cargo run -p zssd-bench --release --bin all_experiments`
//! (`ZSSD_SCALE=0.1` for a quick pass). Pass `--timing` to also run
//! the matrix serially, verify the parallel run produced identical
//! reports, and write the wall-clock comparison to `BENCH_grid.json`.

use std::time::Instant;

use zssd_bench::{
    experiment_profiles, grid_for, grid_threads, pct, run_grid, run_grid_with_threads,
    scaled_entries, TextTable, PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;
use zssd_ftl::RunReport;
use zssd_metrics::reduction_pct;

/// Writes the serial-vs-parallel timing comparison as a small JSON
/// report (hand-rolled: the workspace carries no serde).
fn write_timing_json(
    path: &str,
    cells: usize,
    threads: usize,
    serial_secs: f64,
    parallel_secs: f64,
    identical: bool,
) -> std::io::Result<()> {
    let speedup = if parallel_secs > 0.0 {
        serial_secs / parallel_secs
    } else {
        0.0
    };
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"benchmark\": \"grid_runner\",\n  \"cells\": {cells},\n  \"threads\": {threads},\n  \"available_cpus\": {cpus},\n  \"scale\": {scale},\n  \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {parallel_secs:.3},\n  \"speedup\": {speedup:.2},\n  \"reports_identical\": {identical}\n}}\n",
        scale = zssd_bench::scale(),
    );
    std::fs::write(path, json)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = scaled_entries(PAPER_POOL_ENTRIES);
    let systems = [
        SystemKind::Baseline,
        SystemKind::MqDvp { entries },
        SystemKind::LruDvp { entries },
        SystemKind::Ideal,
        SystemKind::LxSsd { entries },
        SystemKind::Dedup,
        SystemKind::DvpPlusDedup { entries },
    ];
    let timing = std::env::args().any(|a| a == "--timing");
    let profiles = experiment_profiles();
    println!(
        "Full evaluation matrix ({} systems x {} workloads, {} threads)\n",
        systems.len(),
        profiles.len(),
        grid_threads(),
    );

    let cells = grid_for(&profiles, &systems);
    let reports = if timing {
        let start = Instant::now();
        let serial = run_grid_with_threads(cells.clone(), 1)?;
        let serial_secs = start.elapsed().as_secs_f64();
        eprintln!("[timing] serial: {serial_secs:.2}s");

        let start = Instant::now();
        let parallel = run_grid(cells)?;
        let parallel_secs = start.elapsed().as_secs_f64();
        let identical = serial == parallel;
        eprintln!(
            "[timing] parallel ({} threads): {parallel_secs:.2}s  speedup {:.2}x  identical: {identical}",
            grid_threads(),
            serial_secs / parallel_secs.max(1e-9),
        );
        write_timing_json(
            "BENCH_grid.json",
            serial.len(),
            grid_threads(),
            serial_secs,
            parallel_secs,
            identical,
        )?;
        eprintln!("[timing] wrote BENCH_grid.json");
        assert!(identical, "parallel grid must reproduce the serial reports");
        parallel
    } else {
        run_grid(cells)?
    };

    let mut all: Vec<(String, &[RunReport])> = Vec::new();
    for (profile, reports) in profiles.iter().zip(reports.chunks(systems.len())) {
        eprintln!("[{}]", profile.name);
        for r in reports {
            eprintln!(
                "  {} programs={} erases={} mean={}",
                r.system,
                r.flash_programs,
                r.erases,
                r.mean_latency()
            );
        }
        all.push((profile.name.clone(), reports));
    }

    // Write reduction (Fig 9 / 14 style) -----------------------------
    let mut writes = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut erase = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut mean_lat = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut tail_lat = TextTable::new(vec![
        "trace",
        "DVP",
        "LRU-DVP",
        "Ideal",
        "LX-SSD",
        "Dedup",
        "DVP+Dedup",
    ]);
    let mut sums = [[0.0f64; 6]; 4];
    for (name, reports) in &all {
        let base = &reports[0];
        let mut wr = vec![name.clone()];
        let mut er = vec![name.clone()];
        let mut ml = vec![name.clone()];
        let mut tl = vec![name.clone()];
        for (i, r) in reports[1..].iter().enumerate() {
            let w = reduction_pct(base.flash_programs as f64, r.flash_programs as f64);
            let e = reduction_pct(base.erases as f64, r.erases as f64);
            let m = reduction_pct(
                base.mean_latency().as_nanos() as f64,
                r.mean_latency().as_nanos() as f64,
            );
            let t = reduction_pct(
                base.tail_latency().as_nanos() as f64,
                r.tail_latency().as_nanos() as f64,
            );
            sums[0][i] += w;
            sums[1][i] += e;
            sums[2][i] += m;
            sums[3][i] += t;
            wr.push(pct(w));
            er.push(pct(e));
            ml.push(pct(m));
            tl.push(pct(t));
        }
        writes.row(wr);
        erase.row(er);
        mean_lat.row(ml);
        tail_lat.row(tl);
    }
    let n = all.len() as f64;
    for (table, sums) in [
        (&mut writes, &sums[0]),
        (&mut erase, &sums[1]),
        (&mut mean_lat, &sums[2]),
        (&mut tail_lat, &sums[3]),
    ] {
        let mut row = vec!["MEAN".to_owned()];
        row.extend(sums.iter().map(|&s| pct(s / n)));
        table.row(row);
    }

    println!("\n== % write (NAND program) reduction vs Baseline  [Figs 9, 14]\n{writes}");
    println!("\n== % erase reduction vs Baseline  [Fig 10]\n{erase}");
    println!("\n== % mean latency improvement vs Baseline  [Figs 11, 15]\n{mean_lat}");
    println!("\n== % tail (p99) latency improvement vs Baseline  [Fig 12]\n{tail_lat}");

    println!("\npaper headlines: 29% writes / 35.5% erases / 24.5% mean / 22% tail (DVP-200K);");
    println!("DVP ~2x LX-SSD on mean latency; DVP+Dedup adds ~11% writes over Dedup alone");
    Ok(())
}
