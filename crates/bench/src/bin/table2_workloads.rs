//! **Table II** — workload characteristics, measured on the generated
//! traces and compared against the paper's targets.
//!
//! Run with `cargo run -p zssd-bench --release --bin table2_workloads`.
//! Traces generate in parallel (`ZSSD_THREADS` to pin).

use zssd_bench::{experiment_profiles, frac_pct, maybe_write_csv, shared_traces, TextTable};
use zssd_trace::TraceStats;

/// Paper Table II: (name, WR %, unique write %, unique read %).
const PAPER: [(&str, f64, f64, f64); 6] = [
    ("web", 77.0, 42.0, 32.0),
    ("home", 96.0, 66.0, 80.0),
    ("mail", 77.0, 8.0, 80.0),
    ("hadoop", 30.0, 63.9, 17.5),
    ("trans", 55.0, 77.4, 13.8),
    ("desktop", 42.0, 74.7, 49.7),
];

fn main() {
    println!("Table II: workload characteristics (paper target vs measured)\n");
    let mut table = TextTable::new(vec![
        "trace",
        "requests",
        "WR% paper",
        "WR% meas",
        "uniqW% paper",
        "uniqW% meas",
        "uniqR% paper",
        "uniqR% meas",
        "footprint",
    ]);
    let profiles = experiment_profiles();
    let traces = shared_traces(&profiles);
    for ((profile, records), paper) in profiles.iter().zip(&traces).zip(PAPER) {
        assert_eq!(profile.name, paper.0, "profile order matches the paper");
        let stats = TraceStats::measure(records);
        table.row(vec![
            profile.name.clone(),
            stats.requests.to_string(),
            format!("{:.1}%", paper.1),
            frac_pct(stats.write_ratio()),
            format!("{:.1}%", paper.2),
            frac_pct(stats.unique_write_frac()),
            format!("{:.1}%", paper.3),
            frac_pct(stats.unique_read_frac()),
            stats.distinct_lpns.to_string(),
        ]);
    }
    maybe_write_csv("table2_workloads", &table);
    println!("{table}");
}
