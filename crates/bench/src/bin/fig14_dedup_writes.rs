//! **Figure 14** — number of writes normalized to Baseline for
//! Dedup alone, DVP alone, and DVP+Dedup (§VII).
//!
//! Run with `cargo run -p zssd-bench --release --bin fig14_dedup_writes`.

use zssd_bench::{
    experiment_profiles, frac_pct, grid_for, maybe_write_csv, run_grid, scaled_entries, TextTable,
    PAPER_POOL_ENTRIES,
};
use zssd_core::SystemKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 14: NAND writes normalized to Baseline (lower is better)\n");
    let entries = scaled_entries(PAPER_POOL_ENTRIES);
    let systems = [
        SystemKind::Baseline,
        SystemKind::Dedup,
        SystemKind::MqDvp { entries },
        SystemKind::DvpPlusDedup { entries },
    ];
    let mut table = TextTable::new(vec!["trace", "Dedup", "DVP", "DVP+Dedup"]);
    let mut sums = [0.0f64; 3];
    let profiles = experiment_profiles();
    let all = run_grid(grid_for(&profiles, &systems))?;
    for (profile, reports) in profiles.iter().zip(all.chunks(systems.len())) {
        let base = reports[0].flash_programs as f64;
        let mut cells = vec![profile.name.clone()];
        for (i, report) in reports[1..].iter().enumerate() {
            let normalized = report.flash_programs as f64 / base;
            sums[i] += normalized;
            cells.push(frac_pct(normalized));
        }
        table.row(cells);
        eprintln!("  [{}] done", profile.name);
    }
    let n = profiles.len() as f64;
    table.row(vec![
        "MEAN".into(),
        frac_pct(sums[0] / n),
        frac_pct(sums[1] / n),
        frac_pct(sums[2] / n),
    ]);
    maybe_write_csv("fig14_dedup_writes", &table);
    println!("{table}");
    println!("paper: dedup alone removes ~40.5% of writes; adding the DVP removes");
    println!("       another ~11% — the two techniques are complementary");
    Ok(())
}
