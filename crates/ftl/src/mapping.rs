//! The LPN→PPN mapping table with per-page popularity (Fig 8).

use zssd_types::{AddressError, Lpn, PopularityDegree, Ppn};

/// Page-level mapping table.
///
/// Each logical page holds its current physical location (if mapped)
/// and the paper's 1-byte popularity counter: "we add 8 bits (1 byte)
/// to the LPN-to-PPN mapping table which counts the popularity of a
/// data block" (§IV-C). The counter survives unmapping so popularity
/// information is not lost when content dies.
///
/// # Examples
///
/// ```
/// use zssd_ftl::MappingTable;
/// use zssd_types::{Lpn, Ppn};
///
/// let mut map = MappingTable::new(128);
/// assert_eq!(map.lookup(Lpn::new(5))?, None);
/// let old = map.update(Lpn::new(5), Ppn::new(40))?;
/// assert_eq!(old, None);
/// assert_eq!(map.lookup(Lpn::new(5))?, Some(Ppn::new(40)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MappingTable {
    entries: Vec<Option<Ppn>>,
    popularity: Vec<PopularityDegree>,
    mapped: u64,
}

impl MappingTable {
    /// Creates an unmapped table for `logical_pages` pages.
    pub fn new(logical_pages: u64) -> Self {
        MappingTable {
            entries: vec![None; logical_pages as usize],
            popularity: vec![PopularityDegree::ZERO; logical_pages as usize],
            mapped: 0,
        }
    }

    /// Number of logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn check(&self, lpn: Lpn) -> Result<usize, AddressError> {
        let idx = lpn.index() as usize;
        if idx >= self.entries.len() {
            Err(AddressError::out_of_range(
                "lpn",
                lpn.index(),
                self.entries.len() as u64,
            ))
        } else {
            Ok(idx)
        }
    }

    /// Current physical location of a logical page.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn lookup(&self, lpn: Lpn) -> Result<Option<Ppn>, AddressError> {
        Ok(self.entries[self.check(lpn)?])
    }

    /// Points a logical page at a new physical page, returning the
    /// previous location (the page that just died, if any).
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Result<Option<Ppn>, AddressError> {
        let idx = self.check(lpn)?;
        let old = self.entries[idx].replace(ppn);
        if old.is_none() {
            self.mapped += 1;
        }
        Ok(old)
    }

    /// Unmaps a logical page, returning its previous location.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn unmap(&mut self, lpn: Lpn) -> Result<Option<Ppn>, AddressError> {
        let idx = self.check(lpn)?;
        let old = self.entries[idx].take();
        if old.is_some() {
            self.mapped -= 1;
        }
        Ok(old)
    }

    /// The popularity counter of a logical page.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn popularity(&self, lpn: Lpn) -> Result<PopularityDegree, AddressError> {
        Ok(self.popularity[self.check(lpn)?])
    }

    /// Increments the popularity counter (on every host write to the
    /// page), saturating at 255, and returns the new value.
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn bump_popularity(&mut self, lpn: Lpn) -> Result<PopularityDegree, AddressError> {
        let idx = self.check(lpn)?;
        self.popularity[idx].increment();
        Ok(self.popularity[idx])
    }

    /// Raises the counter to at least `pop` (used when a DVP hit
    /// carries a popularity estimate back into the table, §IV-C).
    ///
    /// # Errors
    ///
    /// Returns an error if the page is beyond the logical capacity.
    pub fn raise_popularity(
        &mut self,
        lpn: Lpn,
        pop: PopularityDegree,
    ) -> Result<(), AddressError> {
        let idx = self.check(lpn)?;
        if pop > self.popularity[idx] {
            self.popularity[idx] = pop;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_reports_the_dying_page() {
        let mut map = MappingTable::new(4);
        assert_eq!(map.update(Lpn::new(0), Ppn::new(10)).expect("ok"), None);
        assert_eq!(
            map.update(Lpn::new(0), Ppn::new(20)).expect("ok"),
            Some(Ppn::new(10))
        );
        assert_eq!(map.mapped_pages(), 1);
    }

    #[test]
    fn unmap_clears_and_counts() {
        let mut map = MappingTable::new(4);
        map.update(Lpn::new(1), Ppn::new(5)).expect("ok");
        assert_eq!(map.unmap(Lpn::new(1)).expect("ok"), Some(Ppn::new(5)));
        assert_eq!(map.unmap(Lpn::new(1)).expect("ok"), None);
        assert_eq!(map.mapped_pages(), 0);
        assert_eq!(map.lookup(Lpn::new(1)).expect("ok"), None);
    }

    #[test]
    fn popularity_persists_across_remaps() {
        let mut map = MappingTable::new(2);
        map.bump_popularity(Lpn::new(0)).expect("ok");
        map.bump_popularity(Lpn::new(0)).expect("ok");
        map.update(Lpn::new(0), Ppn::new(1)).expect("ok");
        map.unmap(Lpn::new(0)).expect("ok");
        assert_eq!(
            map.popularity(Lpn::new(0)).expect("ok"),
            PopularityDegree::new(2)
        );
        map.raise_popularity(Lpn::new(0), PopularityDegree::new(9))
            .expect("ok");
        assert_eq!(
            map.popularity(Lpn::new(0)).expect("ok"),
            PopularityDegree::new(9)
        );
        // raise never lowers
        map.raise_popularity(Lpn::new(0), PopularityDegree::new(1))
            .expect("ok");
        assert_eq!(
            map.popularity(Lpn::new(0)).expect("ok"),
            PopularityDegree::new(9)
        );
    }

    #[test]
    fn out_of_range_lpns_error() {
        let mut map = MappingTable::new(2);
        assert!(map.lookup(Lpn::new(2)).is_err());
        assert!(map.update(Lpn::new(9), Ppn::new(0)).is_err());
        assert!(map.bump_popularity(Lpn::new(9)).is_err());
        assert_eq!(map.logical_pages(), 2);
    }
}
