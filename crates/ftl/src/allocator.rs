//! Active-block allocation striped across planes.

use std::collections::VecDeque;

use zssd_flash::{BlockId, FlashArray, Geometry};

use crate::error::SsdError;

/// Per-plane free-block lists and active (currently programmed)
/// blocks, with round-robin plane striping for host writes — the
/// "allocation strategy" knob of SSDSim-style simulators.
///
/// # Examples
///
/// ```
/// use zssd_flash::{FlashArray, FlashTiming, Geometry};
/// use zssd_ftl::Allocator;
///
/// let geom = Geometry::new(1, 1, 1, 2, 4, 8)?;
/// let flash = FlashArray::new(geom, FlashTiming::paper_table1());
/// let mut alloc = Allocator::new(&geom);
/// assert_eq!(alloc.plane_count(), 2);
/// // Every block starts free; taking an active block consumes one.
/// assert_eq!(alloc.free_blocks_in(0), 4);
/// let block = alloc.take_active(0, &flash)?;
/// assert_eq!(alloc.free_blocks_in(0), 3);
/// assert_eq!(alloc.active_block(0), Some(block));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    free: Vec<VecDeque<BlockId>>,
    active: Vec<Option<BlockId>>,
    cursor: u64,
}

impl Allocator {
    /// Creates an allocator with every block of the geometry free.
    pub fn new(geometry: &Geometry) -> Self {
        let planes = geometry.total_planes();
        let mut free: Vec<VecDeque<BlockId>> = (0..planes).map(|_| VecDeque::new()).collect();
        for b in 0..geometry.total_blocks() {
            let block = BlockId::new(b);
            free[geometry.plane_of_block(block) as usize].push_back(block);
        }
        Allocator {
            free,
            active: vec![None; planes as usize],
            cursor: 0,
        }
    }

    /// Number of planes managed.
    pub fn plane_count(&self) -> u64 {
        self.free.len() as u64
    }

    /// Free (fully erased, unassigned) blocks remaining in a plane.
    pub fn free_blocks_in(&self, plane: u64) -> usize {
        self.free[plane as usize].len()
    }

    /// Total free blocks across the device.
    pub fn total_free_blocks(&self) -> usize {
        self.free.iter().map(VecDeque::len).sum()
    }

    /// The block currently receiving writes in a plane, if any. GC
    /// victim selection must skip it.
    pub fn active_block(&self, plane: u64) -> Option<BlockId> {
        self.active[plane as usize]
    }

    /// The next plane for a host write (round-robin striping, so
    /// consecutive writes exploit channel/chip parallelism).
    pub fn next_plane(&mut self) -> u64 {
        let plane = self.cursor;
        self.cursor = (self.cursor + 1) % self.plane_count();
        plane
    }

    /// Returns a block in `plane` with at least one programmable page,
    /// opening a fresh free block when the active one is full.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::OutOfSpace`] when the active block is full
    /// and the plane has no free blocks left.
    pub fn take_active(&mut self, plane: u64, flash: &FlashArray) -> Result<BlockId, SsdError> {
        let slot = plane as usize;
        if let Some(block) = self.active[slot] {
            if flash.free_pages_in(block).map_err(SsdError::Address)? > 0 {
                return Ok(block);
            }
            self.active[slot] = None;
        }
        let block = self.free[slot]
            .pop_front()
            .ok_or(SsdError::OutOfSpace { plane })?;
        self.active[slot] = Some(block);
        Ok(block)
    }

    /// Drops the plane's active pointer without touching the block.
    /// Used when GC must reclaim the active block itself (emergency
    /// collection): the block stops receiving writes and can then be
    /// relocated and erased like any other.
    pub fn retire_active(&mut self, plane: u64) -> Option<BlockId> {
        self.active[plane as usize].take()
    }

    /// Returns a programmable block in *any* plane, preferring the
    /// round-robin order. Used by emergency GC when the victim's own
    /// plane is dry: valid pages relocate cross-plane (a
    /// controller-mediated move; the timing model charges the same
    /// read + program either way).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::OutOfSpace`] when every plane is dry.
    pub fn take_active_any(&mut self, flash: &FlashArray) -> Result<(u64, BlockId), SsdError> {
        let planes = self.plane_count();
        for offset in 0..planes {
            let plane = (self.cursor + offset) % planes;
            if let Ok(block) = self.take_active(plane, flash) {
                return Ok((plane, block));
            }
        }
        Err(SsdError::OutOfSpace {
            plane: self.cursor % planes,
        })
    }

    /// Returns an erased block to its plane's free list.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is the plane's active block
    /// (GC must never erase the active block).
    pub fn on_block_erased(&mut self, geometry: &Geometry, block: BlockId) {
        let plane = geometry.plane_of_block(block) as usize;
        debug_assert_ne!(self.active[plane], Some(block), "erased the active block");
        self.free[plane].push_back(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_flash::FlashTiming;
    use zssd_types::SimTime;

    fn setup() -> (Geometry, FlashArray, Allocator) {
        let geom = Geometry::new(1, 1, 1, 2, 3, 4).expect("valid geometry");
        let flash = FlashArray::new(geom, FlashTiming::paper_table1());
        let alloc = Allocator::new(&geom);
        (geom, flash, alloc)
    }

    #[test]
    fn blocks_distributed_per_plane() {
        let (_, _, alloc) = setup();
        assert_eq!(alloc.plane_count(), 2);
        assert_eq!(alloc.free_blocks_in(0), 3);
        assert_eq!(alloc.free_blocks_in(1), 3);
        assert_eq!(alloc.total_free_blocks(), 6);
    }

    #[test]
    fn round_robin_covers_all_planes() {
        let (_, _, mut alloc) = setup();
        let picks: Vec<u64> = (0..4).map(|_| alloc.next_plane()).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn active_block_rolls_over_when_full() {
        let (_, mut flash, mut alloc) = setup();
        let first = alloc.take_active(0, &flash).expect("block");
        // Fill all 4 pages of the first block.
        for _ in 0..4 {
            let block = alloc.take_active(0, &flash).expect("block");
            assert_eq!(block, first);
            flash.program_next(block, SimTime::ZERO).expect("program");
        }
        let second = alloc.take_active(0, &flash).expect("block");
        assert_ne!(second, first);
        assert_eq!(alloc.free_blocks_in(0), 1);
    }

    #[test]
    fn out_of_space_when_plane_exhausted() {
        let (_, mut flash, mut alloc) = setup();
        // Consume all 3 blocks of plane 0.
        for _ in 0..3 {
            let block = alloc.take_active(0, &flash).expect("block");
            for _ in 0..4 {
                flash.program_next(block, SimTime::ZERO).expect("program");
            }
            // Force rollover by requesting again (last one errors).
            let _ = alloc.take_active(0, &flash);
        }
        assert!(matches!(
            alloc.take_active(0, &flash),
            Err(SsdError::OutOfSpace { plane: 0 })
        ));
        // Plane 1 is untouched.
        assert!(alloc.take_active(1, &flash).is_ok());
    }

    #[test]
    fn retire_active_detaches_the_block() {
        let (_, flash, mut alloc) = setup();
        let block = alloc.take_active(0, &flash).expect("block");
        assert_eq!(alloc.retire_active(0), Some(block));
        assert_eq!(alloc.active_block(0), None);
        assert_eq!(alloc.retire_active(0), None);
        // The next request opens a fresh block.
        let next = alloc.take_active(0, &flash).expect("block");
        assert_ne!(next, block);
    }

    #[test]
    fn take_active_any_skips_dry_planes() {
        let (_, mut flash, mut alloc) = setup();
        // Exhaust plane 0 completely.
        for _ in 0..3 {
            let block = alloc.take_active(0, &flash).expect("block");
            for _ in 0..4 {
                flash.program_next(block, SimTime::ZERO).expect("program");
            }
            let _ = alloc.take_active(0, &flash);
        }
        assert!(alloc.take_active(0, &flash).is_err());
        // take_active_any falls through to plane 1.
        let (plane, _) = alloc.take_active_any(&flash).expect("some plane");
        assert_eq!(plane, 1);
    }

    #[test]
    fn take_active_any_errors_when_all_planes_dry() {
        let geom = Geometry::new(1, 1, 1, 1, 1, 2).expect("valid geometry");
        let mut flash = FlashArray::new(geom, FlashTiming::paper_table1());
        let mut alloc = Allocator::new(&geom);
        let block = alloc.take_active(0, &flash).expect("block");
        flash.program_next(block, SimTime::ZERO).expect("ok");
        flash.program_next(block, SimTime::ZERO).expect("ok");
        assert!(matches!(
            alloc.take_active_any(&flash),
            Err(SsdError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn erased_blocks_return_to_their_plane() {
        let (geom, mut flash, mut alloc) = setup();
        let block = alloc.take_active(1, &flash).expect("block");
        for _ in 0..4 {
            flash.program_next(block, SimTime::ZERO).expect("program");
        }
        // Roll the active pointer off the full block before erasing.
        let _ = alloc.take_active(1, &flash).expect("rollover");
        for ppn in geom.pages_of(block) {
            flash.invalidate_page(ppn).expect("invalidate");
        }
        flash.erase_block(block, SimTime::ZERO).expect("erase");
        let before = alloc.free_blocks_in(1);
        alloc.on_block_erased(&geom, block);
        assert_eq!(alloc.free_blocks_in(1), before + 1);
    }
}
