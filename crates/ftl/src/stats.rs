//! Device statistics and the per-run report.

use core::fmt;

use zssd_core::{PoolStats, SystemKind};
use zssd_dedup::DedupStats;
use zssd_flash::WearSummary;
use zssd_metrics::{
    events_to_json, windows_to_json, CounterRegistry, Json, LatencyRecorder, LatencySummary,
    PhaseTimers, Timeline, TracedEvent,
};
use zssd_types::SimDuration;

/// Mutable counters accumulated while a trace runs.
#[derive(Debug, Clone, Default)]
pub struct SsdStats {
    /// Host write requests serviced.
    pub host_writes: u64,
    /// Host read requests serviced.
    pub host_reads: u64,
    /// Host writes that caused a NAND program.
    pub host_programs: u64,
    /// NAND programs caused by GC relocation.
    pub gc_programs: u64,
    /// Host writes short-circuited by a dead-value-pool hit.
    pub revived_writes: u64,
    /// Host writes absorbed by deduplication (live-copy hits, plus
    /// same-content overwrites of the same page).
    pub deduped_writes: u64,
    /// GC victim collections performed.
    pub gc_collections: u64,
    /// Host TRIM/discard commands serviced.
    pub trims: u64,
    /// Replayed reads whose returned content differed from the value
    /// the trace recorded — any nonzero count is an FTL consistency
    /// bug (or a trace replayed against the wrong initial state).
    pub read_mismatches: u64,
    /// NAND programs issued to relocate data off a page that needed a
    /// read retry (background scrubbing, only under fault injection).
    pub scrub_programs: u64,
    /// Write latencies.
    pub write_latency: LatencyRecorder,
    /// Read latencies.
    pub read_latency: LatencyRecorder,
    /// Per-request latency over simulated time (episode analysis).
    pub timeline: Timeline,
    /// Simulated time spent per internal phase (GC relocation, erase,
    /// whole stall, scrubbing). Always accumulated — the additions are
    /// a handful of integer ops per GC episode, far off the per-request
    /// hot path.
    pub phases: PhaseTimers,
}

impl SsdStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SsdStats::default()
    }
}

/// Everything the paper's evaluation figures need from one run.
///
/// Comparisons between runs use
/// [`zssd_metrics::reduction_pct`]: e.g. Fig 9 plots
/// `reduction_pct(baseline.flash_programs, dvp.flash_programs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The system configuration that produced this run.
    pub system: SystemKind,
    /// Host write requests serviced.
    pub host_writes: u64,
    /// Host read requests serviced.
    pub host_reads: u64,
    /// Total NAND programs (host + GC relocation) — the paper's
    /// "number of writes" metric (Figs 9, 14).
    pub flash_programs: u64,
    /// NAND programs caused directly by host writes.
    pub host_programs: u64,
    /// NAND programs caused by GC relocation.
    pub gc_programs: u64,
    /// NAND reads (host + GC relocation).
    pub flash_reads: u64,
    /// Block erases — Fig 10's metric.
    pub erases: u64,
    /// Writes short-circuited by the dead-value pool.
    pub revived_writes: u64,
    /// Writes absorbed by deduplication.
    pub deduped_writes: u64,
    /// GC victim collections.
    pub gc_collections: u64,
    /// Host TRIM/discard commands serviced.
    pub trims: u64,
    /// Replayed reads returning content other than what the trace
    /// recorded (should always be zero; see [`SsdStats::read_mismatches`]).
    pub read_mismatches: u64,
    /// NAND program operations that failed (fault injection); each one
    /// consumed a page, marked it bad, and forced a retry elsewhere.
    pub program_failures: u64,
    /// NAND erase operations that failed (fault injection).
    pub erase_failures: u64,
    /// Host reads that needed a second sense pass to correct an
    /// injected ECC error.
    pub read_retries: u64,
    /// Blocks permanently removed from service after repeated erase
    /// failures.
    pub retired_blocks: u64,
    /// Programs issued to relocate data off pages that needed a read
    /// retry (scrubbing).
    pub scrub_programs: u64,
    /// Dead-value-pool counters.
    pub pool: PoolStats,
    /// Dedup counters, when the system deduplicates.
    pub dedup: Option<DedupStats>,
    /// Block-wear distribution at the end of the run.
    pub wear: WearSummary,
    /// Per-request latency over simulated time (episode analysis).
    pub timeline: Timeline,
    /// Write-latency digest.
    pub write_latency: LatencySummary,
    /// Read-latency digest.
    pub read_latency: LatencySummary,
    /// Combined (read + write) latency digest — the paper's headline
    /// latency numbers cover "across reads and write requests".
    pub all_latency: LatencySummary,
    /// Simulated time spent per internal phase (GC relocation, erase,
    /// whole stall, scrubbing).
    pub phases: PhaseTimers,
    /// The run's event trace, in deterministic causal order. Empty
    /// unless the run was configured with
    /// [`SsdConfig::with_event_tracing`].
    ///
    /// [`SsdConfig::with_event_tracing`]: crate::SsdConfig::with_event_tracing
    pub events: Vec<TracedEvent>,
}

impl RunReport {
    /// Mean latency across all requests.
    pub fn mean_latency(&self) -> SimDuration {
        self.all_latency.mean
    }

    /// 99th-percentile latency across all requests (the paper's tail).
    pub fn tail_latency(&self) -> SimDuration {
        self.all_latency.p99
    }

    /// Fraction of host writes that hit NAND (lower is better).
    pub fn program_fraction(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.host_programs as f64 / self.host_writes as f64
        }
    }

    /// Flattens every scalar counter of the run — device, pool, and
    /// dedup — into one deterministic name → value registry.
    pub fn counters(&self) -> CounterRegistry {
        let mut reg = CounterRegistry::new();
        reg.add("host_writes", self.host_writes);
        reg.add("host_reads", self.host_reads);
        reg.add("flash_programs", self.flash_programs);
        reg.add("host_programs", self.host_programs);
        reg.add("gc_programs", self.gc_programs);
        reg.add("flash_reads", self.flash_reads);
        reg.add("erases", self.erases);
        reg.add("revived_writes", self.revived_writes);
        reg.add("deduped_writes", self.deduped_writes);
        reg.add("gc_collections", self.gc_collections);
        reg.add("trims", self.trims);
        reg.add("read_mismatches", self.read_mismatches);
        reg.add("program_failures", self.program_failures);
        reg.add("erase_failures", self.erase_failures);
        reg.add("read_retries", self.read_retries);
        reg.add("retired_blocks", self.retired_blocks);
        reg.add("scrub_programs", self.scrub_programs);
        reg.add("pool_hits", self.pool.hits);
        reg.add("pool_misses", self.pool.misses);
        reg.add("pool_insertions", self.pool.insertions);
        reg.add("pool_evictions", self.pool.evictions);
        reg.add("pool_gc_removals", self.pool.gc_removals);
        reg.add("pool_promotions", self.pool.promotions);
        reg.add("pool_demotions", self.pool.demotions);
        if let Some(dedup) = &self.dedup {
            reg.add("dedup_hits", dedup.dedup_hits);
            reg.add("dedup_misses", dedup.misses);
            reg.add("dedup_registrations", dedup.registrations);
            reg.add("dedup_deaths", dedup.deaths);
            reg.add("dedup_index_evictions", dedup.index_evictions);
        }
        reg
    }

    /// Serializes the whole report — counters, latency digests, phase
    /// timers, wear, the timeline bucketed into `window`-wide
    /// [`zssd_metrics::WindowStat`]s, and the event trace — as a
    /// self-describing JSON document (schema `zssd-metrics-v1`,
    /// DESIGN.md §13). Byte-deterministic for a given report.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (see [`Timeline::windows`]).
    pub fn to_json(&self, window: SimDuration) -> Json {
        fn latency(summary: &LatencySummary) -> Json {
            Json::Obj(vec![
                ("count".into(), Json::U64(summary.count)),
                ("mean_ns".into(), Json::U64(summary.mean.as_nanos())),
                ("p50_ns".into(), Json::U64(summary.p50.as_nanos())),
                ("p99_ns".into(), Json::U64(summary.p99.as_nanos())),
                ("max_ns".into(), Json::U64(summary.max.as_nanos())),
            ])
        }
        let counters = self
            .counters()
            .iter()
            .map(|(name, value)| (name.to_string(), Json::U64(value)))
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|(name, total)| {
                (
                    name.to_string(),
                    Json::Obj(vec![
                        ("total_ns".into(), Json::U64(total.total.as_nanos())),
                        ("count".into(), Json::U64(total.count)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("zssd-metrics-v1".into())),
            ("system".into(), Json::Str(self.system.to_string())),
            ("counters".into(), Json::Obj(counters)),
            (
                "latency".into(),
                Json::Obj(vec![
                    ("write".into(), latency(&self.write_latency)),
                    ("read".into(), latency(&self.read_latency)),
                    ("all".into(), latency(&self.all_latency)),
                ]),
            ),
            ("phases".into(), Json::Obj(phases)),
            (
                "wear".into(),
                Json::Obj(vec![
                    ("min_erases".into(), Json::U64(self.wear.min_erases)),
                    ("max_erases".into(), Json::U64(self.wear.max_erases)),
                    ("mean_erases".into(), Json::F64(self.wear.mean_erases)),
                ]),
            ),
            (
                "timeline".into(),
                windows_to_json(window, &self.timeline.windows(window)),
            ),
            ("events".into(), events_to_json(&self.events)),
        ])
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} writes / {} reads",
            self.system, self.host_writes, self.host_reads
        )?;
        writeln!(
            f,
            "  programs={} (host {} + gc {})  erases={}  revived={}  deduped={}",
            self.flash_programs,
            self.host_programs,
            self.gc_programs,
            self.erases,
            self.revived_writes,
            self.deduped_writes
        )?;
        if self.program_failures != 0
            || self.erase_failures != 0
            || self.read_retries != 0
            || self.retired_blocks != 0
            || self.scrub_programs != 0
        {
            writeln!(
                f,
                "  faults: program_failures={} erase_failures={} read_retries={} retired_blocks={} scrub_programs={}",
                self.program_failures,
                self.erase_failures,
                self.read_retries,
                self.retired_blocks,
                self.scrub_programs
            )?;
        }
        writeln!(f, "  write latency: {}", self.write_latency)?;
        writeln!(f, "  read  latency: {}", self.read_latency)?;
        write!(f, "  all   latency: {}", self.all_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::SimTime;

    fn summary() -> LatencySummary {
        let mut rec = LatencyRecorder::new();
        rec.record(SimDuration::from_micros(10));
        rec.summary()
    }

    fn report() -> RunReport {
        RunReport {
            system: SystemKind::Baseline,
            host_writes: 100,
            host_reads: 50,
            flash_programs: 90,
            host_programs: 80,
            gc_programs: 10,
            flash_reads: 60,
            erases: 5,
            revived_writes: 20,
            deduped_writes: 0,
            gc_collections: 5,
            trims: 0,
            read_mismatches: 0,
            program_failures: 0,
            erase_failures: 0,
            read_retries: 0,
            retired_blocks: 0,
            scrub_programs: 0,
            pool: PoolStats::default(),
            dedup: None,
            wear: WearSummary {
                min_erases: 0,
                max_erases: 0,
                mean_erases: 0.0,
            },
            timeline: Timeline::new(),
            write_latency: summary(),
            read_latency: summary(),
            all_latency: summary(),
            phases: PhaseTimers::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn derived_quantities() {
        let r = report();
        assert_eq!(r.program_fraction(), 0.8);
        assert_eq!(r.mean_latency(), SimDuration::from_micros(10));
        assert_eq!(r.tail_latency(), SimDuration::from_micros(10));
        let _ = SimTime::ZERO; // silence unused import lint paths
    }

    #[test]
    fn display_contains_key_counters() {
        let text = report().to_string();
        assert!(text.contains("programs=90"));
        assert!(text.contains("revived=20"));
        assert!(text.contains("Baseline"));
    }

    #[test]
    fn zero_writes_fraction_is_zero() {
        let mut r = report();
        r.host_writes = 0;
        assert_eq!(r.program_fraction(), 0.0);
    }

    #[test]
    fn counters_flatten_device_pool_and_dedup() {
        let mut r = report();
        r.pool.hits = 7;
        let reg = r.counters();
        assert_eq!(reg.get("host_writes"), 100);
        assert_eq!(reg.get("pool_hits"), 7);
        assert_eq!(reg.get("dedup_hits"), 0, "no dedup section");
        r.dedup = Some(zssd_dedup::DedupStats {
            dedup_hits: 3,
            ..DedupStats::default()
        });
        assert_eq!(r.counters().get("dedup_hits"), 3);
    }

    #[test]
    fn json_export_is_deterministic_and_parses() {
        let mut r = report();
        r.phases.add("gc_erase", SimDuration::from_micros(3800));
        let window = SimDuration::from_millis(1);
        let text = r.to_json(window).to_string();
        assert_eq!(text, r.clone().to_json(window).to_string());
        let parsed = Json::parse(&text).expect("exporter emits valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("zssd-metrics-v1")
        );
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("host_writes"))
                .and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(
            parsed
                .get("phases")
                .and_then(|p| p.get("gc_erase"))
                .and_then(|p| p.get("total_ns"))
                .and_then(Json::as_u64),
            Some(3_800_000)
        );
        assert_eq!(
            parsed
                .get("latency")
                .and_then(|l| l.get("all"))
                .and_then(|l| l.get("p99_ns"))
                .and_then(Json::as_u64),
            Some(10_000)
        );
        assert!(parsed.get("events").and_then(Json::as_arr).is_some());
    }
}
