//! Device statistics and the per-run report.

use core::fmt;

use zssd_core::{PoolStats, SystemKind};
use zssd_dedup::DedupStats;
use zssd_flash::WearSummary;
use zssd_metrics::{LatencyRecorder, LatencySummary, Timeline};
use zssd_types::SimDuration;

/// Mutable counters accumulated while a trace runs.
#[derive(Debug, Clone, Default)]
pub struct SsdStats {
    /// Host write requests serviced.
    pub host_writes: u64,
    /// Host read requests serviced.
    pub host_reads: u64,
    /// Host writes that caused a NAND program.
    pub host_programs: u64,
    /// NAND programs caused by GC relocation.
    pub gc_programs: u64,
    /// Host writes short-circuited by a dead-value-pool hit.
    pub revived_writes: u64,
    /// Host writes absorbed by deduplication (live-copy hits, plus
    /// same-content overwrites of the same page).
    pub deduped_writes: u64,
    /// GC victim collections performed.
    pub gc_collections: u64,
    /// Host TRIM/discard commands serviced.
    pub trims: u64,
    /// Replayed reads whose returned content differed from the value
    /// the trace recorded — any nonzero count is an FTL consistency
    /// bug (or a trace replayed against the wrong initial state).
    pub read_mismatches: u64,
    /// NAND programs issued to relocate data off a page that needed a
    /// read retry (background scrubbing, only under fault injection).
    pub scrub_programs: u64,
    /// Write latencies.
    pub write_latency: LatencyRecorder,
    /// Read latencies.
    pub read_latency: LatencyRecorder,
    /// Per-request latency over simulated time (episode analysis).
    pub timeline: Timeline,
}

impl SsdStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SsdStats::default()
    }
}

/// Everything the paper's evaluation figures need from one run.
///
/// Comparisons between runs use
/// [`zssd_metrics::reduction_pct`]: e.g. Fig 9 plots
/// `reduction_pct(baseline.flash_programs, dvp.flash_programs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The system configuration that produced this run.
    pub system: SystemKind,
    /// Host write requests serviced.
    pub host_writes: u64,
    /// Host read requests serviced.
    pub host_reads: u64,
    /// Total NAND programs (host + GC relocation) — the paper's
    /// "number of writes" metric (Figs 9, 14).
    pub flash_programs: u64,
    /// NAND programs caused directly by host writes.
    pub host_programs: u64,
    /// NAND programs caused by GC relocation.
    pub gc_programs: u64,
    /// NAND reads (host + GC relocation).
    pub flash_reads: u64,
    /// Block erases — Fig 10's metric.
    pub erases: u64,
    /// Writes short-circuited by the dead-value pool.
    pub revived_writes: u64,
    /// Writes absorbed by deduplication.
    pub deduped_writes: u64,
    /// GC victim collections.
    pub gc_collections: u64,
    /// Host TRIM/discard commands serviced.
    pub trims: u64,
    /// Replayed reads returning content other than what the trace
    /// recorded (should always be zero; see [`SsdStats::read_mismatches`]).
    pub read_mismatches: u64,
    /// NAND program operations that failed (fault injection); each one
    /// consumed a page, marked it bad, and forced a retry elsewhere.
    pub program_failures: u64,
    /// NAND erase operations that failed (fault injection).
    pub erase_failures: u64,
    /// Host reads that needed a second sense pass to correct an
    /// injected ECC error.
    pub read_retries: u64,
    /// Blocks permanently removed from service after repeated erase
    /// failures.
    pub retired_blocks: u64,
    /// Programs issued to relocate data off pages that needed a read
    /// retry (scrubbing).
    pub scrub_programs: u64,
    /// Dead-value-pool counters.
    pub pool: PoolStats,
    /// Dedup counters, when the system deduplicates.
    pub dedup: Option<DedupStats>,
    /// Block-wear distribution at the end of the run.
    pub wear: WearSummary,
    /// Per-request latency over simulated time (episode analysis).
    pub timeline: Timeline,
    /// Write-latency digest.
    pub write_latency: LatencySummary,
    /// Read-latency digest.
    pub read_latency: LatencySummary,
    /// Combined (read + write) latency digest — the paper's headline
    /// latency numbers cover "across reads and write requests".
    pub all_latency: LatencySummary,
}

impl RunReport {
    /// Mean latency across all requests.
    pub fn mean_latency(&self) -> SimDuration {
        self.all_latency.mean
    }

    /// 99th-percentile latency across all requests (the paper's tail).
    pub fn tail_latency(&self) -> SimDuration {
        self.all_latency.p99
    }

    /// Fraction of host writes that hit NAND (lower is better).
    pub fn program_fraction(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.host_programs as f64 / self.host_writes as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} writes / {} reads",
            self.system, self.host_writes, self.host_reads
        )?;
        writeln!(
            f,
            "  programs={} (host {} + gc {})  erases={}  revived={}  deduped={}",
            self.flash_programs,
            self.host_programs,
            self.gc_programs,
            self.erases,
            self.revived_writes,
            self.deduped_writes
        )?;
        if self.program_failures != 0
            || self.erase_failures != 0
            || self.read_retries != 0
            || self.retired_blocks != 0
            || self.scrub_programs != 0
        {
            writeln!(
                f,
                "  faults: program_failures={} erase_failures={} read_retries={} retired_blocks={} scrub_programs={}",
                self.program_failures,
                self.erase_failures,
                self.read_retries,
                self.retired_blocks,
                self.scrub_programs
            )?;
        }
        writeln!(f, "  write latency: {}", self.write_latency)?;
        writeln!(f, "  read  latency: {}", self.read_latency)?;
        write!(f, "  all   latency: {}", self.all_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::SimTime;

    fn summary() -> LatencySummary {
        let mut rec = LatencyRecorder::new();
        rec.record(SimDuration::from_micros(10));
        rec.summary()
    }

    fn report() -> RunReport {
        RunReport {
            system: SystemKind::Baseline,
            host_writes: 100,
            host_reads: 50,
            flash_programs: 90,
            host_programs: 80,
            gc_programs: 10,
            flash_reads: 60,
            erases: 5,
            revived_writes: 20,
            deduped_writes: 0,
            gc_collections: 5,
            trims: 0,
            read_mismatches: 0,
            program_failures: 0,
            erase_failures: 0,
            read_retries: 0,
            retired_blocks: 0,
            scrub_programs: 0,
            pool: PoolStats::default(),
            dedup: None,
            wear: WearSummary {
                min_erases: 0,
                max_erases: 0,
                mean_erases: 0.0,
            },
            timeline: Timeline::new(),
            write_latency: summary(),
            read_latency: summary(),
            all_latency: summary(),
        }
    }

    #[test]
    fn derived_quantities() {
        let r = report();
        assert_eq!(r.program_fraction(), 0.8);
        assert_eq!(r.mean_latency(), SimDuration::from_micros(10));
        assert_eq!(r.tail_latency(), SimDuration::from_micros(10));
        let _ = SimTime::ZERO; // silence unused import lint paths
    }

    #[test]
    fn display_contains_key_counters() {
        let text = report().to_string();
        assert!(text.contains("programs=90"));
        assert!(text.contains("revived=20"));
        assert!(text.contains("Baseline"));
    }

    #[test]
    fn zero_writes_fraction_is_zero() {
        let mut r = report();
        r.host_writes = 0;
        assert_eq!(r.program_fraction(), 0.0);
    }
}
