//! SSD configuration (Table I of the paper, plus scaled presets).

use zssd_core::{MqConfig, SystemKind};
use zssd_flash::{FaultConfig, FlashTiming, Geometry};
use zssd_trace::ArrivalProcess;
use zssd_types::{ConfigError, SimDuration};

/// Full configuration of a simulated drive.
///
/// The builder starts from sane defaults and is adjusted with the
/// `with_*` methods (non-consuming style is unnecessary here: configs
/// are tiny `Copy`-free values moved into [`Ssd::new`]).
///
/// Three presets exist:
///
/// * [`SsdConfig::paper_table1`] — the 1 TB, 8×8-chip drive of Table I
///   (for documentation and the `table1_config` harness; simulating it
///   would need gigabytes of mapping state),
/// * [`SsdConfig::for_footprint`] — a scaled drive sized for a given
///   logical footprint at the paper's 15% over-provisioning, keeping
///   the multi-channel/multi-plane topology (the experiment default),
/// * [`SsdConfig::small_test`] — a tiny drive for unit tests.
///
/// [`Ssd::new`]: crate::Ssd::new
///
/// # Examples
///
/// ```
/// use zssd_core::SystemKind;
/// use zssd_ftl::SsdConfig;
///
/// let config = SsdConfig::for_footprint(10_000)
///     .with_system(SystemKind::MqDvp { entries: 2_000 });
/// assert!(config.geometry.total_pages() as f64 >= 10_000.0 * 1.15);
/// ```
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Flash array dimensions.
    pub geometry: Geometry,
    /// Operation latencies.
    pub timing: FlashTiming,
    /// Which evaluated system to assemble (pool/dedup wiring).
    pub system: SystemKind,
    /// Host-visible capacity in 4 KB pages. Must leave at least
    /// `min_over_provisioning` of the physical pages spare.
    pub logical_pages: u64,
    /// Minimum spare-capacity fraction (Table I: OP = 15%).
    pub min_over_provisioning: f64,
    /// How unstamped requests are spaced on the wall clock. Records
    /// carrying their own [`TraceRecord::arrival`] timestamp override
    /// this per request.
    ///
    /// [`TraceRecord::arrival`]: zssd_trace::TraceRecord
    pub arrival: ArrivalProcess,
    /// Verify that every replayed read returns the content the trace
    /// recorded for it (a debug assertion; mismatches are counted in
    /// [`RunReport::read_mismatches`] either way).
    ///
    /// [`RunReport::read_mismatches`]: crate::RunReport
    pub verify_reads: bool,
    /// GC starts when a plane's free-block count drops below this.
    pub gc_low_watermark: u32,
    /// Use the §IV-D popularity-aware victim selector instead of
    /// greedy max-invalid.
    pub popularity_aware_gc: bool,
    /// Weight of the popular-garbage penalty in the §IV-D metric.
    pub gc_popularity_weight: f64,
    /// MQ parameters (queue count; capacity comes from
    /// [`SystemKind::pool_entries`]).
    pub mq: MqConfig,
    /// RAM budget of the deduplication fingerprint index, in entries
    /// (CAFTL-style bounded index; reference counts are FTL metadata
    /// and are not bounded by this).
    pub dedup_index_entries: usize,
    /// Fill every logical page with unique content before the trace
    /// (and reset clocks), so reads hit mapped pages and GC pressure is
    /// realistic from the first request.
    pub precondition: bool,
    /// Use the hash-based reverse map instead of the default dense
    /// (direct-indexed) one. The two are behaviorally identical; the
    /// sparse representation is kept as an equivalence oracle for
    /// property tests and costs a hash probe per lookup.
    pub sparse_rmap: bool,
    /// Seeded NAND fault injection (program/erase/read failures). The
    /// default comes from the `ZSSD_FAULTS` environment knob and is
    /// [`FaultConfig::none`] when the knob is unset, which makes the
    /// drive byte-identical to a fault-free build.
    pub faults: FaultConfig,
    /// Record a typed, timestamped event per host request, revive,
    /// dedup hit, GC action, scrub, fault, and retirement (DESIGN.md
    /// §13). Off by default: the disabled path is a single branch per
    /// emission site and keeps the simulator's timing and counters
    /// byte-identical to a build without tracing.
    pub trace_events: bool,
}

impl SsdConfig {
    /// A drive built around a given geometry, with Table I timing and
    /// paper defaults, sized to 85% of physical capacity.
    pub fn new(geometry: Geometry) -> Self {
        let logical = (geometry.total_pages() as f64 * 0.85).floor() as u64;
        SsdConfig {
            geometry,
            timing: FlashTiming::paper_table1(),
            system: SystemKind::Baseline,
            logical_pages: logical.max(1),
            min_over_provisioning: 0.15,
            // Keeps the scaled 16-plane drive well below saturation
            // even for the write-heaviest traces: at baseline write
            // amplification (~3.5-4 NAND programs per host write,
            // each ~500 µs of chip time counting the program, the GC
            // read, and the amortized erase) over 8 chips, a 1 ms
            // mean inter-arrival gap leaves baseline utilization
            // around 20-25%, so latency reflects GC-burst queueing
            // rather than unbounded backlog.
            arrival: ArrivalProcess::constant(SimDuration::from_micros(1000)),
            verify_reads: true,
            gc_low_watermark: 2,
            popularity_aware_gc: true,
            gc_popularity_weight: 0.5,
            mq: MqConfig::paper_default(),
            dedup_index_entries: 200_000,
            precondition: true,
            sparse_rmap: false,
            faults: FaultConfig::from_env(),
            trace_events: false,
        }
    }

    /// The exact drive of Table I: 8 channels × 8 chips, 4 dies ×
    /// 2 planes, 256-page blocks, 1 TB, OP 15%. Useful for printing
    /// the configuration; running traces against it requires ~1 GB of
    /// mapping state.
    pub fn paper_table1() -> Self {
        // 1 TB / 4 KB = 268,435,456 pages over 8*8*4*2 = 512 planes
        // with 256-page blocks -> 2048 blocks per plane.
        let geometry = Geometry::new(8, 8, 4, 2, 2048, 256).expect("paper geometry is valid");
        SsdConfig::new(geometry)
    }

    /// A scaled drive whose usable capacity fits `logical_pages` at
    /// 15% over-provisioning, keeping a parallel topology (4 channels
    /// × 2 chips × 2 planes, 64-page blocks) so channel/chip queueing
    /// still happens.
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages` is zero.
    pub fn for_footprint(logical_pages: u64) -> Self {
        assert!(logical_pages > 0, "logical capacity must be nonzero");
        let channels = 4u32;
        let chips = 2u32;
        let dies = 1u32;
        let planes = 2u32;
        let pages_per_block = 64u32;
        let plane_count = u64::from(channels * chips * dies * planes);
        let physical_target = (logical_pages as f64 / 0.85).ceil() as u64;
        let blocks_per_plane = physical_target
            .div_ceil(plane_count * u64::from(pages_per_block))
            .max(16) as u32;
        let geometry = Geometry::new(
            channels,
            chips,
            dies,
            planes,
            blocks_per_plane,
            pages_per_block,
        )
        .expect("scaled geometry is valid");
        let mut config = SsdConfig::new(geometry);
        config.logical_pages = logical_pages;
        config
    }

    /// A tiny single-channel drive for unit tests: 2 planes × 8 blocks
    /// × 16 pages (256 physical pages), 192 logical pages.
    pub fn small_test() -> Self {
        let geometry = Geometry::new(1, 1, 1, 2, 8, 16).expect("test geometry is valid");
        let mut config = SsdConfig::new(geometry);
        config.logical_pages = 192;
        config
    }

    /// Selects the evaluated system.
    pub fn with_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        if let Some(entries) = system.pool_entries() {
            self.mq = self.mq.with_capacity(entries);
        }
        self
    }

    /// Overrides the host inter-arrival gap with a constant-interval
    /// process (sugar for `with_arrival(ArrivalProcess::constant(..))`,
    /// kept because most tests and ablations want exactly this).
    pub fn with_arrival_interval(self, interval: SimDuration) -> Self {
        self.with_arrival(ArrivalProcess::constant(interval))
    }

    /// Overrides the arrival process for unstamped requests.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Enables or disables read-verification debug assertions (the
    /// mismatch counter stays active regardless).
    pub fn with_verify_reads(mut self, verify: bool) -> Self {
        self.verify_reads = verify;
        self
    }

    /// Overrides the flash timing (e.g. hash-latency ablations).
    pub fn with_timing(mut self, timing: FlashTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Enables or disables the popularity-aware GC victim selector.
    pub fn with_popularity_aware_gc(mut self, enabled: bool) -> Self {
        self.popularity_aware_gc = enabled;
        self
    }

    /// Overrides the number of MQ queues (ablation).
    pub fn with_mq_queues(mut self, queues: usize) -> Self {
        self.mq = self.mq.with_queues(queues);
        self
    }

    /// Overrides the dedup fingerprint-index budget (entries).
    pub fn with_dedup_index_entries(mut self, entries: usize) -> Self {
        self.dedup_index_entries = entries;
        self
    }

    /// Skips preconditioning (unit tests that want a fresh drive).
    pub fn without_precondition(mut self) -> Self {
        self.precondition = false;
        self
    }

    /// Selects the reverse-map representation: `true` for the
    /// hash-based map, `false` (the default) for the dense
    /// direct-indexed vector. Results are identical either way; the
    /// sparse path exists so equivalence tests can compare the two.
    pub fn with_sparse_rmap(mut self, sparse: bool) -> Self {
        self.sparse_rmap = sparse;
        self
    }

    /// Enables or disables run-wide event tracing. The trace is
    /// surfaced as [`RunReport::events`] and through the
    /// `zssd events` CLI subcommand.
    ///
    /// [`RunReport::events`]: crate::RunReport
    pub fn with_event_tracing(mut self, trace: bool) -> Self {
        self.trace_events = trace;
        self
    }

    /// Overrides the fault-injection configuration (replacing whatever
    /// the `ZSSD_FAULTS` environment knob supplied). Pass
    /// [`FaultConfig::none`] to pin a drive fault-free regardless of
    /// the environment.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The spare-capacity fraction this configuration leaves.
    pub fn over_provisioning(&self) -> f64 {
        let total = self.geometry.total_pages() as f64;
        (total - self.logical_pages as f64) / total
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if the logical capacity is zero, exceeds
    /// physical capacity, or leaves less spare space than
    /// `min_over_provisioning`, or if GC parameters are degenerate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.logical_pages == 0 {
            return Err(ConfigError::new("logical capacity must be nonzero"));
        }
        if self.logical_pages > self.geometry.total_pages() {
            return Err(ConfigError::new(format!(
                "logical capacity {} exceeds physical capacity {}",
                self.logical_pages,
                self.geometry.total_pages()
            )));
        }
        if self.over_provisioning() + 1e-9 < self.min_over_provisioning {
            return Err(ConfigError::new(format!(
                "over-provisioning {:.1}% below required {:.1}%",
                self.over_provisioning() * 100.0,
                self.min_over_provisioning * 100.0
            )));
        }
        if self.gc_low_watermark == 0 {
            return Err(ConfigError::new("gc_low_watermark must be at least 1"));
        }
        if u64::from(self.gc_low_watermark) + 1 >= u64::from(self.geometry.blocks_per_plane()) {
            return Err(ConfigError::new(
                "gc_low_watermark must leave room for an active block per plane",
            ));
        }
        if !self.gc_popularity_weight.is_finite() || self.gc_popularity_weight < 0.0 {
            return Err(ConfigError::new("gc_popularity_weight must be >= 0"));
        }
        if self.dedup_index_entries == 0 && self.system.uses_dedup() {
            return Err(ConfigError::new(
                "dedup_index_entries must be nonzero for deduplicating systems",
            ));
        }
        self.arrival.validate().map_err(ConfigError::new)?;
        self.faults.validate().map_err(ConfigError::new)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_is_one_terabyte() {
        let c = SsdConfig::paper_table1();
        let bytes = c.geometry.total_pages() * 4096;
        assert_eq!(bytes, 1 << 40);
        assert_eq!(c.geometry.channels(), 8);
        assert_eq!(c.geometry.chips_per_channel(), 8);
        assert_eq!(c.geometry.pages_per_block(), 256);
        assert!((c.over_provisioning() - 0.15).abs() < 0.01);
        c.validate().expect("paper config valid");
    }

    #[test]
    fn for_footprint_reserves_op() {
        for pages in [100u64, 10_000, 80_000] {
            let c = SsdConfig::for_footprint(pages);
            assert!(c.over_provisioning() >= 0.15 - 1e-9, "OP for {pages}");
            c.validate().expect("valid");
        }
    }

    #[test]
    fn with_system_sizes_the_mq_pool() {
        let c = SsdConfig::small_test().with_system(SystemKind::MqDvp { entries: 777 });
        assert_eq!(c.mq.capacity, 777);
        let c = SsdConfig::small_test().with_system(SystemKind::Ideal);
        assert_eq!(c.mq.capacity, MqConfig::paper_default().capacity);
    }

    #[test]
    fn validation_catches_overcommit() {
        let mut c = SsdConfig::small_test();
        c.logical_pages = c.geometry.total_pages(); // zero OP
        assert!(c.validate().is_err());
        c.logical_pages = c.geometry.total_pages() + 1;
        assert!(c.validate().is_err());
        c.logical_pages = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate_gc() {
        let mut c = SsdConfig::small_test();
        c.gc_low_watermark = 0;
        assert!(c.validate().is_err());
        let mut c = SsdConfig::small_test();
        c.gc_low_watermark = c.geometry.blocks_per_plane();
        assert!(c.validate().is_err());
        let mut c = SsdConfig::small_test();
        c.gc_popularity_weight = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn dedup_index_budget_is_validated_for_dedup_systems() {
        let mut c = SsdConfig::small_test().with_system(SystemKind::Dedup);
        c.dedup_index_entries = 0;
        assert!(c.validate().is_err());
        // Non-dedup systems ignore the budget.
        let mut c = SsdConfig::small_test();
        c.dedup_index_entries = 0;
        c.validate().expect("baseline ignores dedup budget");
        let c = SsdConfig::small_test().with_dedup_index_entries(77);
        assert_eq!(c.dedup_index_entries, 77);
    }

    #[test]
    fn arrival_builders_and_validation() {
        let c = SsdConfig::small_test().with_arrival_interval(SimDuration::from_micros(10));
        assert_eq!(
            c.arrival,
            ArrivalProcess::constant(SimDuration::from_micros(10))
        );
        let c = SsdConfig::small_test()
            .with_arrival(ArrivalProcess::poisson(SimDuration::from_micros(500), 3));
        c.validate().expect("poisson config valid");
        let mut c = SsdConfig::small_test();
        c.arrival = ArrivalProcess::poisson(SimDuration::ZERO, 0);
        assert!(c.validate().is_err(), "degenerate arrivals rejected");
        assert!(SsdConfig::small_test().verify_reads);
        assert!(
            !SsdConfig::small_test()
                .with_verify_reads(false)
                .verify_reads
        );
    }

    #[test]
    fn event_tracing_defaults_off() {
        assert!(!SsdConfig::small_test().trace_events);
        assert!(
            SsdConfig::small_test()
                .with_event_tracing(true)
                .trace_events
        );
    }

    #[test]
    fn small_test_is_valid() {
        SsdConfig::small_test().validate().expect("valid");
        SsdConfig::small_test()
            .without_precondition()
            .validate()
            .expect("valid");
    }
}
