//! Garbage-collection victim selection.

use core::fmt;

use zssd_core::DeadValuePool;
use zssd_flash::{BlockId, FlashArray};

/// Chooses which full block of a plane to reclaim.
///
/// Implementations see the flash occupancy and the dead-value pool (to
/// weigh popular garbage). Only *full* blocks (no free pages) with at
/// least one invalid page are legal victims, and the plane's active
/// block is excluded by the caller.
pub trait GcPolicy: fmt::Debug {
    /// Selects a victim block in `plane`, or `None` if no block is
    /// reclaimable.
    fn select_victim(
        &self,
        flash: &FlashArray,
        plane: u64,
        exclude: Option<BlockId>,
        pool: &dyn DeadValuePool,
    ) -> Option<BlockId>;
}

/// Iterates the candidate blocks of a plane: full, with invalid pages,
/// and not the active block.
fn candidates(
    flash: &FlashArray,
    plane: u64,
    exclude: Option<BlockId>,
) -> impl Iterator<Item = (BlockId, u32, u64)> + '_ {
    let geometry = flash.geometry();
    let bpp = u64::from(geometry.blocks_per_plane());
    (plane * bpp..(plane + 1) * bpp).filter_map(move |b| {
        let block = BlockId::new(b);
        if exclude == Some(block) {
            return None;
        }
        let info = flash.block_info(block).expect("block within device");
        if info.is_full() && info.invalid_pages > 0 {
            Some((block, info.invalid_pages, info.erase_count))
        } else {
            None
        }
    })
}

/// The conventional greedy selector: most invalid pages wins (ties
/// break toward the least-worn block, a mild wear-levelling bias).
///
/// # Examples
///
/// ```
/// use zssd_ftl::GreedyGc;
/// let gc = GreedyGc::new();
/// assert_eq!(format!("{gc:?}"), "GreedyGc");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyGc;

impl GreedyGc {
    /// Creates the greedy selector.
    pub fn new() -> Self {
        GreedyGc
    }
}

impl GcPolicy for GreedyGc {
    fn select_victim(
        &self,
        flash: &FlashArray,
        plane: u64,
        exclude: Option<BlockId>,
        _pool: &dyn DeadValuePool,
    ) -> Option<BlockId> {
        candidates(flash, plane, exclude)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(block, _, _)| block)
    }
}

/// The paper's §IV-D selector: "instead of selecting a block with most
/// number of invalid/garbage pages, we calculate the new
/// popularity-aware metric which relates to the weighted sum of
/// popularity degrees of garbage pages in a block".
///
/// Score = `invalid_pages − weight · Σ pop(garbage page in pool)/255`;
/// the highest score wins, so blocks full of *popular* garbage (likely
/// to be revived soon) are erased later.
#[derive(Debug, Clone, Copy)]
pub struct PopularityAwareGc {
    weight: f64,
}

impl PopularityAwareGc {
    /// Creates the selector with the given popularity penalty weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn new(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative"
        );
        PopularityAwareGc { weight }
    }

    /// The configured weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Default for PopularityAwareGc {
    fn default() -> Self {
        PopularityAwareGc::new(2.0)
    }
}

/// How many top-by-invalid-count candidates get the full per-page
/// popularity scoring. A block outside this set has fewer invalid
/// pages than every block inside it, so its score (≤ its invalid
/// count) can only win when the popular-garbage penalty demotes all of
/// them — rare enough that bounding the scan preserves the policy
/// while keeping victim selection O(blocks + K·pages).
const SCORED_CANDIDATES: usize = 12;

impl GcPolicy for PopularityAwareGc {
    fn select_victim(
        &self,
        flash: &FlashArray,
        plane: u64,
        exclude: Option<BlockId>,
        pool: &dyn DeadValuePool,
    ) -> Option<BlockId> {
        let geometry = flash.geometry();
        let mut top: Vec<(BlockId, u32, u64)> = candidates(flash, plane, exclude).collect();
        top.sort_unstable_by_key(|&(_, invalid, _)| std::cmp::Reverse(invalid));
        top.truncate(SCORED_CANDIDATES);
        top.into_iter()
            .map(|(block, invalid, wear)| {
                let popular: f64 = geometry
                    .pages_of(block)
                    .filter_map(|ppn| pool.garbage_weight(ppn))
                    .map(|pop| f64::from(pop.get()) / 255.0)
                    .sum();
                let score = f64::from(invalid) - self.weight * popular;
                (block, score, wear)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("scores are finite")
                    .then(b.2.cmp(&a.2))
            })
            .map(|(block, _, _)| block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_core::{DeadValuePool, IdealPool, NoPool};
    use zssd_flash::{FlashTiming, Geometry};
    use zssd_types::{Fingerprint, Lpn, PopularityDegree, Ppn, SimTime, ValueId, WriteClock};

    /// One plane, 3 blocks of 4 pages.
    fn setup() -> FlashArray {
        let geom = Geometry::new(1, 1, 1, 1, 3, 4).expect("valid geometry");
        FlashArray::new(geom, FlashTiming::paper_table1())
    }

    /// Fills a block and invalidates `kill` of its pages.
    fn fill_block(flash: &mut FlashArray, block: u64, kill: usize) {
        let block = BlockId::new(block);
        let pages: Vec<Ppn> = flash.geometry().pages_of(block).collect();
        for _ in &pages {
            flash.program_next(block, SimTime::ZERO).expect("program");
        }
        for ppn in pages.into_iter().take(kill) {
            flash.invalidate_page(ppn).expect("invalidate");
        }
    }

    #[test]
    fn greedy_picks_most_invalid() {
        let mut flash = setup();
        fill_block(&mut flash, 0, 1);
        fill_block(&mut flash, 1, 3);
        fill_block(&mut flash, 2, 2);
        let victim = GreedyGc::new().select_victim(&flash, 0, None, &NoPool::new());
        assert_eq!(victim, Some(BlockId::new(1)));
    }

    #[test]
    fn greedy_skips_excluded_and_unfull_blocks() {
        let mut flash = setup();
        fill_block(&mut flash, 0, 2);
        fill_block(&mut flash, 1, 3);
        // Block 2 is only partially programmed (3 of 4 pages), yet all
        // of its written pages are invalid — the most garbage in the
        // plane. Unfull, so it must never be a candidate.
        let block2 = BlockId::new(2);
        let pages: Vec<Ppn> = flash.geometry().pages_of(block2).take(3).collect();
        for _ in &pages {
            flash.program_next(block2, SimTime::ZERO).expect("program");
        }
        for ppn in pages {
            flash.invalidate_page(ppn).expect("invalidate");
        }
        // Without exclusion: block 1 wins (full, 3 invalid); block 2's
        // 3 invalid pages don't count because it is not full.
        let victim = GreedyGc::new().select_victim(&flash, 0, None, &NoPool::new());
        assert_eq!(victim, Some(BlockId::new(1)));
        // Excluding block 1 (the active block): selection falls back to
        // block 0 (2 invalid), still skipping the garbage-richer but
        // unfull block 2.
        let fallback =
            GreedyGc::new().select_victim(&flash, 0, Some(BlockId::new(1)), &NoPool::new());
        assert_eq!(fallback, Some(BlockId::new(0)));
    }

    #[test]
    fn greedy_returns_none_without_reclaimable_blocks() {
        let mut flash = setup();
        fill_block(&mut flash, 0, 0); // full but fully valid
        let victim = GreedyGc::new().select_victim(&flash, 0, None, &NoPool::new());
        assert_eq!(victim, None);
    }

    #[test]
    fn popularity_aware_protects_popular_garbage() {
        let mut flash = setup();
        // Block 0: 3 invalid pages, all holding *popular* values.
        // Block 1: 2 invalid pages of cold values.
        fill_block(&mut flash, 0, 3);
        fill_block(&mut flash, 1, 2);
        let mut pool = IdealPool::new();
        for ppn in 0..3u64 {
            pool.insert_dead(
                Fingerprint::of_value(ValueId::new(ppn)),
                Ppn::new(ppn),
                Lpn::new(ppn),
                PopularityDegree::new(255),
                WriteClock::ZERO,
            );
        }
        // Greedy would take block 0 (3 invalid > 2); the §IV-D metric
        // penalizes its popular garbage: 3 - 2.0*3.0 = -3 < 2 - 0 = 2.
        let greedy = GreedyGc::new().select_victim(&flash, 0, None, &pool);
        assert_eq!(greedy, Some(BlockId::new(0)));
        let aware = PopularityAwareGc::new(2.0).select_victim(&flash, 0, None, &pool);
        assert_eq!(aware, Some(BlockId::new(1)));
    }

    #[test]
    fn popularity_aware_with_zero_weight_is_greedy() {
        let mut flash = setup();
        fill_block(&mut flash, 0, 3);
        fill_block(&mut flash, 1, 2);
        let aware = PopularityAwareGc::new(0.0).select_victim(&flash, 0, None, &NoPool::new());
        assert_eq!(aware, Some(BlockId::new(0)));
        assert_eq!(PopularityAwareGc::default().weight(), 2.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let _ = PopularityAwareGc::new(-0.5);
    }
}
