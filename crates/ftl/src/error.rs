//! FTL-level errors.

use core::fmt;
use std::error::Error;

use zssd_dedup::DedupError;
use zssd_flash::FlashOpError;
use zssd_types::{AddressError, ConfigError};

/// Anything that can go wrong constructing or driving an [`Ssd`].
///
/// [`Ssd`]: crate::Ssd
#[derive(Debug)]
pub enum SsdError {
    /// The configuration was inconsistent (e.g. logical capacity does
    /// not fit into physical capacity minus over-provisioning).
    Config(ConfigError),
    /// A flash command was illegal — indicates an FTL bookkeeping bug.
    Flash(FlashOpError),
    /// A host request addressed a page outside the logical capacity.
    Address(AddressError),
    /// The deduplication index rejected an operation — indicates an
    /// FTL bookkeeping bug.
    Dedup(DedupError),
    /// GC could not reclaim space: every candidate block in the plane
    /// is fully valid. The drive is over-committed (raise
    /// over-provisioning or lower the logical footprint).
    OutOfSpace {
        /// The plane that ran dry.
        plane: u64,
    },
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::Config(e) => write!(f, "{e}"),
            SsdError::Flash(e) => write!(f, "flash: {e}"),
            SsdError::Address(e) => write!(f, "{e}"),
            SsdError::Dedup(e) => write!(f, "dedup: {e}"),
            SsdError::OutOfSpace { plane } => {
                write!(
                    f,
                    "plane {plane} has no reclaimable blocks (over-committed drive)"
                )
            }
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Config(e) => Some(e),
            SsdError::Flash(e) => Some(e),
            SsdError::Address(e) => Some(e),
            SsdError::Dedup(e) => Some(e),
            SsdError::OutOfSpace { .. } => None,
        }
    }
}

impl From<ConfigError> for SsdError {
    fn from(e: ConfigError) -> Self {
        SsdError::Config(e)
    }
}

impl From<FlashOpError> for SsdError {
    fn from(e: FlashOpError) -> Self {
        SsdError::Flash(e)
    }
}

impl From<AddressError> for SsdError {
    fn from(e: AddressError) -> Self {
        SsdError::Address(e)
    }
}

impl From<DedupError> for SsdError {
    fn from(e: DedupError) -> Self {
        SsdError::Dedup(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SsdError::from(ConfigError::new("bad"));
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_some());
        let e = SsdError::OutOfSpace { plane: 3 };
        assert!(e.to_string().contains("plane 3"));
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions_exist() {
        fn takes(_: SsdError) {}
        takes(AddressError::out_of_range("lpn", 1, 1).into());
        takes(
            DedupError::UnknownPpn {
                ppn: zssd_types::Ppn::new(0),
            }
            .into(),
        );
    }
}
