//! The simulated SSD: write/read service, zombie revival, dedup, GC.

use zssd_core::{
    AdaptiveConfig, AdaptiveMqPool, DeadValuePool, IdealPool, LruDeadValuePool, LxSsdConfig,
    LxSsdPool, MqDeadValuePool, NoPool, PoolStats, SystemKind,
};
use zssd_dedup::DedupStore;
use zssd_flash::{FlashArray, FlashOpError, PageState};
use zssd_metrics::{Event, EventLog, EventSink};
use zssd_trace::{initial_value_of, IoOp, TraceRecord};
use zssd_types::{Fingerprint, Lpn, Ppn, SimDuration, SimTime, ValueId, WriteClock};

use crate::config::SsdConfig;
use crate::error::SsdError;
use crate::gc::{GcPolicy, GreedyGc, PopularityAwareGc};
use crate::mapping::MappingTable;
use crate::rmap::{PhysPage, Rmap};
use crate::stats::{RunReport, SsdStats};
use crate::Allocator;

/// A simulated SSD assembled per [`SystemKind`]: flash array, mapping
/// table, allocator, GC policy, dead-value pool, and (optionally) the
/// dedup index.
///
/// Drive it with [`Ssd::run_trace`] for whole-trace experiments, or
/// with [`Ssd::write`] / [`Ssd::read`] for fine-grained control.
///
/// # Examples
///
/// ```
/// use zssd_core::SystemKind;
/// use zssd_ftl::{Ssd, SsdConfig};
/// use zssd_types::{Lpn, SimTime, ValueId};
///
/// let config = SsdConfig::small_test()
///     .without_precondition()
///     .with_system(SystemKind::MqDvp { entries: 64 });
/// let mut ssd = Ssd::new(config)?;
///
/// // Write value 7, kill it by overwriting, then rewrite it: the
/// // third write revives the zombie page instead of programming.
/// ssd.write(Lpn::new(0), ValueId::new(7), SimTime::ZERO)?;
/// ssd.write(Lpn::new(0), ValueId::new(8), SimTime::ZERO)?;
/// ssd.write(Lpn::new(1), ValueId::new(7), SimTime::ZERO)?;
/// assert_eq!(ssd.stats().revived_writes, 1);
/// assert_eq!(ssd.stats().host_programs, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Ssd {
    config: SsdConfig,
    flash: FlashArray,
    mapping: MappingTable,
    allocator: Allocator,
    gc: Box<dyn GcPolicy>,
    pool: Box<dyn DeadValuePool>,
    dedup: Option<DedupStore>,
    rmap: Rmap,
    clock: WriteClock,
    stats: SsdStats,
    /// The unified run-wide event log (`None` unless the config asked
    /// for tracing). The flash layer buffers its own events; they are
    /// absorbed here — in causal program order — before each FTL-level
    /// emission, so one log holds the whole drive's total order.
    events: Option<EventLog>,
}

impl Ssd {
    /// Builds a drive from a configuration, running the preconditioning
    /// fill if the config asks for it.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is inconsistent (see
    /// [`SsdConfig::validate`]) or preconditioning runs out of space.
    pub fn new(config: SsdConfig) -> Result<Self, SsdError> {
        config.validate()?;
        let pool: Box<dyn DeadValuePool> = match config.system {
            SystemKind::Baseline | SystemKind::Dedup => Box::new(NoPool::new()),
            SystemKind::MqDvp { entries } | SystemKind::DvpPlusDedup { entries } => {
                Box::new(MqDeadValuePool::new(config.mq.with_capacity(entries)))
            }
            SystemKind::LruDvp { entries } => Box::new(LruDeadValuePool::new(entries)),
            SystemKind::Ideal => Box::new(IdealPool::new()),
            SystemKind::LxSsd { entries } => Box::new(LxSsdPool::new(
                LxSsdConfig::paper_default().with_capacity(entries),
            )),
            SystemKind::AdaptiveDvp {
                min_entries,
                max_entries,
            } => Box::new(AdaptiveMqPool::new(AdaptiveConfig {
                min_entries,
                max_entries,
                initial_entries: min_entries.midpoint(max_entries),
                ..AdaptiveConfig::paper_default()
            })),
        };
        let dedup = config
            .system
            .uses_dedup()
            .then(|| DedupStore::with_index_capacity(config.dedup_index_entries));
        let gc: Box<dyn GcPolicy> = if config.popularity_aware_gc && config.system.uses_pool() {
            Box::new(PopularityAwareGc::new(config.gc_popularity_weight))
        } else {
            Box::new(GreedyGc::new())
        };
        let mut flash = FlashArray::with_faults(config.geometry, config.timing, config.faults);
        flash.set_event_tracing(config.trace_events);
        let mut ssd = Ssd {
            flash,
            mapping: MappingTable::new(config.logical_pages),
            allocator: Allocator::new(&config.geometry),
            gc,
            pool,
            dedup,
            rmap: if config.sparse_rmap {
                Rmap::sparse()
            } else {
                Rmap::dense(config.geometry.total_pages())
            },
            clock: WriteClock::ZERO,
            stats: SsdStats::new(),
            events: config.trace_events.then(EventLog::new),
            config,
        };
        if ssd.config.precondition {
            ssd.precondition()?;
        }
        Ok(ssd)
    }

    /// The configuration this drive was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The underlying flash array (page states, wear, counters).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Dead-value-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Current number of entries in the dead-value pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// The paper's logical clock (number of host writes issued).
    pub fn write_clock(&self) -> WriteClock {
        self.clock
    }

    /// Fills every logical page with unique pre-trace content, then
    /// resets timing and counters so the measured run starts on a warm,
    /// quiet drive.
    fn precondition(&mut self) -> Result<(), SsdError> {
        for lpn in 0..self.config.logical_pages {
            let lpn = Lpn::new(lpn);
            let value = initial_value_of(lpn);
            let fp = Fingerprint::of_value(value);
            let (ppn, _) = self.program_host_page(SimTime::ZERO)?;
            self.rmap.insert(
                ppn,
                PhysPage {
                    fp,
                    value,
                    owners: vec![lpn],
                },
            );
            self.mapping.update(lpn, ppn)?;
            if let Some(dedup) = self.dedup.as_mut() {
                dedup.register(fp, ppn)?;
            }
        }
        self.flash.reset_time();
        self.flash.reset_stats();
        self.stats = SsdStats::new();
        // The warm-up fill is not part of the measured run: drop any
        // events it buffered and restart sequence numbering.
        let _ = self.flash.take_events();
        if let Some(log) = self.events.as_mut() {
            log.clear();
        }
        Ok(())
    }

    /// Absorbs events buffered by the flash layer, then appends one
    /// FTL-level event, keeping the unified log in causal program
    /// order. A single branch when tracing is disabled.
    fn emit(&mut self, at: SimTime, event: Event) {
        let Some(log) = self.events.as_mut() else {
            return;
        };
        for (t, buffered) in self.flash.take_events() {
            log.emit(t, buffered);
        }
        log.emit(at, event);
    }

    /// The event trace recorded so far (empty unless the config enabled
    /// [`SsdConfig::with_event_tracing`]). Events the flash layer has
    /// buffered but the FTL has not yet absorbed are not visible here;
    /// [`Ssd::into_report`] performs the final drain.
    pub fn events(&self) -> &[zssd_metrics::TracedEvent] {
        self.events.as_ref().map_or(&[], |log| log.events())
    }

    /// Services one host write of `value` to `lpn` arriving at
    /// `arrival`, returning the completion time.
    ///
    /// The §IV-C order: hash, dead-value-pool lookup (hit ⇒ revive a
    /// zombie page, no program), then dedup (hit ⇒ share the live
    /// copy), then a normal program; the overwritten content dies into
    /// the pool. GC runs when the written plane drops below the
    /// free-block watermark.
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity or the
    /// drive is over-committed.
    pub fn write(
        &mut self,
        lpn: Lpn,
        value: ValueId,
        arrival: SimTime,
    ) -> Result<SimTime, SsdError> {
        self.mapping.lookup(lpn)?; // address check up front
        let now = self.clock.tick();
        self.stats.host_writes += 1;
        let fp = Fingerprint::of_value(value);
        let mut t = arrival;
        if self.config.system.uses_hashing() {
            t += self.flash.timing().hash;
        }
        self.mapping.bump_popularity(lpn)?;

        // 1. Dead-value-pool lookup (§IV-C "Writes").
        if let Some(zombie) = self.pool.take_match(fp, now) {
            debug_assert_eq!(
                self.flash.page_state(zombie).ok(),
                Some(PageState::Invalid),
                "pool must only track garbage pages"
            );
            self.kill_current(lpn, now)?;
            self.flash.revive_page(zombie)?;
            let page = self
                .rmap
                .get_mut(zombie)
                .expect("tracked garbage pages keep their physical-page record");
            debug_assert!(page.owners.is_empty());
            debug_assert_eq!(page.fp, fp);
            page.owners.push(lpn);
            self.mapping.update(lpn, zombie)?;
            if let Some(dedup) = self.dedup.as_mut() {
                dedup.register(fp, zombie)?;
            }
            self.stats.revived_writes += 1;
            // No program, but the completion still goes out through the
            // controller and the zombie's channel — a revival on a busy
            // device queues like any other request.
            let done = self.flash.controller_complete(Some(zombie), t)?;
            self.emit(done, Event::Revive { lpn, ppn: zombie });
            self.record_write_latency(lpn, arrival, done);
            return Ok(done);
        }

        // 2. Deduplication against live copies.
        if let Some(dedup) = self.dedup.as_mut() {
            if let Some(shared) = dedup.reference(fp) {
                let old = self.mapping.lookup(lpn)?;
                if old == Some(shared) {
                    // Same content rewritten in place: drop the extra
                    // reference we just took; nothing changes.
                    dedup.release(shared)?;
                } else {
                    self.kill_current(lpn, now)?;
                    self.mapping.update(lpn, shared)?;
                    self.rmap
                        .get_mut(shared)
                        .expect("live pages have physical-page records")
                        .owners
                        .push(lpn);
                }
                self.stats.deduped_writes += 1;
                let done = self.flash.controller_complete(Some(shared), t)?;
                self.emit(done, Event::DedupHit { lpn, ppn: shared });
                self.record_write_latency(lpn, arrival, done);
                return Ok(done);
            }
        }

        // 3. Normal out-of-place program.
        self.kill_current(lpn, now)?;
        let (ppn, done) = self.program_host_page(t)?;
        self.stats.host_programs += 1;
        self.rmap.insert(
            ppn,
            PhysPage {
                fp,
                value,
                owners: vec![lpn],
            },
        );
        self.mapping.update(lpn, ppn)?;
        if let Some(dedup) = self.dedup.as_mut() {
            dedup.register(fp, ppn)?;
        }
        let plane = self
            .config
            .geometry
            .plane_of_block(self.config.geometry.block_of(ppn));
        // GC triggered by this write stalls it: the erase pipeline the
        // write set off must drain before the host sees completion, so
        // the reclamation time is charged to the triggering request
        // (this is where the paper's tail latency comes from).
        let done = self.maybe_gc(plane, done)?;
        self.record_write_latency(lpn, arrival, done);
        Ok(done)
    }

    /// Services one host read of `lpn` arriving at `arrival`,
    /// returning `(content, completion time)`. Unmapped pages return
    /// their pre-trace content at controller speed.
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    pub fn read(&mut self, lpn: Lpn, arrival: SimTime) -> Result<(ValueId, SimTime), SsdError> {
        self.stats.host_reads += 1;
        // LX-SSD refreshes garbage recency on reads (the behaviour the
        // paper critiques); other pools ignore this.
        self.pool.note_lpn_access(lpn, self.clock);
        let done;
        let value;
        match self.mapping.lookup(lpn)? {
            Some(ppn) => {
                let (read_done, retried) = self.flash.read_page_outcome(ppn, arrival)?;
                done = read_done;
                value = self
                    .rmap
                    .get(ppn)
                    .expect("mapped pages have physical-page records")
                    .value;
                if retried {
                    // The data survived the ECC retry but the page is
                    // suspect: scrub it onto fresh flash in the
                    // background. The host latency is the read's alone.
                    self.scrub_relocate(ppn, done)?;
                }
            }
            None => {
                // Answered from mapping state, but the completion still
                // serializes on the controller.
                done = self.flash.controller_complete(None, arrival)?;
                value = initial_value_of(lpn);
            }
        }
        let latency = done.saturating_since(arrival);
        self.stats.read_latency.record(latency);
        self.stats.timeline.record(arrival, latency);
        self.emit(done, Event::HostRead { lpn, latency });
        Ok((value, done))
    }

    /// Services a host TRIM/discard of `lpn`: the logical page is
    /// unmapped and its content dies (entering the dead-value pool —
    /// trimmed content is garbage like any other, and may still be
    /// revived by a later write of the same data).
    ///
    /// TRIM is a mapping-table operation; it completes immediately and
    /// records no latency sample.
    ///
    /// # Errors
    ///
    /// Returns an error if `lpn` is beyond the logical capacity.
    pub fn trim(&mut self, lpn: Lpn) -> Result<(), SsdError> {
        let mapped = self.mapping.lookup(lpn)?; // address check up front

        // Exactly one count per accepted command, whatever its effect:
        // trimming an already-trimmed (or never-written) page is an
        // acknowledged no-op, not a second state change.
        self.stats.trims += 1;
        if mapped.is_none() {
            return Ok(());
        }
        let now = self.clock;
        self.kill_current(lpn, now)?;
        self.mapping.unmap(lpn)?;
        Ok(())
    }

    /// Replays a whole trace and produces the run report.
    ///
    /// Each request arrives at its record's own timestamp when one is
    /// stamped; unstamped records draw the next instant from the
    /// configured [`SsdConfig::arrival`] process (the default constant
    /// process reproduces the classic `i * interval` spacing exactly).
    /// Reads are verified against the content the trace recorded:
    /// mismatches increment [`RunReport::read_mismatches`] and — with
    /// [`SsdConfig::verify_reads`] set — fail a debug assertion.
    ///
    /// # Errors
    ///
    /// Returns an error on the first failed request.
    pub fn run_trace(mut self, records: &[TraceRecord]) -> Result<RunReport, SsdError> {
        self.replay(records)?;
        Ok(self.into_report())
    }

    /// Replays a trace against the live drive without consuming it, so
    /// callers can inspect state (e.g. [`Ssd::check_invariants`])
    /// before finalizing with [`Ssd::into_report`]. Semantics are
    /// identical to [`Ssd::run_trace`]; each call restarts the
    /// configured arrival process for unstamped records.
    ///
    /// # Errors
    ///
    /// Returns an error on the first failed request.
    pub fn replay(&mut self, records: &[TraceRecord]) -> Result<(), SsdError> {
        let mut arrivals = self.config.arrival.times();
        for record in records {
            // The generator is consumed only for unstamped records, so
            // mixed traces keep generated instants contiguous.
            let arrival = record.arrival.unwrap_or_else(|| arrivals.next_time());
            match record.op {
                IoOp::Write => {
                    self.write(record.lpn, record.value, arrival)?;
                }
                IoOp::Read => {
                    let (value, _) = self.read(record.lpn, arrival)?;
                    if value != record.value {
                        self.stats.read_mismatches += 1;
                        debug_assert!(
                            !self.config.verify_reads,
                            "read at seq {} returned {value}, trace recorded {}",
                            record.seq, record.value
                        );
                    }
                }
                IoOp::Trim => {
                    self.trim(record.lpn)?;
                }
            }
        }
        Ok(())
    }

    /// Finalizes this drive into a [`RunReport`].
    ///
    /// Consumes the drive so the latency and timeline sample vectors
    /// move into the report instead of being cloned — at experiment
    /// scale those hold millions of samples per run.
    pub fn into_report(mut self) -> RunReport {
        // Final drain: absorb any flash events emitted since the last
        // FTL-level emission, then move the log into the report.
        if let Some(log) = self.events.as_mut() {
            for (t, buffered) in self.flash.take_events() {
                log.emit(t, buffered);
            }
        }
        let events = self
            .events
            .take()
            .map(EventLog::into_events)
            .unwrap_or_default();
        let phases = std::mem::take(&mut self.stats.phases);
        let flash = self.flash.stats();
        let mut write_latency = std::mem::take(&mut self.stats.write_latency);
        let mut read_latency = std::mem::take(&mut self.stats.read_latency);
        let timeline = std::mem::take(&mut self.stats.timeline);
        let write_summary = write_latency.summary();
        let read_summary = read_latency.summary();
        // The combined digest reuses the write recorder's storage.
        let mut all = write_latency;
        all.merge(&read_latency);
        RunReport {
            system: self.config.system,
            host_writes: self.stats.host_writes,
            host_reads: self.stats.host_reads,
            flash_programs: flash.programs.get(),
            host_programs: self.stats.host_programs,
            gc_programs: self.stats.gc_programs,
            flash_reads: flash.reads.get(),
            erases: flash.erases.get(),
            revived_writes: self.stats.revived_writes,
            deduped_writes: self.stats.deduped_writes,
            gc_collections: self.stats.gc_collections,
            trims: self.stats.trims,
            read_mismatches: self.stats.read_mismatches,
            program_failures: flash.program_failures.get(),
            erase_failures: flash.erase_failures.get(),
            read_retries: flash.read_retries.get(),
            retired_blocks: flash.retired_blocks.get(),
            scrub_programs: self.stats.scrub_programs,
            pool: self.pool.stats(),
            dedup: self.dedup.as_ref().map(|d| d.stats()),
            wear: self.flash.wear_summary(),
            timeline,
            write_latency: write_summary,
            read_latency: read_summary,
            all_latency: all.summary(),
            phases,
            events,
        }
    }

    /// Checks the cross-structure consistency invariants that must
    /// hold on any quiescent drive, returning a description of the
    /// first violation found. The test suites call this after every
    /// scenario; it is especially valuable under fault injection,
    /// where retry and retirement paths shuffle state across the
    /// mapping table, reverse map, dead-value pool, and flash array.
    ///
    /// The invariants:
    ///
    /// 1. **Mapping ↔ reverse-map bijection** — every mapped LPN
    ///    points at a *valid* page whose record lists it as an owner,
    ///    and every owner in every record maps back to that page.
    /// 2. **Page-state ↔ record coherence** — valid pages carry a
    ///    record with at least one owner; garbage records carry none;
    ///    free and bad pages carry no record at all.
    /// 3. **Dead-value-pool hygiene** — every tracked PPN is an
    ///    *invalid* page whose record survives (revival needs the
    ///    content); in particular nothing on a retired block is
    ///    tracked, so a zombie on dead flash can never be revived.
    /// 4. **Block accounting** — each block's cached
    ///    valid/invalid/free/bad counters match a recount of its page
    ///    states, and sum to the block size.
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` on the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let geometry = &self.config.geometry;
        // 1. Mapping -> rmap direction.
        for lpn in (0..self.config.logical_pages).map(Lpn::new) {
            let Some(ppn) = self.mapping.lookup(lpn).map_err(|e| e.to_string())? else {
                continue;
            };
            let state = self.flash.page_state(ppn).map_err(|e| e.to_string())?;
            if state != PageState::Valid {
                return Err(format!("{lpn} maps to {ppn} in state {state}"));
            }
            let Some(page) = self.rmap.get(ppn) else {
                return Err(format!("{lpn} maps to {ppn}, which has no record"));
            };
            if !page.owners.contains(&lpn) {
                return Err(format!("{lpn} maps to {ppn} but is not an owner"));
            }
        }
        // 2–3. Per-page state, record, and pool coherence (rmap ->
        // mapping direction rides on the owner loop).
        for ppn in (0..geometry.total_pages()).map(Ppn::new) {
            let state = self.flash.page_state(ppn).map_err(|e| e.to_string())?;
            let record = self.rmap.get(ppn);
            let pooled = self.pool.garbage_weight(ppn).is_some();
            match state {
                PageState::Valid => {
                    let Some(page) = record else {
                        return Err(format!("valid {ppn} has no record"));
                    };
                    if page.owners.is_empty() {
                        return Err(format!("valid {ppn} has no owners"));
                    }
                    for &owner in &page.owners {
                        if self.mapping.lookup(owner).map_err(|e| e.to_string())? != Some(ppn) {
                            return Err(format!("{ppn} lists owner {owner} mapped elsewhere"));
                        }
                    }
                    if pooled {
                        return Err(format!("valid {ppn} tracked by the dead-value pool"));
                    }
                }
                PageState::Invalid => {
                    if let Some(page) = record {
                        if !page.owners.is_empty() {
                            return Err(format!("garbage {ppn} still has owners"));
                        }
                    }
                    if pooled && record.is_none() {
                        return Err(format!("pool tracks {ppn}, which has no record"));
                    }
                }
                PageState::Free | PageState::Bad => {
                    if record.is_some() {
                        return Err(format!("{state} {ppn} has a record"));
                    }
                    if pooled {
                        return Err(format!("{state} {ppn} tracked by the dead-value pool"));
                    }
                }
            }
        }
        // 4. Block accounting: cached counters vs a recount.
        for (block, info) in self.flash.blocks() {
            let mut counts = [0u32; 4];
            for ppn in geometry.pages_of(block) {
                let state = self.flash.page_state(ppn).map_err(|e| e.to_string())?;
                counts[match state {
                    PageState::Valid => 0,
                    PageState::Invalid => 1,
                    PageState::Free => 2,
                    PageState::Bad => 3,
                }] += 1;
            }
            let cached = [
                info.valid_pages,
                info.invalid_pages,
                info.free_pages,
                info.bad_pages,
            ];
            if counts != cached {
                return Err(format!(
                    "{block} caches valid/invalid/free/bad {cached:?}, recount {counts:?}"
                ));
            }
            if cached.iter().sum::<u32>() != geometry.pages_per_block() {
                return Err(format!("{block} counters do not sum to the block size"));
            }
        }
        Ok(())
    }

    fn record_write_latency(&mut self, lpn: Lpn, arrival: SimTime, done: SimTime) {
        let latency = done.saturating_since(arrival);
        self.stats.write_latency.record(latency);
        self.stats.timeline.record(arrival, latency);
        self.emit(done, Event::HostWrite { lpn, latency });
    }

    /// Kills the content currently mapped at `lpn` (if any): releases
    /// the dedup reference, invalidates the physical page when its
    /// last reference drops, and offers the fresh zombie to the pool
    /// (§IV-C "Updates").
    fn kill_current(&mut self, lpn: Lpn, now: WriteClock) -> Result<(), SsdError> {
        let Some(old) = self.mapping.lookup(lpn)? else {
            return Ok(());
        };
        let pop = self.mapping.popularity(lpn)?;
        if let Some(dedup) = self.dedup.as_mut() {
            let release = dedup.release(old)?;
            let page = self
                .rmap
                .get_mut(old)
                .expect("live pages have physical-page records");
            page.owners.retain(|&l| l != lpn);
            if release.remaining == 0 {
                debug_assert!(page.owners.is_empty());
                self.flash.invalidate_page(old)?;
                self.pool
                    .insert_dead(release.fingerprint, old, lpn, pop, now);
            }
        } else {
            let page = self
                .rmap
                .get_mut(old)
                .expect("live pages have physical-page records");
            page.owners.clear();
            let fp = page.fp;
            self.flash.invalidate_page(old)?;
            self.pool.insert_dead(fp, old, lpn, pop, now);
        }
        Ok(())
    }

    /// Programs the next page of the striped host stream at time `t`.
    ///
    /// An injected program failure marks the attempted page bad and
    /// retries on the next page (possibly of a fresh block) once the
    /// failed pulse finishes — the failure is only visible in the
    /// status poll, so the retry cannot start earlier. Runs out of
    /// space rather than loops if the whole device fails.
    fn program_host_page(&mut self, mut t: SimTime) -> Result<(Ppn, SimTime), SsdError> {
        let plane = self.allocator.next_plane();
        loop {
            let block = self.allocator.take_active(plane, &self.flash)?;
            match self.flash.program_next(block, t) {
                Ok(ok) => return Ok(ok),
                Err(FlashOpError::ProgramFailed { ppn }) => {
                    t = self.flash.chip_free_at(ppn);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Moves a page whose read needed an ECC retry onto fresh flash in
    /// the same plane (scrubbing), so the next read of the content
    /// does not face the same marginal cells. Best-effort: if the
    /// plane is out of space or the relocation program itself fails,
    /// the data simply stays where it is — the host read has already
    /// completed correctly either way.
    fn scrub_relocate(&mut self, ppn: Ppn, at: SimTime) -> Result<(), SsdError> {
        let geometry = &self.config.geometry;
        let plane = geometry.plane_of_block(geometry.block_of(ppn));
        let dest_block = match self.allocator.take_active(plane, &self.flash) {
            Ok(block) => block,
            Err(SsdError::OutOfSpace { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        let (new_ppn, scrub_done) = match self.flash.copyback_page(ppn, dest_block, at) {
            Ok(ok) => ok,
            Err(FlashOpError::ProgramFailed { .. }) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        self.stats.scrub_programs += 1;
        self.stats
            .phases
            .add("scrub", scrub_done.saturating_since(at));
        self.emit(
            scrub_done,
            Event::Scrub {
                src: ppn,
                dest: new_ppn,
            },
        );
        let page = self
            .rmap
            .remove(ppn)
            .expect("mapped pages have physical-page records");
        for &owner in &page.owners {
            self.mapping.update(owner, new_ppn)?;
        }
        if let Some(dedup) = self.dedup.as_mut() {
            dedup.relocate(ppn, new_ppn)?;
        }
        self.rmap.insert(new_ppn, page);
        // The worn-out old copy is garbage but deliberately *not*
        // offered to the dead-value pool: its content is still live at
        // the new address, so revival would resurrect the suspect page.
        self.flash.invalidate_page(ppn)?;
        Ok(())
    }

    /// Runs GC on `plane` until it is back above the free-block
    /// watermark (or no block is reclaimable), returning when the
    /// reclamation pipeline drains — `now` unchanged if no GC ran.
    /// The caller charges that time to the triggering write.
    fn maybe_gc(&mut self, plane: u64, now: SimTime) -> Result<SimTime, SsdError> {
        let mut t = now;
        while self.allocator.free_blocks_in(plane) < self.config.gc_low_watermark as usize {
            let victim = self.gc.select_victim(
                &self.flash,
                plane,
                self.allocator.active_block(plane),
                self.pool.as_ref(),
            );
            match victim {
                Some(victim) => t = self.collect_block(victim, plane, t, false)?,
                None if self.allocator.free_blocks_in(plane) == 0 => {
                    // No *full* block is reclaimable but the plane is
                    // dry: the invalid pages are trapped in the active
                    // block (or nowhere). Retire and reclaim whichever
                    // block holds the most garbage, relocating its
                    // valid pages cross-plane if need be; erase does
                    // not require a full block — only programs are
                    // sequential.
                    let Some(victim) = self.emergency_victim(plane) else {
                        return Err(SsdError::OutOfSpace { plane });
                    };
                    if self.allocator.active_block(plane) == Some(victim) {
                        self.allocator.retire_active(plane);
                    }
                    t = self.collect_block(victim, plane, t, true)?;
                }
                None => break,
            }
        }
        let stalled = t.saturating_since(now);
        if stalled > SimDuration::ZERO {
            self.stats.phases.add("gc_stall", stalled);
        }
        Ok(t)
    }

    /// Last-resort victim: any block of the plane with invalid pages
    /// (including the active block, which is retired first), fullest
    /// of garbage first.
    fn emergency_victim(&self, plane: u64) -> Option<zssd_flash::BlockId> {
        let geometry = &self.config.geometry;
        let bpp = u64::from(geometry.blocks_per_plane());
        (plane * bpp..(plane + 1) * bpp)
            .map(zssd_flash::BlockId::new)
            .filter_map(|b| {
                let info = self.flash.block_info(b).ok()?;
                (info.invalid_pages > 0).then_some((b, info.invalid_pages))
            })
            .max_by_key(|&(_, invalid)| invalid)
            .map(|(b, _)| b)
    }

    /// Relocates the victim's valid pages, drops its garbage from the
    /// pool, erases it, and returns the erase completion time.
    fn collect_block(
        &mut self,
        victim: zssd_flash::BlockId,
        plane: u64,
        now: SimTime,
        emergency: bool,
    ) -> Result<SimTime, SsdError> {
        let geometry = self.config.geometry;
        // Payload assembly (the block-info lookup) is skipped entirely
        // when tracing is off; `emit` gates again internally.
        if self.events.is_some() {
            let info = self.flash.block_info(victim)?;
            self.emit(now, Event::GcStart { plane, emergency });
            self.emit(
                now,
                Event::GcVictim {
                    block: victim.index(),
                    valid: info.valid_pages,
                    invalid: info.invalid_pages,
                },
            );
        }
        let mut t = now;
        for ppn in geometry.pages_of(victim).collect::<Vec<_>>() {
            match self.flash.page_state(ppn)? {
                PageState::Valid => {
                    // In-plane relocation uses the copyback advanced
                    // command (tR + tPROG, no channel); the emergency
                    // cross-plane path falls back to read + program.
                    // Either way an injected program failure consumes
                    // the attempted destination page and the move
                    // retries on the next one.
                    let (new_ppn, done) = if emergency {
                        t = self.flash.read_page(ppn, t)?;
                        loop {
                            let (_, dest_block) = self.allocator.take_active_any(&self.flash)?;
                            match self.flash.program_next(dest_block, t) {
                                Ok(ok) => break ok,
                                Err(FlashOpError::ProgramFailed { ppn: failed }) => {
                                    t = self.flash.chip_free_at(failed);
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    } else {
                        loop {
                            let dest_block = self.allocator.take_active(plane, &self.flash)?;
                            match self.flash.copyback_page(ppn, dest_block, t) {
                                Ok(ok) => break ok,
                                Err(FlashOpError::ProgramFailed { ppn: failed }) => {
                                    t = self.flash.chip_free_at(failed);
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                    };
                    t = done;
                    self.stats.gc_programs += 1;
                    self.emit(
                        done,
                        Event::GcRelocate {
                            src: ppn,
                            dest: new_ppn,
                        },
                    );
                    let page = self
                        .rmap
                        .remove(ppn)
                        .expect("valid pages have physical-page records");
                    for &owner in &page.owners {
                        self.mapping.update(owner, new_ppn)?;
                    }
                    if let Some(dedup) = self.dedup.as_mut() {
                        if !page.owners.is_empty() {
                            dedup.relocate(ppn, new_ppn)?;
                        }
                    }
                    self.rmap.insert(new_ppn, page);
                    self.flash.invalidate_page(ppn)?;
                }
                PageState::Invalid => {
                    self.pool.remove_ppn(ppn);
                    self.rmap.remove(ppn);
                }
                // Bad pages never held data (a failed program consumed
                // them before any content landed), so like still-free
                // pages there is nothing to relocate or purge.
                PageState::Free | PageState::Bad => {}
            }
        }
        self.stats
            .phases
            .add("gc_relocate", t.saturating_since(now));
        let done = match self.flash.erase_block(victim, t) {
            Ok(done) => done,
            Err(FlashOpError::EraseFailed { .. }) => {
                // The failed pulse spent a full tBERS; retry once from
                // when the chip frees.
                let retry_at = self.flash.chip_free_at(geometry.first_ppn_of(victim));
                match self.flash.erase_block(victim, retry_at) {
                    Ok(done) => done,
                    Err(FlashOpError::EraseFailed { .. }) => {
                        let done = self.retire_victim(victim)?;
                        self.stats.phases.add("gc_erase", done.saturating_since(t));
                        return Ok(done);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(e) => return Err(e.into()),
        };
        self.stats.phases.add("gc_erase", done.saturating_since(t));
        self.allocator.on_block_erased(&geometry, victim);
        self.stats.gc_collections += 1;
        self.emit(
            done,
            Event::GcErase {
                block: victim.index(),
            },
        );
        Ok(done)
    }

    /// Gives up on a block whose erase failed twice: purges every
    /// remaining pool and reverse-map entry into it (so a zombie on
    /// dead flash can never be revived) and retires it for good. The
    /// block never returns to the allocator's free lists — the plane
    /// permanently shrinks by one block. Returns when the second
    /// failed erase pulse finished.
    fn retire_victim(&mut self, victim: zssd_flash::BlockId) -> Result<SimTime, SsdError> {
        let geometry = self.config.geometry;
        for ppn in geometry.pages_of(victim) {
            self.pool.remove_ppn(ppn);
            self.rmap.remove(ppn);
        }
        self.flash.retire_block(victim)?;
        self.stats.gc_collections += 1;
        Ok(self.flash.chip_free_at(geometry.first_ppn_of(victim)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::SimDuration;

    fn ssd(system: SystemKind) -> Ssd {
        // Pin faults off: these tests assert exact counters and
        // latencies, and the tiny drive has too little spare capacity
        // to absorb a `ZSSD_FAULTS` environment's block retirements.
        // Fault behaviour has its own tests with explicit configs.
        Ssd::new(
            SsdConfig::small_test()
                .without_precondition()
                .with_system(system)
                .with_faults(zssd_flash::FaultConfig::none()),
        )
        .expect("valid test drive")
    }

    fn w(ssd: &mut Ssd, lpn: u64, value: u64) -> SimTime {
        ssd.write(Lpn::new(lpn), ValueId::new(value), SimTime::ZERO)
            .expect("write succeeds")
    }

    #[test]
    fn baseline_programs_every_write() {
        let mut s = ssd(SystemKind::Baseline);
        for i in 0..10 {
            w(&mut s, i % 4, 7); // same value over and over
        }
        assert_eq!(s.stats().host_programs, 10);
        assert_eq!(s.stats().revived_writes, 0);
        assert_eq!(s.stats().deduped_writes, 0);
    }

    #[test]
    fn dvp_revives_zombie_pages() {
        let mut s = ssd(SystemKind::MqDvp { entries: 64 });
        w(&mut s, 0, 7); // create value 7
        w(&mut s, 0, 8); // kill it -> zombie holding 7
        w(&mut s, 1, 7); // rewrite 7 -> revival
        assert_eq!(s.stats().revived_writes, 1);
        assert_eq!(s.stats().host_programs, 2);
        assert_eq!(s.pool_stats().hits, 1);
        // The revived page serves reads with the right content.
        let (value, _) = s.read(Lpn::new(1), SimTime::ZERO).expect("read");
        assert_eq!(value, ValueId::new(7));
    }

    #[test]
    fn revival_is_cheaper_than_programming() {
        let mut s = ssd(SystemKind::MqDvp { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 0, 8);
        // Let the programs from the setup writes drain.
        let idle = SimTime::ZERO + SimDuration::from_millis(100);
        let done = s.write(Lpn::new(1), ValueId::new(7), idle).expect("write");
        // On an idle device a revival costs hash + completion transfer
        // — far below the 400 µs program it replaces.
        assert_eq!(done.saturating_since(idle), SimDuration::from_micros(17));
    }

    #[test]
    fn revival_on_busy_channel_waits_for_the_channel() {
        // small_test has a single channel, so any in-flight transfer
        // blocks the fast path.
        let mut s = ssd(SystemKind::MqDvp { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 0, 8); // value 7 dies -> zombie in the pool
                         // A host read holds the channel until its transfer completes.
        let (_, read_done) = s.read(Lpn::new(0), SimTime::ZERO).expect("read");
        // A DVP hit issued at t=0 must not complete before the channel
        // frees: it queues until read_done, then transfers out.
        let done = s
            .write(Lpn::new(1), ValueId::new(7), SimTime::ZERO)
            .expect("write");
        assert_eq!(s.stats().revived_writes, 1);
        assert_eq!(
            done,
            read_done + SimDuration::from_micros(5),
            "revival completion queues behind the busy channel"
        );
    }

    #[test]
    fn unmapped_reads_serialize_on_the_controller() {
        let mut s = ssd(SystemKind::Baseline);
        let (_, d1) = s.read(Lpn::new(5), SimTime::ZERO).expect("read");
        let (_, d2) = s.read(Lpn::new(6), SimTime::ZERO).expect("read");
        assert_eq!(
            d1.saturating_since(SimTime::ZERO),
            SimDuration::from_micros(5)
        );
        assert_eq!(
            d2,
            d1 + SimDuration::from_micros(5),
            "second waits its turn"
        );
    }

    #[test]
    fn dedup_shares_live_copies() {
        let mut s = ssd(SystemKind::Dedup);
        w(&mut s, 0, 7);
        w(&mut s, 1, 7); // deduped against the live copy
        w(&mut s, 2, 7); // deduped again
        assert_eq!(s.stats().host_programs, 1);
        assert_eq!(s.stats().deduped_writes, 2);
        let (v, _) = s.read(Lpn::new(2), SimTime::ZERO).expect("read");
        assert_eq!(v, ValueId::new(7));
    }

    #[test]
    fn dedup_death_only_at_last_reference() {
        let mut s = ssd(SystemKind::DvpPlusDedup { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 1, 7); // refcount 2
        w(&mut s, 0, 8); // refcount 1 -> no death
        assert_eq!(s.flash().total_invalid_pages(), 0);
        w(&mut s, 1, 9); // refcount 0 -> death, zombie enters pool
        assert_eq!(s.flash().total_invalid_pages(), 1);
        w(&mut s, 2, 7); // revival from the pool
        assert_eq!(s.stats().revived_writes, 1);
        // Value 7 is live again; a new copy dedups against it (the
        // earlier w(1, 7) was the first dedup hit).
        w(&mut s, 3, 7);
        assert_eq!(s.stats().deduped_writes, 2);
    }

    #[test]
    fn same_content_overwrite_under_dedup_is_noop() {
        let mut s = ssd(SystemKind::Dedup);
        w(&mut s, 0, 7);
        w(&mut s, 0, 7); // rewrite identical content in place
        assert_eq!(s.stats().host_programs, 1);
        assert_eq!(s.stats().deduped_writes, 1);
        assert_eq!(s.flash().total_invalid_pages(), 0);
    }

    #[test]
    fn overwrites_create_zombies_and_gc_reclaims() {
        let mut s = ssd(SystemKind::Baseline);
        // 256 physical pages, 192 logical; hammer a few pages until GC
        // must run.
        for i in 0..400u64 {
            w(&mut s, i % 8, 1000 + i);
        }
        let report = s.into_report();
        assert!(report.erases > 0, "GC must have reclaimed blocks");
        assert_eq!(report.host_programs, 400);
        assert!(report.gc_programs < 400);
    }

    #[test]
    fn reads_of_unmapped_pages_return_initial_content() {
        let mut s = ssd(SystemKind::Baseline);
        let (v, done) = s.read(Lpn::new(5), SimTime::ZERO).expect("read");
        assert_eq!(v, initial_value_of(Lpn::new(5)));
        assert_eq!(
            done.saturating_since(SimTime::ZERO),
            SimDuration::from_micros(5)
        );
    }

    #[test]
    fn preconditioned_drive_serves_reads_from_flash() {
        let mut s = Ssd::new(SsdConfig::small_test()).expect("drive");
        let (v, done) = s.read(Lpn::new(3), SimTime::ZERO).expect("read");
        assert_eq!(v, initial_value_of(Lpn::new(3)));
        // A real flash read: sense + transfer.
        assert_eq!(
            done.saturating_since(SimTime::ZERO),
            SimDuration::from_micros(80)
        );
        // Warm-up left no residue in the counters.
        assert_eq!(s.stats().host_writes, 0);
        assert_eq!(s.flash().stats().programs.get(), 0);
    }

    #[test]
    fn run_trace_produces_report() {
        let records = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)),
            TraceRecord::write(1, Lpn::new(0), ValueId::new(2)),
            TraceRecord::read(2, Lpn::new(0), ValueId::new(2)),
            TraceRecord::write(3, Lpn::new(1), ValueId::new(1)),
        ];
        let report = Ssd::new(
            SsdConfig::small_test()
                .without_precondition()
                .with_system(SystemKind::MqDvp { entries: 16 }),
        )
        .expect("drive")
        .run_trace(&records)
        .expect("run");
        assert_eq!(report.host_writes, 3);
        assert_eq!(report.host_reads, 1);
        assert_eq!(report.revived_writes, 1);
        assert_eq!(report.all_latency.count, 4);
    }

    #[test]
    fn stamped_arrivals_override_the_configured_process() {
        // Two writes both stamped at t=0 on the single-channel test
        // drive must contend; under the default 1 ms constant process
        // they would not.
        let records = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)).with_arrival(SimTime::ZERO),
            TraceRecord::write(1, Lpn::new(1), ValueId::new(2)).with_arrival(SimTime::ZERO),
        ];
        let report = Ssd::new(SsdConfig::small_test().without_precondition())
            .expect("drive")
            .run_trace(&records)
            .expect("run");
        assert!(
            report.write_latency.max > SimDuration::from_micros(405),
            "simultaneous stamped writes must queue: {:?}",
            report.write_latency
        );
        // The same trace unstamped, 1 ms apart, sees no queueing.
        let relaxed = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)),
            TraceRecord::write(1, Lpn::new(1), ValueId::new(2)),
        ];
        let relaxed_report = Ssd::new(SsdConfig::small_test().without_precondition())
            .expect("drive")
            .run_trace(&relaxed)
            .expect("run");
        assert!(report.write_latency.max > relaxed_report.write_latency.max);
    }

    #[test]
    fn run_trace_services_trims() {
        let records = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)),
            TraceRecord::trim(1, Lpn::new(0)),
            TraceRecord::read(2, Lpn::new(0), initial_value_of(Lpn::new(0))),
        ];
        let report = Ssd::new(SsdConfig::small_test().without_precondition())
            .expect("drive")
            .run_trace(&records)
            .expect("run");
        assert_eq!(report.trims, 1);
        assert_eq!(report.read_mismatches, 0, "trimmed page reads as initial");
        // Trims record no latency sample.
        assert_eq!(report.all_latency.count, 2);
    }

    #[test]
    fn read_mismatches_are_counted() {
        let records = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)),
            TraceRecord::read(1, Lpn::new(0), ValueId::new(999)), // wrong
        ];
        let report = Ssd::new(
            SsdConfig::small_test()
                .without_precondition()
                .with_verify_reads(false),
        )
        .expect("drive")
        .run_trace(&records)
        .expect("run");
        assert_eq!(report.read_mismatches, 1);
    }

    #[test]
    fn ideal_pool_never_evicts_tracked_zombies() {
        let mut s = ssd(SystemKind::Ideal);
        for i in 0..20u64 {
            w(&mut s, i % 8, i); // many distinct deaths
        }
        assert_eq!(s.pool_stats().evictions, 0);
    }

    #[test]
    fn lxssd_system_constructs_and_recycles() {
        let mut s = ssd(SystemKind::LxSsd { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 0, 8);
        w(&mut s, 1, 7);
        assert_eq!(s.stats().revived_writes, 1);
    }

    #[test]
    fn out_of_range_lpn_is_an_error() {
        let mut s = ssd(SystemKind::Baseline);
        assert!(s
            .write(Lpn::new(100_000), ValueId::new(1), SimTime::ZERO)
            .is_err());
        assert!(s.read(Lpn::new(100_000), SimTime::ZERO).is_err());
    }

    #[test]
    fn write_clock_counts_host_writes() {
        let mut s = ssd(SystemKind::Baseline);
        w(&mut s, 0, 1);
        w(&mut s, 1, 2);
        s.read(Lpn::new(0), SimTime::ZERO).expect("read");
        assert_eq!(s.write_clock().count(), 2);
    }

    #[test]
    fn gc_relocates_shared_dedup_pages_and_keeps_all_owners() {
        // Three logical pages share one physical copy; hammer other
        // addresses until GC relocates the shared page, then verify
        // every owner still reads the shared content.
        let mut s = ssd(SystemKind::Dedup);
        for lpn in 0..3u64 {
            w(&mut s, lpn, 7);
        }
        for i in 0..600u64 {
            w(&mut s, 3 + (i % 5), 1000 + i);
        }
        let report_erases = s.flash().stats().erases.get();
        assert!(report_erases > 0, "GC must have run");
        for lpn in 0..3u64 {
            let (v, _) = s.read(Lpn::new(lpn), SimTime::ZERO).expect("read");
            assert_eq!(v, ValueId::new(7), "shared copy intact at L{lpn}");
        }
    }

    #[test]
    fn revived_pages_survive_gc_relocation() {
        let mut s = ssd(SystemKind::MqDvp { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 0, 8); // 7 dies
        w(&mut s, 1, 7); // revived
        assert_eq!(s.stats().revived_writes, 1);
        // Churn until GC relocates the revived page.
        for i in 0..600u64 {
            w(&mut s, 2 + (i % 6), 1000 + i);
        }
        assert!(s.flash().stats().erases.get() > 0);
        let (v, _) = s.read(Lpn::new(1), SimTime::ZERO).expect("read");
        assert_eq!(v, ValueId::new(7), "revived content survives GC moves");
    }

    #[test]
    fn reads_refresh_lxssd_entries_through_the_device() {
        // The Ssd wires read traffic into the pool notification hook;
        // with LX-SSD that bumps the garbage entry popularity.
        let mut s = ssd(SystemKind::LxSsd { entries: 64 });
        w(&mut s, 0, 7);
        w(&mut s, 0, 8); // 7 dies at L0
        let old_ppn = {
            // Find the tracked garbage page via its weight.
            let mut found = None;
            for idx in 0..s.flash().geometry().total_pages() {
                let ppn = Ppn::new(idx);
                if s.pool.garbage_weight(ppn).is_some() {
                    found = Some(ppn);
                }
            }
            found.expect("one tracked zombie")
        };
        let before = s.pool.garbage_weight(old_ppn).expect("tracked");
        s.read(Lpn::new(0), SimTime::ZERO).expect("read");
        let after = s.pool.garbage_weight(old_ppn).expect("still tracked");
        assert!(after > before, "a read must bump LX-SSD popularity");
    }

    #[test]
    fn trim_of_unmapped_page_is_a_noop() {
        let mut s = ssd(SystemKind::MqDvp { entries: 16 });
        s.trim(Lpn::new(0)).expect("trim unmapped");
        assert_eq!(s.stats().trims, 1);
        assert_eq!(s.flash().total_invalid_pages(), 0);
        assert!(s.trim(Lpn::new(100_000)).is_err(), "address checked");
    }

    #[test]
    fn trim_counts_once_per_command_and_is_idempotent() {
        let mut s = ssd(SystemKind::MqDvp { entries: 16 });
        w(&mut s, 0, 7);
        s.trim(Lpn::new(0)).expect("trim");
        assert_eq!(s.stats().trims, 1);
        assert_eq!(s.flash().total_invalid_pages(), 1);
        let pool_len = s.pool_len();
        // Trimming the same page again acknowledges the command but
        // kills nothing a second time.
        s.trim(Lpn::new(0)).expect("re-trim");
        assert_eq!(s.stats().trims, 2);
        assert_eq!(s.flash().total_invalid_pages(), 1);
        assert_eq!(s.pool_len(), pool_len);
        // A never-written page: counted once, nothing dies.
        s.trim(Lpn::new(50)).expect("trim unmapped");
        assert_eq!(s.stats().trims, 3);
        assert_eq!(s.flash().total_invalid_pages(), 1);
        s.check_invariants().expect("consistent after trims");
    }

    #[test]
    fn program_failures_retry_onto_fresh_pages() {
        let config = SsdConfig::small_test().without_precondition().with_faults(
            zssd_flash::FaultConfig::none()
                .with_program_fail(0.1)
                .with_seed(42),
        );
        let mut s = Ssd::new(config).expect("drive");
        let mut shadow = std::collections::HashMap::new();
        for i in 0..400u64 {
            let lpn = (i * 13) % 64;
            let value = 1000 + i;
            s.write(Lpn::new(lpn), ValueId::new(value), SimTime::ZERO)
                .unwrap_or_else(|e| panic!("write {i} failed: {e}"));
            shadow.insert(lpn, value);
        }
        let flash = s.flash().stats();
        assert!(flash.program_failures.get() > 0, "faults must have fired");
        assert!(s.flash().total_bad_pages() > 0);
        // Every host write still landed somewhere despite the retries.
        assert_eq!(s.stats().host_programs, 400);
        s.check_invariants()
            .unwrap_or_else(|e| panic!("invariants violated: {e}"));
        for (&lpn, &value) in &shadow {
            let (got, _) = s.read(Lpn::new(lpn), SimTime::ZERO).expect("read");
            assert_eq!(got, ValueId::new(value), "content at L{lpn}");
        }
    }

    #[test]
    fn repeated_erase_failures_retire_the_block() {
        let config = SsdConfig::small_test().without_precondition().with_faults(
            zssd_flash::FaultConfig::none()
                .with_erase_fail(1.0)
                .with_seed(7),
        );
        let mut s = Ssd::new(config).expect("drive");
        let mut shadow = std::collections::HashMap::new();
        for i in 0..2000u64 {
            let lpn = i % 8;
            let value = 1000 + i;
            s.write(Lpn::new(lpn), ValueId::new(value), SimTime::ZERO)
                .unwrap_or_else(|e| panic!("write {i} failed: {e}"));
            shadow.insert(lpn, value);
            if s.flash().stats().retired_blocks.get() >= 1 {
                break;
            }
        }
        let flash = s.flash().stats();
        assert!(flash.retired_blocks.get() >= 1, "a block must have retired");
        assert!(
            flash.erase_failures.get() >= 2,
            "retirement takes two failures"
        );
        assert_eq!(flash.erases.get(), 0, "every erase attempt failed");
        s.check_invariants()
            .unwrap_or_else(|e| panic!("invariants violated: {e}"));
        for (&lpn, &value) in &shadow {
            let (got, _) = s.read(Lpn::new(lpn), SimTime::ZERO).expect("read");
            assert_eq!(got, ValueId::new(value), "content at L{lpn}");
        }
    }

    #[test]
    fn read_retries_scrub_the_suspect_page() {
        let config = SsdConfig::small_test().without_precondition().with_faults(
            zssd_flash::FaultConfig::none()
                .with_read_error(1.0)
                .with_seed(1),
        );
        let mut s = Ssd::new(config).expect("drive");
        w(&mut s, 0, 7);
        let (v, done) = s.read(Lpn::new(0), SimTime::ZERO).expect("read");
        assert_eq!(v, ValueId::new(7));
        assert_eq!(s.flash().stats().read_retries.get(), 1);
        assert_eq!(s.stats().scrub_programs, 1, "suspect page relocated");
        s.check_invariants().expect("consistent after scrubbing");
        // The content survives at its new address (where this read —
        // with the error rate pinned at 1.0 — retries and scrubs again).
        let (v2, _) = s.read(Lpn::new(0), done).expect("read");
        assert_eq!(v2, ValueId::new(7));
        assert_eq!(s.stats().scrub_programs, 2);
    }

    #[test]
    fn event_trace_matches_counters_and_is_causally_ordered() {
        let config = SsdConfig::small_test()
            .without_precondition()
            .with_system(SystemKind::MqDvp { entries: 64 })
            .with_faults(zssd_flash::FaultConfig::none())
            .with_event_tracing(true);
        let mut s = Ssd::new(config).expect("drive");
        w(&mut s, 0, 7);
        w(&mut s, 0, 8); // 7 dies
        w(&mut s, 1, 7); // revived
        s.read(Lpn::new(1), SimTime::ZERO).expect("read");
        for i in 0..400u64 {
            // churn until GC runs
            w(&mut s, 2 + (i % 6), 1000 + i);
        }
        assert!(!s.events().is_empty(), "live accessor sees the trace");
        let report = s.into_report();
        let count = |kind: &str| {
            report
                .events
                .iter()
                .filter(|e| e.event.kind() == kind)
                .count() as u64
        };
        assert_eq!(count("host_write"), report.host_writes);
        assert_eq!(count("host_read"), report.host_reads);
        assert_eq!(count("revive"), report.revived_writes);
        assert_eq!(count("gc_erase"), report.erases);
        assert_eq!(count("gc_relocate"), report.gc_programs);
        assert!(count("gc_start") >= report.gc_collections);
        assert_eq!(count("gc_victim"), count("gc_start"));
        assert_eq!(count("fault"), 0, "faults pinned off");
        for (i, e) in report.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "gapless run-global sequence");
        }
        // Phase timers saw the same GC work the events did.
        assert_eq!(report.phases.get("gc_erase").count, report.erases);
        assert!(report.phases.get("gc_stall").total > SimDuration::ZERO);
    }

    #[test]
    fn tracing_disabled_changes_nothing_and_records_nothing() {
        let run = |trace: bool| {
            let config = SsdConfig::small_test()
                .without_precondition()
                .with_system(SystemKind::MqDvp { entries: 64 })
                .with_faults(zssd_flash::FaultConfig::none())
                .with_event_tracing(trace);
            let mut s = Ssd::new(config).expect("drive");
            for i in 0..400u64 {
                w(&mut s, i % 8, 1000 + (i % 13));
            }
            s.read(Lpn::new(0), SimTime::ZERO).expect("read");
            s.into_report()
        };
        let off = run(false);
        let on = run(true);
        assert!(off.events.is_empty());
        assert!(!on.events.is_empty());
        // Tracing must be observationally free: every counter, digest,
        // and sample of the two runs is identical.
        let mut on_stripped = on.clone();
        on_stripped.events.clear();
        assert_eq!(off, on_stripped);
    }

    #[test]
    fn preconditioning_leaves_no_events_in_the_trace() {
        let config = SsdConfig::small_test()
            .with_system(SystemKind::MqDvp { entries: 64 })
            .with_faults(zssd_flash::FaultConfig::none())
            .with_event_tracing(true);
        let mut s = Ssd::new(config).expect("drive");
        assert!(s.events().is_empty(), "warm-up fill is not traced");
        w(&mut s, 0, 7);
        let events = s.events();
        assert_eq!(events.last().map(|e| e.event.kind()), Some("host_write"));
        assert_eq!(events[0].seq, 0, "sequencing restarts after warm-up");
    }

    #[test]
    fn sustained_random_overwrites_stay_consistent() {
        // Endurance smoke test across all systems: hammer random-ish
        // addresses well past device turnover and verify read-back.
        for system in [
            SystemKind::Baseline,
            SystemKind::MqDvp { entries: 32 },
            SystemKind::LruDvp { entries: 32 },
            SystemKind::Dedup,
            SystemKind::DvpPlusDedup { entries: 32 },
            SystemKind::Ideal,
            SystemKind::LxSsd { entries: 32 },
        ] {
            let mut s = ssd(system);
            let mut shadow = std::collections::HashMap::new();
            for i in 0..2000u64 {
                let lpn = (i * 37 + i / 13) % 192;
                let value = (i * 31) % 23; // small value space -> reuse
                s.write(Lpn::new(lpn), ValueId::new(value), SimTime::ZERO)
                    .unwrap_or_else(|e| panic!("{system}: write {i} failed: {e}"));
                shadow.insert(lpn, value);
            }
            for (&lpn, &value) in &shadow {
                let (got, _) = s.read(Lpn::new(lpn), SimTime::ZERO).expect("read");
                assert_eq!(got, ValueId::new(value), "{system}: content at L{lpn}");
            }
            s.check_invariants()
                .unwrap_or_else(|e| panic!("{system}: invariants violated: {e}"));
        }
    }
}
