//! The reverse map: physical page → content record.
//!
//! Every live or garbage physical page carries a [`PhysPage`] record
//! (its fingerprint, content identity, and owning logical pages). The
//! write path probes this map on every revival, dedup hit, kill, and
//! GC relocation, so its representation matters:
//!
//! * [`Rmap::Dense`] — a `Vec<Option<PhysPage>>` indexed directly by
//!   PPN. Physical page numbers are dense by construction (the flash
//!   geometry numbers them `0..total_pages`), so a flat vector turns
//!   every probe into one bounds-checked array access with no hashing.
//!   This is the default.
//! * [`Rmap::Sparse`] — the original `HashMap<Ppn, PhysPage>`. Kept
//!   behind [`SsdConfig::with_sparse_rmap`] as an equivalence oracle:
//!   property tests replay the same trace against both representations
//!   and assert identical [`RunReport`]s.
//!
//! [`SsdConfig::with_sparse_rmap`]: crate::SsdConfig::with_sparse_rmap
//! [`RunReport`]: crate::RunReport

use std::collections::HashMap;

use zssd_types::{Fingerprint, Lpn, Ppn, ValueId};

/// What the controller knows about the data in one physical page:
/// its content identity and the logical pages referencing it (empty
/// for garbage pages — kept so revival and GC know the content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PhysPage {
    pub(crate) fp: Fingerprint,
    pub(crate) value: ValueId,
    pub(crate) owners: Vec<Lpn>,
}

/// Reverse mapping from physical page numbers to their records.
#[derive(Debug)]
pub(crate) enum Rmap {
    /// Direct-indexed by PPN; one slot per physical page.
    Dense(Vec<Option<PhysPage>>),
    /// Hash-mapped; the pre-optimization representation, kept as an
    /// equivalence oracle for property tests.
    Sparse(HashMap<Ppn, PhysPage>),
}

impl Rmap {
    /// A dense map with one (empty) slot per physical page.
    pub(crate) fn dense(total_pages: u64) -> Self {
        let slots = usize::try_from(total_pages).expect("page count fits in memory");
        Rmap::Dense(vec![None; slots])
    }

    /// An empty hash-based map.
    pub(crate) fn sparse() -> Self {
        Rmap::Sparse(HashMap::new())
    }

    /// The record of `ppn`, if one is tracked.
    #[inline]
    pub(crate) fn get(&self, ppn: Ppn) -> Option<&PhysPage> {
        match self {
            Rmap::Dense(slots) => slots.get(ppn.index() as usize)?.as_ref(),
            Rmap::Sparse(map) => map.get(&ppn),
        }
    }

    /// Mutable access to the record of `ppn`, if one is tracked.
    #[inline]
    pub(crate) fn get_mut(&mut self, ppn: Ppn) -> Option<&mut PhysPage> {
        match self {
            Rmap::Dense(slots) => slots.get_mut(ppn.index() as usize)?.as_mut(),
            Rmap::Sparse(map) => map.get_mut(&ppn),
        }
    }

    /// Tracks `page` at `ppn`, returning the previous record if any.
    ///
    /// # Panics
    ///
    /// A dense map panics if `ppn` is beyond the geometry it was sized
    /// for — that would mean the flash layer produced an address it
    /// never announced.
    #[inline]
    pub(crate) fn insert(&mut self, ppn: Ppn, page: PhysPage) -> Option<PhysPage> {
        match self {
            Rmap::Dense(slots) => slots[ppn.index() as usize].replace(page),
            Rmap::Sparse(map) => map.insert(ppn, page),
        }
    }

    /// Stops tracking `ppn`, returning its record if one existed.
    #[inline]
    pub(crate) fn remove(&mut self, ppn: Ppn) -> Option<PhysPage> {
        match self {
            Rmap::Dense(slots) => slots.get_mut(ppn.index() as usize)?.take(),
            Rmap::Sparse(map) => map.remove(&ppn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(value: u64, owners: &[u64]) -> PhysPage {
        PhysPage {
            fp: Fingerprint::of_value(ValueId::new(value)),
            value: ValueId::new(value),
            owners: owners.iter().copied().map(Lpn::new).collect(),
        }
    }

    fn exercise(mut rmap: Rmap) {
        assert!(rmap.get(Ppn::new(3)).is_none());
        assert!(rmap.insert(Ppn::new(3), page(7, &[0])).is_none());
        assert_eq!(rmap.get(Ppn::new(3)), Some(&page(7, &[0])));
        rmap.get_mut(Ppn::new(3))
            .expect("tracked")
            .owners
            .push(Lpn::new(1));
        assert_eq!(rmap.get(Ppn::new(3)), Some(&page(7, &[0, 1])));
        let old = rmap.insert(Ppn::new(3), page(8, &[2]));
        assert_eq!(old, Some(page(7, &[0, 1])));
        assert_eq!(rmap.remove(Ppn::new(3)), Some(page(8, &[2])));
        assert!(rmap.remove(Ppn::new(3)).is_none());
        assert!(rmap.get_mut(Ppn::new(3)).is_none());
    }

    #[test]
    fn dense_round_trips() {
        exercise(Rmap::dense(16));
    }

    #[test]
    fn sparse_round_trips() {
        exercise(Rmap::sparse());
    }

    #[test]
    fn dense_out_of_range_reads_are_none() {
        let mut rmap = Rmap::dense(4);
        assert!(rmap.get(Ppn::new(4)).is_none());
        assert!(rmap.get_mut(Ppn::new(4)).is_none());
        assert!(rmap.remove(Ppn::new(4)).is_none());
    }

    #[test]
    #[should_panic]
    fn dense_out_of_range_insert_panics() {
        let mut rmap = Rmap::dense(4);
        rmap.insert(Ppn::new(4), page(1, &[]));
    }
}
