//! The flash translation layer and full-device model of `zombie-ssd`.
//!
//! This crate assembles the substrates into the device the paper
//! simulates (a modified SSDSim):
//!
//! * [`MappingTable`] — page-level LPN→PPN map carrying the paper's
//!   1-byte popularity counter per logical page (§IV-C, Fig 8),
//! * [`Allocator`] — striped active-block allocation across planes
//!   with per-plane free lists,
//! * [`GcPolicy`] / [`GreedyGc`] / [`PopularityAwareGc`] — victim
//!   selection, including the paper's popularity-aware selector that
//!   delays erasing blocks holding popular garbage (§IV-D),
//! * [`Ssd`] — the device: write/read service paths wiring the
//!   dead-value pool ([`zssd_core`]) and optional deduplication
//!   ([`zssd_dedup`]) into the FTL, garbage collection, and latency
//!   accounting on the [`zssd_flash`] timing model,
//! * [`SsdConfig`] — a builder with Table I defaults and scaled-down
//!   presets for experiments,
//! * [`RunReport`] — everything the paper's figures report: write /
//!   erase counts and mean / p99 latencies.
//!
//! # Examples
//!
//! ```
//! use zssd_core::SystemKind;
//! use zssd_ftl::{Ssd, SsdConfig};
//! use zssd_trace::{SyntheticTrace, WorkloadProfile};
//!
//! let profile = WorkloadProfile::mail().scaled(0.005);
//! let trace = SyntheticTrace::generate(&profile, 1);
//!
//! let baseline = Ssd::new(SsdConfig::for_footprint(profile.lpn_space))?
//!     .run_trace(trace.records())?;
//! let dvp = Ssd::new(
//!     SsdConfig::for_footprint(profile.lpn_space)
//!         .with_system(SystemKind::MqDvp { entries: 4096 }),
//! )?
//! .run_trace(trace.records())?;
//!
//! // Mail is redundant: recycling zombies must eliminate programs.
//! assert!(dvp.flash_programs < baseline.flash_programs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod config;
mod error;
mod gc;
mod mapping;
mod rmap;
mod ssd;
mod stats;

pub use allocator::Allocator;
pub use config::SsdConfig;
pub use error::SsdError;
pub use gc::{GcPolicy, GreedyGc, PopularityAwareGc};
pub use mapping::MappingTable;
pub use ssd::Ssd;
pub use stats::{RunReport, SsdStats};
