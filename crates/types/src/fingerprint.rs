//! 16-byte content fingerprints.
//!
//! The paper's traces carry the MD5 (16 B) of every 4 KB request and
//! the drive is assumed to own a hash engine with a 12 µs latency. The
//! simulator does not need a cryptographic digest — only a 128-bit
//! identifier whose collisions are negligible — so [`Fingerprint`]
//! mixes its input through two independent rounds of a strong 64-bit
//! finalizer (the SplitMix64/Murmur3 avalanche). The substitution is
//! recorded in `DESIGN.md`.

use core::fmt;

use crate::ValueId;

/// Size of one flash page / host request payload, in bytes (§II-A:
/// "All traces contain identical request sizes of 4KB").
pub const PAGE_SIZE_BYTES: usize = 4096;

/// A deterministic 4 KB page image for a [`ValueId`].
///
/// Used by tests and examples that want to exercise byte-level hashing
/// rather than the fast id-level path.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: Box<[u8; PAGE_SIZE_BYTES]>,
}

impl PageBuf {
    /// Expands a value id into its canonical 4 KB page image.
    ///
    /// Distinct ids produce distinct images (the id is embedded in the
    /// first 8 bytes) and the remainder is a fixed pseudo-random fill
    /// keyed by the id, so images look like incompressible data.
    pub fn for_value(value: ValueId) -> Self {
        let mut bytes = Box::new([0u8; PAGE_SIZE_BYTES]);
        let mut state = value.raw() ^ 0x9e37_79b9_7f4a_7c15;
        for chunk in bytes.chunks_exact_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        bytes[..8].copy_from_slice(&value.raw().to_le_bytes());
        PageBuf { bytes }
    }

    /// Returns the page contents.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE_BYTES] {
        &self.bytes
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PageBuf {{ value: {:#x}, .. }}",
            u64::from_le_bytes(self.bytes[..8].try_into().expect("8 bytes"))
        )
    }
}

/// A 16-byte content hash, the unit stored in dead-value-pool entries.
///
/// Stands in for the MD5/SHA-1 digests carried by the FIU/OSU traces.
/// Equal contents (equal [`ValueId`]s) always produce equal
/// fingerprints; distinct contents collide with probability ~2⁻¹²⁸.
///
/// # Examples
///
/// ```
/// use zssd_types::{Fingerprint, ValueId};
/// let fp = Fingerprint::of_value(ValueId::new(1));
/// assert_eq!(fp.as_bytes().len(), 16);
/// assert_eq!(fp, Fingerprint::of_value(ValueId::new(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Computes the fingerprint of a value id (the simulator fast path).
    ///
    /// The id is avalanched through two independently-seeded 64-bit
    /// finalizers; the results form the high and low halves.
    #[inline]
    pub fn of_value(value: ValueId) -> Self {
        let hi = splitmix64(value.raw() ^ 0xa076_1d64_78bd_642f);
        let lo = splitmix64(value.raw() ^ 0xe703_7ed1_a0b4_28db);
        Fingerprint(((hi as u128) << 64) | lo as u128)
    }

    /// Computes the fingerprint of raw bytes (FNV-1a folded to 128 bits
    /// with per-half offset bases), used when byte-level realism is
    /// wanted, e.g. hashing a [`PageBuf`].
    pub fn of_bytes(bytes: &[u8]) -> Self {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        let mut h2: u64 = 0x84222325_cbf29ce4;
        for &b in bytes {
            h1 = (h1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            h2 = (h2 ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
        }
        // Avalanche both halves so short inputs still disperse.
        Fingerprint(((splitmix64(h1) as u128) << 64) | splitmix64(h2) as u128)
    }

    /// Returns the digest as 16 big-endian bytes.
    pub fn as_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Reconstructs a fingerprint from 16 big-endian bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Fingerprint(u128::from_be_bytes(bytes))
    }

    /// Returns the raw 128-bit digest.
    pub const fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::LowerHex for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<ValueId> for Fingerprint {
    fn from(value: ValueId) -> Self {
        Fingerprint::of_value(value)
    }
}

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
#[inline]
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equal_values_equal_fingerprints() {
        assert_eq!(
            Fingerprint::of_value(ValueId::new(77)),
            Fingerprint::of_value(ValueId::new(77))
        );
    }

    #[test]
    fn distinct_values_distinct_fingerprints() {
        let fps: HashSet<Fingerprint> = (0..100_000u64)
            .map(|v| Fingerprint::of_value(ValueId::new(v)))
            .collect();
        assert_eq!(fps.len(), 100_000, "no collisions over 100k ids");
    }

    #[test]
    fn byte_round_trip() {
        let fp = Fingerprint::of_value(ValueId::new(5));
        assert_eq!(Fingerprint::from_bytes(fp.as_bytes()), fp);
    }

    #[test]
    fn of_bytes_differs_on_single_bit_flip() {
        let mut a = [0u8; 64];
        let fp_a = Fingerprint::of_bytes(&a);
        a[17] ^= 1;
        assert_ne!(Fingerprint::of_bytes(&a), fp_a);
    }

    #[test]
    fn page_buf_embeds_value_and_is_deterministic() {
        let p1 = PageBuf::for_value(ValueId::new(123));
        let p2 = PageBuf::for_value(ValueId::new(123));
        assert_eq!(p1, p2);
        assert_eq!(&p1.as_bytes()[..8], &123u64.to_le_bytes());
        assert_ne!(p1, PageBuf::for_value(ValueId::new(124)));
    }

    #[test]
    fn page_buf_hashes_agree_with_inequality_of_values() {
        let h1 = Fingerprint::of_bytes(PageBuf::for_value(ValueId::new(1)).as_bytes());
        let h2 = Fingerprint::of_bytes(PageBuf::for_value(ValueId::new(2)).as_bytes());
        assert_ne!(h1, h2);
    }

    #[test]
    fn display_is_32_hex_chars() {
        let s = Fingerprint::of_value(ValueId::new(9)).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
