//! The paper's 1-byte popularity counter (§IV-C).
//!
//! "Not to lose the popularity information of a data block once it is
//! evicted from the dead-value pool, we add 8 bits (1 byte) to the
//! LPN-to-PPN mapping table which counts the popularity of a data
//! block." Only *write* popularity is tracked, per the paper's critique
//! of LX-SSD (footnote 3).

use core::fmt;

/// A saturating 8-bit write-popularity counter ("reference count" /
/// "popularity degree" in the paper — the number of writes of a value).
///
/// The MQ promotion rule uses `log2(degree + 1)` as the target queue
/// index; [`PopularityDegree::queue_index`] implements that function.
///
/// # Examples
///
/// ```
/// use zssd_types::PopularityDegree;
/// let mut pop = PopularityDegree::ZERO;
/// assert_eq!(pop.queue_index(), 0);
/// for _ in 0..3 { pop.increment(); }
/// assert_eq!(pop.get(), 3);
/// assert_eq!(pop.queue_index(), 2); // log2(3+1) = 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PopularityDegree(u8);

impl PopularityDegree {
    /// A never-written value.
    pub const ZERO: PopularityDegree = PopularityDegree(0);

    /// The saturation ceiling of the 1-byte counter.
    pub const MAX: PopularityDegree = PopularityDegree(u8::MAX);

    /// Creates a degree from a raw count.
    #[inline]
    pub const fn new(count: u8) -> Self {
        PopularityDegree(count)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Increments the counter, saturating at 255.
    #[inline]
    pub fn increment(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Returns the incremented degree without mutating `self`.
    #[inline]
    pub const fn incremented(self) -> PopularityDegree {
        PopularityDegree(self.0.saturating_add(1))
    }

    /// The MQ target queue index: `floor(log2(degree + 1))` (§IV-C).
    ///
    /// Degrees 0 → 0, 1–2 → 1, 3–6 → 2, 7–14 → 3, … so each queue
    /// covers a geometric band of popularity, as in the original MQ
    /// algorithm.
    #[inline]
    pub const fn queue_index(self) -> usize {
        (self.0 as u16 + 1).ilog2() as usize
    }
}

impl fmt::Display for PopularityDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}

impl From<u8> for PopularityDegree {
    fn from(count: u8) -> Self {
        PopularityDegree(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_saturate() {
        let mut pop = PopularityDegree::new(254);
        pop.increment();
        assert_eq!(pop, PopularityDegree::MAX);
        pop.increment();
        assert_eq!(pop, PopularityDegree::MAX);
        assert_eq!(PopularityDegree::MAX.incremented(), PopularityDegree::MAX);
    }

    #[test]
    fn queue_index_is_log2_of_degree_plus_one() {
        assert_eq!(PopularityDegree::new(0).queue_index(), 0);
        assert_eq!(PopularityDegree::new(1).queue_index(), 1);
        assert_eq!(PopularityDegree::new(2).queue_index(), 1);
        assert_eq!(PopularityDegree::new(3).queue_index(), 2);
        assert_eq!(PopularityDegree::new(6).queue_index(), 2);
        assert_eq!(PopularityDegree::new(7).queue_index(), 3);
        assert_eq!(PopularityDegree::new(127).queue_index(), 7);
        assert_eq!(PopularityDegree::new(255).queue_index(), 8);
    }

    #[test]
    fn queue_index_is_monotone() {
        let mut last = 0;
        for d in 0..=255u8 {
            let q = PopularityDegree::new(d).queue_index();
            assert!(q >= last, "queue index must not decrease");
            last = q;
        }
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(PopularityDegree::new(5).to_string(), "pop5");
    }
}
