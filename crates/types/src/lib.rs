//! Shared vocabulary types for the `zombie-ssd` simulator.
//!
//! This crate defines the small, copyable identifier and quantity types
//! that every other crate in the workspace speaks:
//!
//! * [`Lpn`] / [`Ppn`] — logical and physical page numbers
//!   ([C-NEWTYPE]-style static distinctions so the two address spaces
//!   can never be confused),
//! * [`ValueId`] and [`Fingerprint`] — the identity of a 4 KB content
//!   chunk and its 16-byte hash (the paper stores MD5 digests; we store
//!   an equivalently collision-resistant 128-bit mix, see
//!   [`Fingerprint::of_value`]),
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated
//!   wall-clock time,
//! * [`WriteClock`] — the paper's *logical* clock: "the ith incoming
//!   write request has a timestamp of i" (§IV-A),
//! * [`PopularityDegree`] — the saturating 1-byte per-LPN write counter
//!   the paper adds to the mapping table (§IV-C),
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers using the fast,
//!   deterministic Fx hasher for the simulator's hot lookup structures
//!   (dead-value pools, dedup index, trace content map).
//!
//! # Examples
//!
//! ```
//! use zssd_types::{Fingerprint, Lpn, PopularityDegree, ValueId};
//!
//! let value = ValueId::new(42);
//! let fp = Fingerprint::of_value(value);
//! assert_eq!(fp, Fingerprint::of_value(ValueId::new(42)));
//! assert_ne!(fp, Fingerprint::of_value(ValueId::new(43)));
//!
//! let mut pop = PopularityDegree::ZERO;
//! pop.increment();
//! assert_eq!(pop.get(), 1);
//! assert_eq!(Lpn::new(7).index(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fingerprint;
mod fx;
mod ids;
mod popularity;
mod time;

pub use error::{AddressError, ConfigError};
pub use fingerprint::{Fingerprint, PageBuf, PAGE_SIZE_BYTES};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Lpn, Ppn, ValueId};
pub use popularity::PopularityDegree;
pub use time::{SimDuration, SimTime, WriteClock};
