//! Simulated time.
//!
//! Two clocks coexist in the simulator, mirroring the paper:
//!
//! * [`SimTime`] — nanosecond wall-clock used by the flash timing model
//!   (read 75 µs, program 400 µs, erase 3.8 ms, hash 12 µs), and
//! * [`WriteClock`] — the logical clock of §IV-A: "the ith incoming
//!   write request has a timestamp of i". MQ expiration times and
//!   life-cycle intervals are measured on this clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use zssd_types::SimDuration;
/// let d = SimDuration::from_micros(400);
/// assert_eq!(d.as_nanos(), 400_000);
/// assert_eq!(d + SimDuration::from_micros(100), SimDuration::from_micros(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value overflows `u64` nanoseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Returns the duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction of another duration.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer count.
    #[inline]
    pub const fn mul(self, count: u64) -> SimDuration {
        SimDuration(self.0 * count)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated wall clock, in nanoseconds since start.
///
/// # Examples
///
/// ```
/// use zssd_types::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(75);
/// assert_eq!(t.as_nanos(), 75_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

/// The paper's logical clock: the ordinal of a write request (§IV-A).
///
/// "The algorithm utilizes a relative timestamp which is tracked as the
/// number of write requests to measure the recency of a page."
///
/// # Examples
///
/// ```
/// use zssd_types::WriteClock;
/// let mut clock = WriteClock::ZERO;
/// let first = clock.tick();
/// let second = clock.tick();
/// assert_eq!(first.count(), 1);
/// assert_eq!(second.count(), 2);
/// assert_eq!(second.saturating_since(first), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WriteClock(u64);

impl WriteClock {
    /// The clock before any write has been issued.
    pub const ZERO: WriteClock = WriteClock(0);

    /// Creates a clock value from a raw write count.
    #[inline]
    pub const fn from_count(count: u64) -> Self {
        WriteClock(count)
    }

    /// Returns the number of writes issued so far.
    #[inline]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Advances the clock by one write and returns the new value
    /// (the timestamp of the write just issued).
    #[inline]
    pub fn tick(&mut self) -> WriteClock {
        self.0 += 1;
        *self
    }

    /// Number of writes between `earlier` and `self`, saturating.
    #[inline]
    pub const fn saturating_since(self, earlier: WriteClock) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The clock value `delta` writes in the future.
    #[inline]
    pub const fn plus(self, delta: u64) -> WriteClock {
        WriteClock(self.0 + delta)
    }
}

impl fmt::Display for WriteClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros_f64(), 3_000.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!(a.saturating_sub(b).as_nanos(), 60);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(b.mul(3).as_nanos(), 120);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 140);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_nanos(10);
        let t1 = t0 + SimDuration::from_nanos(90);
        assert_eq!(t1.as_nanos(), 100);
        assert_eq!((t1 - t0).as_nanos(), 90);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t1.max(t0), t1);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        let mut t = t0;
        t += SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn write_clock_ticks_monotonically() {
        let mut clock = WriteClock::ZERO;
        for expect in 1..=5u64 {
            assert_eq!(clock.tick().count(), expect);
        }
        assert_eq!(clock.count(), 5);
        assert_eq!(clock.plus(10).count(), 15);
        assert_eq!(WriteClock::from_count(3).saturating_since(clock), 0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(75).to_string(), "75.000us");
        assert_eq!(SimDuration::from_millis(4).to_string(), "4.000ms");
        assert!(SimTime::ZERO.to_string().starts_with("t="));
        assert_eq!(WriteClock::from_count(2).to_string(), "w2");
    }
}
