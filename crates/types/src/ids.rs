//! Page-number and value-identity newtypes.

use core::fmt;

/// A logical page number: the host-visible 4 KB block address.
///
/// The FTL maps each `Lpn` to at most one live [`Ppn`]. Keeping the two
/// address spaces as distinct types means a physical address can never
/// be handed to an API expecting a logical one.
///
/// # Examples
///
/// ```
/// use zssd_types::Lpn;
/// let lpn = Lpn::new(128);
/// assert_eq!(lpn.index(), 128);
/// assert!(Lpn::new(1) < Lpn::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lpn(u64);

impl Lpn {
    /// Creates a logical page number from its raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Lpn(index)
    }

    /// Returns the raw index of this logical page.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u64> for Lpn {
    fn from(index: u64) -> Self {
        Lpn::new(index)
    }
}

/// A physical page number: a flat index into the NAND flash array.
///
/// The flash geometry decodes a `Ppn` into
/// (channel, chip, die, plane, block, page); see `zssd-flash`.
///
/// # Examples
///
/// ```
/// use zssd_types::Ppn;
/// let ppn = Ppn::new(4096);
/// assert_eq!(ppn.index(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(u64);

impl Ppn {
    /// Creates a physical page number from its raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Ppn(index)
    }

    /// Returns the raw index of this physical page.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u64> for Ppn {
    fn from(index: u64) -> Self {
        Ppn::new(index)
    }
}

/// The identity of a distinct 4 KB content chunk ("value" in the paper).
///
/// Real traces carry the MD5 of each request's payload; our synthetic
/// traces instead carry a `ValueId` drawn from a popularity
/// distribution. Two requests write identical bytes if and only if they
/// carry equal `ValueId`s. The 16-byte digest the device would compute
/// is derived deterministically via
/// [`Fingerprint::of_value`](crate::Fingerprint::of_value).
///
/// # Examples
///
/// ```
/// use zssd_types::ValueId;
/// let a = ValueId::new(9);
/// assert_eq!(a.raw(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ValueId(u64);

impl ValueId {
    /// Creates a value identity from its raw id.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        ValueId(raw)
    }

    /// Returns the raw id.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl From<u64> for ValueId {
    fn from(raw: u64) -> Self {
        ValueId::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lpn_round_trips_and_orders() {
        assert_eq!(Lpn::new(5).index(), 5);
        assert!(Lpn::new(5) < Lpn::new(6));
        assert_eq!(Lpn::from(7u64), Lpn::new(7));
        assert_eq!(Lpn::default(), Lpn::new(0));
    }

    #[test]
    fn ppn_round_trips_and_orders() {
        assert_eq!(Ppn::new(5).index(), 5);
        assert!(Ppn::new(5) < Ppn::new(6));
        assert_eq!(Ppn::from(7u64), Ppn::new(7));
    }

    #[test]
    fn value_id_round_trips() {
        assert_eq!(ValueId::new(11).raw(), 11);
        assert_eq!(ValueId::from(11u64), ValueId::new(11));
    }

    #[test]
    fn display_is_tagged_and_nonempty() {
        assert_eq!(Lpn::new(3).to_string(), "L3");
        assert_eq!(Ppn::new(3).to_string(), "P3");
        assert_eq!(ValueId::new(3).to_string(), "V3");
    }

    #[test]
    fn ids_are_hashable_and_distinct_in_sets() {
        let set: HashSet<Lpn> = (0..10).map(Lpn::new).collect();
        assert_eq!(set.len(), 10);
        assert!(set.contains(&Lpn::new(4)));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lpn>();
        assert_send_sync::<Ppn>();
        assert_send_sync::<ValueId>();
    }
}
