//! Shared error types.

use core::fmt;
use std::error::Error;

/// An address was outside the simulated device's range.
///
/// Returned by flash/FTL APIs when a logical or physical page number
/// does not exist in the configured geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressError {
    kind: &'static str,
    index: u64,
    limit: u64,
}

impl AddressError {
    /// Creates an out-of-range error for an address space named `kind`
    /// (e.g. `"lpn"`, `"ppn"`, `"block"`).
    pub fn out_of_range(kind: &'static str, index: u64, limit: u64) -> Self {
        AddressError { kind, index, limit }
    }

    /// The offending index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The exclusive upper bound of the address space.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} out of range (limit {})",
            self.kind, self.index, self.limit
        )
    }
}

impl Error for AddressError {}

/// A configuration value was invalid or inconsistent.
///
/// Produced by builders such as `SsdConfig` when, e.g., a geometry
/// dimension is zero or over-provisioning leaves no usable space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_error_reports_fields() {
        let err = AddressError::out_of_range("lpn", 100, 64);
        assert_eq!(err.index(), 100);
        assert_eq!(err.limit(), 64);
        assert_eq!(err.to_string(), "lpn 100 out of range (limit 64)");
    }

    #[test]
    fn config_error_displays_message() {
        let err = ConfigError::new("pages per block must be nonzero");
        assert!(err.to_string().contains("pages per block"));
    }

    #[test]
    fn errors_are_std_errors_and_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AddressError>();
        assert_err::<ConfigError>();
    }
}
