//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The FTL write path does several hash-map probes per host request
//! (dead-value pool by fingerprint and by PPN, the dedup index, the
//! trace generator's content map). The standard library's SipHash is
//! DoS-resistant but costs tens of nanoseconds per probe; the Fx
//! algorithm (a rotate–xor–multiply mix, as used by the Rust compiler)
//! is several times cheaper and — because it is unkeyed — gives every
//! run the same iteration order, which keeps reports reproducible.
//!
//! None of these maps ever hash attacker-controlled keys: they key on
//! page numbers and fingerprints produced by the simulator itself, so
//! trading DoS resistance for speed is safe here.
//!
//! # Examples
//!
//! ```
//! use zssd_types::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Firefox/rustc "Fx" hash: for each input word, rotate the state,
/// xor the word in, and multiply by a large odd constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `pi.frac() * 2^64` rounded to odd — the multiplier rustc-hash uses
/// on 64-bit targets.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        // Length-prefix-free chunking is fine here: the simulator only
        // hashes fixed-width integer keys, which use the write_uN
        // fast paths; this byte path exists for completeness (e.g.
        // derived Hash over enums writes discriminants through it).
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fingerprint, Ppn, ValueId};
    use core::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&7u64), hash_of(&7u64));
        assert_ne!(hash_of(&7u64), hash_of(&8u64));
        let fp = Fingerprint::of_value(ValueId::new(42));
        assert_eq!(hash_of(&fp), hash_of(&fp));
        assert_ne!(
            hash_of(&fp),
            hash_of(&Fingerprint::of_value(ValueId::new(43)))
        );
    }

    #[test]
    fn maps_round_trip_domain_keys() {
        let mut by_ppn: FxHashMap<Ppn, u64> = FxHashMap::default();
        let mut by_fp: FxHashSet<Fingerprint> = FxHashSet::default();
        for i in 0..1000u64 {
            by_ppn.insert(Ppn::new(i), i * 3);
            by_fp.insert(Fingerprint::of_value(ValueId::new(i)));
        }
        assert_eq!(by_ppn.len(), 1000);
        assert_eq!(by_fp.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(by_ppn.get(&Ppn::new(i)), Some(&(i * 3)));
            assert!(by_fp.contains(&Fingerprint::of_value(ValueId::new(i))));
        }
    }

    #[test]
    fn byte_path_distinguishes_lengths() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the low bits for bucket selection; sequential
        // PPNs must not collapse onto a few buckets.
        let mut low7 = FxHashSet::default();
        for i in 0..128u64 {
            low7.insert(hash_of(&i) & 0x7f);
        }
        assert!(
            low7.len() > 80,
            "only {} distinct low-7 patterns",
            low7.len()
        );
    }
}
