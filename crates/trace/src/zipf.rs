//! A Zipf(α) sampler over a finite rank space.
//!
//! Value popularity in the paper's traces is highly skewed ("around 20%
//! of the values account for almost 80% of the writes", Fig 3a). A
//! Zipf distribution with exponent near 1 reproduces that shape; the
//! sampler here precomputes the cumulative weights once and draws by
//! binary search, which is exact and fast for the rank counts the
//! generator uses (≤ a few million).

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^alpha`. Rank 0 is the most popular.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use zssd_trace::ZipfSampler;
///
/// let zipf = ZipfSampler::new(100, 1.0);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    alpha: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `alpha ≥ 0`.
    /// `alpha = 0` is uniform; larger values are more skewed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "rank space must be nonempty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be a finite non-negative number"
        );
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        ZipfSampler { cumulative, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Whether the rank space is empty (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent this sampler was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let total = *self.cumulative.last().expect("nonempty rank space");
        let target = rng.random::<f64>() * total;
        self.cumulative.partition_point(|&c| c < target) as u64
    }

    /// Probability mass of a rank.
    pub fn probability(&self, rank: u64) -> f64 {
        let total = *self.cumulative.last().expect("nonempty rank space");
        let hi = self.cumulative[rank as usize];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank as usize - 1]
        };
        (hi - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = ZipfSampler::new(10, 1.2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates_when_skewed() {
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut zero = 0;
        let draws = 20_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        let expected = zipf.probability(0) * draws as f64;
        let observed = zero as f64;
        assert!(
            (observed - expected).abs() < expected * 0.25,
            "observed {observed}, expected about {expected}"
        );
        assert!(zipf.probability(0) > zipf.probability(500));
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(4, 0.0);
        assert!((zipf.probability(0) - 0.25).abs() < 1e-12);
        assert!((zipf.probability(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let zipf = ZipfSampler::new(50, 0.8);
        let sum: f64 = (0..50).map(|r| zipf.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(zipf.len(), 50);
        assert!(!zipf.is_empty());
        assert_eq!(zipf.alpha(), 0.8);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_rank_space_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_rejected() {
        let _ = ZipfSampler::new(1, -1.0);
    }
}
