//! Content traces for the `zombie-ssd` simulator.
//!
//! The paper evaluates on six block traces (FIU: **web**, **home**,
//! **mail**; OSU: **hadoop**, **trans**, **desktop**) whose records
//! carry the MD5 of every 4 KB request. Those traces are not
//! redistributable, so this crate generates *synthetic equivalents*:
//! each [`WorkloadProfile`] is tuned to reproduce the aggregates the
//! paper reports in Table II — write ratio, the percentage of write
//! requests carrying unique content, and the percentage of read
//! requests reading unique content — plus Zipf-skewed value popularity,
//! which is the property every mechanism in the paper exploits.
//!
//! * [`TraceRecord`] — one 4 KB request: ordinal, op, LPN, value id,
//! * [`WorkloadProfile`] — the knobs + six paper presets,
//! * [`SyntheticTrace`] — multi-day generation (`m1`, `m2`, … in the
//!   paper's figures are consecutive days of the same server),
//! * [`TraceStats`] — measures the Table II aggregates of any record
//!   slice so the calibration is auditable,
//! * [`ArrivalProcess`] — arrival-timestamp generators (constant,
//!   Poisson, bursty on/off) for stamping when each request hits the
//!   device,
//! * [`write_text`]/[`parse_text`] — an FIU-like text format.
//!
//! # Examples
//!
//! ```
//! use zssd_trace::{SyntheticTrace, TraceStats, WorkloadProfile};
//!
//! let profile = WorkloadProfile::mail().scaled(0.02);
//! let trace = SyntheticTrace::generate(&profile, 42);
//! let stats = TraceStats::measure(trace.records());
//! // Mail is write-heavy with very low write uniqueness (Table II:
//! // WR 77%, unique writes 8%).
//! assert!(stats.write_ratio() > 0.7);
//! assert!(stats.unique_write_frac() < 0.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod profile;
mod record;
mod stats;
mod synth;
mod text;
mod zipf;

pub use arrival::{ArrivalProcess, ArrivalTimes, DEFAULT_BURST_LEN};
pub use profile::WorkloadProfile;
pub use record::{initial_value_of, IoOp, TraceRecord, INITIAL_VALUE_BASE};
pub use stats::TraceStats;
pub use synth::SyntheticTrace;
pub use text::{parse_text, read_file, write_file, write_text, TraceParseError};
pub use zipf::ZipfSampler;
