//! A line-oriented text trace format, FIU-style.
//!
//! One request per line:
//! `<seq> <R|W|T> <lpn> <value> <fingerprint-hex> [@<arrival-nanos>]`.
//! Lines starting with `#` are comments. The fingerprint column is
//! redundant (derivable from the value id) but kept because the real
//! FIU traces ship digests, and it makes files self-describing. The
//! optional trailing `@<nanos>` token records the request's arrival
//! timestamp; unstamped lines parse to records replayed under the
//! drive's configured arrival process.

use core::fmt;
use std::error::Error;
use std::io::{self, Write};

use zssd_types::{Lpn, SimTime, ValueId};

use crate::record::{IoOp, TraceRecord};

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: usize,
    message: String,
}

impl TraceParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceParseError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

/// Writes records in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut Vec<u8>` or any
/// `&mut W` where `W: Write` may be passed.
pub fn write_text<W: Write>(records: &[TraceRecord], mut out: W) -> io::Result<()> {
    writeln!(
        out,
        "# zombie-ssd trace: seq op lpn value fingerprint [@arrival-ns]"
    )?;
    for r in records {
        write!(
            out,
            "{} {} {} {} {}",
            r.seq,
            r.op,
            r.lpn.index(),
            r.value.raw(),
            r.fingerprint()
        )?;
        if let Some(at) = r.arrival {
            write!(out, " @{}", at.as_nanos())?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes records to a file in the text format.
///
/// # Errors
///
/// Propagates I/O errors (file creation, writes).
pub fn write_file<P: AsRef<std::path::Path>>(records: &[TraceRecord], path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    write_text(records, &mut writer)?;
    use std::io::Write as _;
    writer.flush()
}

/// Reads records from a text-format trace file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a boxed
/// [`TraceParseError`] wrapped in [`io::Error`] for malformed content.
pub fn read_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<Vec<TraceRecord>> {
    let text = std::fs::read_to_string(path)?;
    parse_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parses the text format back into records.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first malformed line;
/// comment (`#`) and blank lines are skipped.
pub fn parse_text(input: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut records = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let seq: u64 = fields
            .next()
            .ok_or_else(|| TraceParseError::new(lineno, "missing seq"))?
            .parse()
            .map_err(|e| TraceParseError::new(lineno, format!("bad seq: {e}")))?;
        let op = match fields.next() {
            Some("R") => IoOp::Read,
            Some("W") => IoOp::Write,
            Some("T") => IoOp::Trim,
            Some(other) => {
                return Err(TraceParseError::new(
                    lineno,
                    format!("bad op {other:?}, expected R, W, or T"),
                ))
            }
            None => return Err(TraceParseError::new(lineno, "missing op")),
        };
        let lpn: u64 = fields
            .next()
            .ok_or_else(|| TraceParseError::new(lineno, "missing lpn"))?
            .parse()
            .map_err(|e| TraceParseError::new(lineno, format!("bad lpn: {e}")))?;
        let value: u64 = fields
            .next()
            .ok_or_else(|| TraceParseError::new(lineno, "missing value"))?
            .parse()
            .map_err(|e| TraceParseError::new(lineno, format!("bad value: {e}")))?;
        // Remaining tokens: an optional fingerprint (must agree with
        // the value) and an optional `@<nanos>` arrival timestamp.
        let mut arrival = None;
        for token in fields {
            if let Some(ns) = token.strip_prefix('@') {
                let ns: u64 = ns
                    .parse()
                    .map_err(|e| TraceParseError::new(lineno, format!("bad arrival: {e}")))?;
                arrival = Some(SimTime::from_nanos(ns));
            } else {
                let expect = TraceRecord::write(0, Lpn::new(0), ValueId::new(value))
                    .fingerprint()
                    .to_string();
                if token != expect {
                    return Err(TraceParseError::new(
                        lineno,
                        format!("fingerprint {token} does not match value {value}"),
                    ));
                }
            }
        }
        records.push(TraceRecord {
            seq,
            op,
            lpn: Lpn::new(lpn),
            value: ValueId::new(value),
            arrival,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use crate::synth::SyntheticTrace;

    #[test]
    fn round_trips_a_generated_trace() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::web().scaled(0.003), 9);
        let mut buf = Vec::new();
        write_text(trace.records(), &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed = parse_text(&text).expect("parse");
        assert_eq!(parsed, trace.records());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let parsed = parse_text("# header\n\n0 W 5 7\n").expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].lpn, Lpn::new(5));
        assert!(parsed[0].is_write());
    }

    #[test]
    fn trims_and_arrival_stamps_round_trip() {
        let records = vec![
            TraceRecord::write(0, Lpn::new(3), ValueId::new(7))
                .with_arrival(SimTime::from_nanos(1_000)),
            TraceRecord::trim(1, Lpn::new(3)).with_arrival(SimTime::from_nanos(2_500)),
            TraceRecord::read(2, Lpn::new(3), ValueId::new(7)),
        ];
        let mut buf = Vec::new();
        write_text(&records, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed = parse_text(&text).expect("parse");
        assert_eq!(parsed, records);
        // Bare stamped line without a fingerprint also parses.
        let parsed = parse_text("0 T 5 0 @42").expect("parse");
        assert_eq!(
            parsed[0],
            TraceRecord::trim(0, Lpn::new(5)).with_arrival(SimTime::from_nanos(42))
        );
        assert!(parse_text("0 W 1 2 @nope")
            .unwrap_err()
            .to_string()
            .contains("arrival"));
    }

    #[test]
    fn fingerprint_column_is_optional_but_checked() {
        assert!(parse_text("0 R 1 2").is_ok());
        let err = parse_text("0 R 1 2 deadbeef").unwrap_err();
        assert!(err.to_string().contains("fingerprint"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn file_round_trip() {
        let trace = SyntheticTrace::generate(&WorkloadProfile::trans().scaled(0.002), 4);
        let dir = std::env::temp_dir().join(format!("zssd-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trans.trace");
        write_file(trace.records(), &path).expect("write file");
        let parsed = read_file(&path).expect("read file");
        assert_eq!(parsed, trace.records());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn read_file_surfaces_parse_errors() {
        let dir = std::env::temp_dir().join(format!("zssd-trace-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bad.trace");
        std::fs::write(&path, "not a trace line\n").expect("write");
        let err = read_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn malformed_lines_name_the_problem() {
        assert!(parse_text("x W 1 2")
            .unwrap_err()
            .to_string()
            .contains("seq"));
        assert!(parse_text("0 Q 1 2")
            .unwrap_err()
            .to_string()
            .contains("op"));
        assert!(parse_text("0 W").unwrap_err().to_string().contains("lpn"));
        assert!(parse_text("0 W 1")
            .unwrap_err()
            .to_string()
            .contains("value"));
        assert_eq!(parse_text("# only comments").expect("ok").len(), 0);
    }
}
