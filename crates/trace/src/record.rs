//! Trace records.

use core::fmt;

use zssd_types::{Fingerprint, Lpn, ValueId};

/// Value-id offset marking *pre-trace* device content: reading an LPN
/// the trace never wrote observes `INITIAL_VALUE_BASE + lpn`, a value
/// unique to that address (a freshly formatted filesystem has distinct
/// content everywhere).
pub const INITIAL_VALUE_BASE: u64 = 1 << 48;

/// The pre-trace content of a logical page.
///
/// # Examples
///
/// ```
/// use zssd_trace::initial_value_of;
/// use zssd_types::Lpn;
/// let v = initial_value_of(Lpn::new(7));
/// assert_ne!(v, initial_value_of(Lpn::new(8)));
/// ```
pub fn initial_value_of(lpn: Lpn) -> ValueId {
    ValueId::new(INITIAL_VALUE_BASE + lpn.index())
}

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A 4 KB read.
    Read,
    /// A 4 KB write.
    Write,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "R",
            IoOp::Write => "W",
        })
    }
}

/// One 4 KB request of a content trace.
///
/// Mirrors the FIU format: every request carries the identity of the
/// content moved ([`ValueId`], standing in for the trace's MD5 digest).
/// For reads, `value` is the content the address held at that point of
/// the trace (generated traces track this; it lets trace-only analyses
/// reason about read redundancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Request ordinal within the trace (0-based).
    pub seq: u64,
    /// Read or write.
    pub op: IoOp,
    /// The 4 KB logical page addressed.
    pub lpn: Lpn,
    /// Identity of the 4 KB content written (or observed, for reads).
    pub value: ValueId,
}

impl TraceRecord {
    /// Creates a write record.
    pub fn write(seq: u64, lpn: Lpn, value: ValueId) -> Self {
        TraceRecord {
            seq,
            op: IoOp::Write,
            lpn,
            value,
        }
    }

    /// Creates a read record.
    pub fn read(seq: u64, lpn: Lpn, value: ValueId) -> Self {
        TraceRecord {
            seq,
            op: IoOp::Read,
            lpn,
            value,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.op == IoOp::Write
    }

    /// The 16-byte digest of this request's content — what the device's
    /// hash engine would compute.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_value(self.value)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.seq, self.op, self.lpn, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let w = TraceRecord::write(0, Lpn::new(1), ValueId::new(2));
        let r = TraceRecord::read(1, Lpn::new(1), ValueId::new(2));
        assert!(w.is_write());
        assert!(!r.is_write());
        assert_eq!(w.fingerprint(), r.fingerprint());
    }

    #[test]
    fn initial_values_do_not_collide_with_trace_values() {
        // Trace generators allocate value ids well below the base.
        assert!(initial_value_of(Lpn::new(0)).raw() >= INITIAL_VALUE_BASE);
        assert_ne!(initial_value_of(Lpn::new(1)), initial_value_of(Lpn::new(2)));
    }

    #[test]
    fn display_round_trips_visually() {
        let rec = TraceRecord::write(5, Lpn::new(9), ValueId::new(3));
        assert_eq!(rec.to_string(), "5 W L9 V3");
    }
}
