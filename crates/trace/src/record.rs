//! Trace records.

use core::fmt;

use zssd_types::{Fingerprint, Lpn, SimTime, ValueId};

/// Value-id offset marking *pre-trace* device content: reading an LPN
/// the trace never wrote observes `INITIAL_VALUE_BASE + lpn`, a value
/// unique to that address (a freshly formatted filesystem has distinct
/// content everywhere).
pub const INITIAL_VALUE_BASE: u64 = 1 << 48;

/// The pre-trace content of a logical page.
///
/// # Examples
///
/// ```
/// use zssd_trace::initial_value_of;
/// use zssd_types::Lpn;
/// let v = initial_value_of(Lpn::new(7));
/// assert_ne!(v, initial_value_of(Lpn::new(8)));
/// ```
pub fn initial_value_of(lpn: Lpn) -> ValueId {
    ValueId::new(INITIAL_VALUE_BASE + lpn.index())
}

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A 4 KB read.
    Read,
    /// A 4 KB write.
    Write,
    /// A 4 KB TRIM (discard): the host declares the page's content
    /// dead, unmapping it without writing replacement data.
    Trim,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "R",
            IoOp::Write => "W",
            IoOp::Trim => "T",
        })
    }
}

/// One 4 KB request of a content trace.
///
/// Mirrors the FIU format: every request carries the identity of the
/// content moved ([`ValueId`], standing in for the trace's MD5 digest).
/// For reads, `value` is the content the address held at that point of
/// the trace (generated traces track this; it lets trace-only analyses
/// reason about read redundancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Request ordinal within the trace (0-based).
    pub seq: u64,
    /// Read or write.
    pub op: IoOp,
    /// The 4 KB logical page addressed.
    pub lpn: Lpn,
    /// Identity of the 4 KB content written (or observed, for reads).
    /// Zero (unused) for trims.
    pub value: ValueId,
    /// When the request reaches the device, if the trace records it.
    /// `None` means "unstamped": replay spaces the request with the
    /// drive's configured arrival process instead.
    pub arrival: Option<SimTime>,
}

impl TraceRecord {
    /// Creates a write record.
    pub fn write(seq: u64, lpn: Lpn, value: ValueId) -> Self {
        TraceRecord {
            seq,
            op: IoOp::Write,
            lpn,
            value,
            arrival: None,
        }
    }

    /// Creates a read record.
    pub fn read(seq: u64, lpn: Lpn, value: ValueId) -> Self {
        TraceRecord {
            seq,
            op: IoOp::Read,
            lpn,
            value,
            arrival: None,
        }
    }

    /// Creates a TRIM record (no content moves; `value` is zero).
    pub fn trim(seq: u64, lpn: Lpn) -> Self {
        TraceRecord {
            seq,
            op: IoOp::Trim,
            lpn,
            value: ValueId::new(0),
            arrival: None,
        }
    }

    /// This record with an explicit arrival timestamp.
    #[must_use]
    pub fn with_arrival(mut self, at: SimTime) -> Self {
        self.arrival = Some(at);
        self
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.op == IoOp::Write
    }

    /// Whether this is a TRIM.
    pub fn is_trim(&self) -> bool {
        self.op == IoOp::Trim
    }

    /// The 16-byte digest of this request's content — what the device's
    /// hash engine would compute.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_value(self.value)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.seq, self.op, self.lpn, self.value)?;
        if let Some(at) = self.arrival {
            write!(f, " @{}", at.as_nanos())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let w = TraceRecord::write(0, Lpn::new(1), ValueId::new(2));
        let r = TraceRecord::read(1, Lpn::new(1), ValueId::new(2));
        assert!(w.is_write());
        assert!(!r.is_write());
        assert_eq!(w.fingerprint(), r.fingerprint());
    }

    #[test]
    fn initial_values_do_not_collide_with_trace_values() {
        // Trace generators allocate value ids well below the base.
        assert!(initial_value_of(Lpn::new(0)).raw() >= INITIAL_VALUE_BASE);
        assert_ne!(initial_value_of(Lpn::new(1)), initial_value_of(Lpn::new(2)));
    }

    #[test]
    fn display_round_trips_visually() {
        let rec = TraceRecord::write(5, Lpn::new(9), ValueId::new(3));
        assert_eq!(rec.to_string(), "5 W L9 V3");
        let stamped = rec.with_arrival(SimTime::from_nanos(1_500));
        assert_eq!(stamped.to_string(), "5 W L9 V3 @1500");
        let trim = TraceRecord::trim(6, Lpn::new(9));
        assert_eq!(trim.to_string(), "6 T L9 V0");
        assert!(trim.is_trim());
        assert!(!trim.is_write());
    }
}
