//! Measured workload characteristics (Table II).

use core::fmt;
use std::collections::HashSet;

use zssd_types::{Lpn, ValueId};

use crate::record::{IoOp, TraceRecord};

/// The aggregates Table II reports, measured over any record slice.
///
/// # Examples
///
/// ```
/// use zssd_trace::{SyntheticTrace, TraceStats, WorkloadProfile};
/// let trace = SyntheticTrace::generate(&WorkloadProfile::home().scaled(0.01), 3);
/// let stats = TraceStats::measure(trace.records());
/// assert!((stats.write_ratio() - 0.96).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total requests measured.
    pub requests: u64,
    /// Write requests.
    pub writes: u64,
    /// Read requests.
    pub reads: u64,
    /// TRIM requests.
    pub trims: u64,
    /// Distinct values among written contents.
    pub distinct_write_values: u64,
    /// Distinct values among read contents.
    pub distinct_read_values: u64,
    /// Distinct logical pages touched (footprint).
    pub distinct_lpns: u64,
}

impl TraceStats {
    /// Scans a record slice and measures the Table II aggregates.
    pub fn measure(records: &[TraceRecord]) -> Self {
        let mut write_values: HashSet<ValueId> = HashSet::new();
        let mut read_values: HashSet<ValueId> = HashSet::new();
        let mut lpns: HashSet<Lpn> = HashSet::new();
        let mut writes = 0u64;
        let mut reads = 0u64;
        let mut trims = 0u64;
        for r in records {
            lpns.insert(r.lpn);
            match r.op {
                IoOp::Write => {
                    writes += 1;
                    write_values.insert(r.value);
                }
                IoOp::Read => {
                    reads += 1;
                    read_values.insert(r.value);
                }
                IoOp::Trim => trims += 1,
            }
        }
        TraceStats {
            requests: records.len() as u64,
            writes,
            reads,
            trims,
            distinct_write_values: write_values.len() as u64,
            distinct_read_values: read_values.len() as u64,
            distinct_lpns: lpns.len() as u64,
        }
    }

    /// Fraction of requests that are writes (Table II "WR %").
    pub fn write_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.writes as f64 / self.requests as f64
        }
    }

    /// Fraction of writes carrying unique content (Table II "Unique
    /// Value % — WR").
    pub fn unique_write_frac(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.distinct_write_values as f64 / self.writes as f64
        }
    }

    /// Fraction of reads observing unique content (Table II "Unique
    /// Value % — RD").
    pub fn unique_read_frac(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.distinct_read_values as f64 / self.reads as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req={} WR={:.1}% uniqW={:.1}% uniqR={:.1}% footprint={}",
            self.requests,
            self.write_ratio() * 100.0,
            self.unique_write_frac() * 100.0,
            self.unique_read_frac() * 100.0,
            self.distinct_lpns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn measures_hand_built_trace() {
        let records = vec![
            TraceRecord::write(0, Lpn::new(1), ValueId::new(10)),
            TraceRecord::write(1, Lpn::new(2), ValueId::new(10)),
            TraceRecord::write(2, Lpn::new(1), ValueId::new(11)),
            TraceRecord::read(3, Lpn::new(2), ValueId::new(10)),
            TraceRecord::trim(4, Lpn::new(1)),
        ];
        let s = TraceStats::measure(&records);
        assert_eq!(s.requests, 5);
        assert_eq!(s.writes, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.trims, 1);
        assert_eq!(s.distinct_write_values, 2);
        assert_eq!(s.distinct_read_values, 1);
        assert_eq!(s.distinct_lpns, 2);
        assert_eq!(s.write_ratio(), 0.6);
        assert!((s.unique_write_frac() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.unique_read_frac(), 1.0);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::measure(&[]);
        assert_eq!(s.write_ratio(), 0.0);
        assert_eq!(s.unique_write_frac(), 0.0);
        assert_eq!(s.unique_read_frac(), 0.0);
    }

    #[test]
    fn display_has_percentages() {
        let records = vec![TraceRecord::write(0, Lpn::new(1), ValueId::new(1))];
        let text = TraceStats::measure(&records).to_string();
        assert!(text.contains("WR=100.0%"));
    }
}
