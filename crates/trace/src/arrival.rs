//! Request arrival processes.
//!
//! The paper's latency results come from requests queueing behind NAND
//! programs and erases, so *when* requests arrive matters as much as
//! what they carry. This module generates arrival timestamps for a
//! trace under three processes, all seeded and deterministic:
//!
//! * [`ArrivalProcess::Constant`] — one request every fixed interval
//!   (the original replay behaviour: request `i` arrives at
//!   `i * interval`),
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrival gaps, the
//!   classic open-system arrival model,
//! * [`ArrivalProcess::Bursty`] — an on/off process: requests arrive in
//!   geometric-length bursts at a fast intra-burst rate, separated by
//!   idle gaps, with the same long-run mean rate as the other two.
//!
//! Timestamps are stamped onto [`TraceRecord::arrival`] with
//! [`ArrivalProcess::stamp`], or drawn one at a time from
//! [`ArrivalProcess::times`] by the replay loop for unstamped records.
//!
//! # Examples
//!
//! ```
//! use zssd_trace::ArrivalProcess;
//! use zssd_types::SimDuration;
//!
//! let mean = SimDuration::from_micros(1000);
//! let constant = ArrivalProcess::constant(mean);
//! let times: Vec<_> = constant.times().take(3).collect();
//! assert_eq!(times[2].as_nanos(), 2_000_000);
//!
//! // Poisson and bursty keep the same mean rate, deterministically.
//! let poisson = ArrivalProcess::poisson(mean, 42);
//! assert_eq!(poisson.mean_interval(), mean);
//! let a: Vec<_> = poisson.times().take(100).collect();
//! let b: Vec<_> = poisson.times().take(100).collect();
//! assert_eq!(a, b);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use zssd_types::{SimDuration, SimTime};

use crate::record::TraceRecord;

/// Mean burst length used by [`ArrivalProcess::from_spec`] when a
/// `bursty` spec gives no explicit length.
pub const DEFAULT_BURST_LEN: f64 = 16.0;

/// Hard cap on a single burst's length, so a pathological RNG streak
/// cannot stall generation.
const MAX_BURST_LEN: u64 = 65_536;

/// How a trace's requests are spaced on the simulated wall clock.
///
/// All variants are `Copy` and carry their own seed, so a process value
/// fully determines its arrival sequence — two calls to
/// [`ArrivalProcess::times`] yield identical streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Request `i` arrives at exactly `i * interval`.
    Constant {
        /// Fixed inter-arrival gap.
        interval: SimDuration,
    },
    /// Exponentially distributed inter-arrival gaps (a Poisson
    /// process) with the given mean.
    Poisson {
        /// Mean inter-arrival gap (the reciprocal of the rate).
        mean_interval: SimDuration,
        /// RNG seed; the same seed reproduces the same arrivals.
        seed: u64,
    },
    /// On/off bursts: within a burst consecutive requests are
    /// `on_interval` apart; after a burst of geometric mean length
    /// `mean_burst_len` an extra `off_gap` of idle time passes. The
    /// long-run mean inter-arrival gap is
    /// `on_interval + off_gap / mean_burst_len`.
    Bursty {
        /// Gap between consecutive requests inside a burst.
        on_interval: SimDuration,
        /// Extra idle time between the end of one burst and the start
        /// of the next.
        off_gap: SimDuration,
        /// Mean burst length (geometric; must be >= 1).
        mean_burst_len: f64,
        /// RNG seed; the same seed reproduces the same arrivals.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// A constant-interval process — the backward-compatible default.
    pub fn constant(interval: SimDuration) -> Self {
        ArrivalProcess::Constant { interval }
    }

    /// A Poisson process with the given mean inter-arrival gap.
    pub fn poisson(mean_interval: SimDuration, seed: u64) -> Self {
        ArrivalProcess::Poisson {
            mean_interval,
            seed,
        }
    }

    /// A bursty on/off process with the given **long-run mean**
    /// inter-arrival gap: inside a burst requests arrive 4x faster
    /// than the mean rate; the idle gap between bursts is sized so the
    /// overall rate matches `mean_interval` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `mean_burst_len` is not finite or is below 1.
    pub fn bursty(mean_interval: SimDuration, mean_burst_len: f64, seed: u64) -> Self {
        assert!(
            mean_burst_len.is_finite() && mean_burst_len >= 1.0,
            "mean burst length must be >= 1"
        );
        let on = SimDuration::from_nanos(mean_interval.as_nanos() / 4);
        let deficit = mean_interval.saturating_sub(on);
        let off = SimDuration::from_nanos((deficit.as_nanos() as f64 * mean_burst_len) as u64);
        ArrivalProcess::Bursty {
            on_interval: on,
            off_gap: off,
            mean_burst_len,
            seed,
        }
    }

    /// Parses a process spec string, as used by the `ZSSD_ARRIVAL`
    /// environment variable and the `--arrival` CLI flag:
    ///
    /// * `constant` (aliases `uniform`, `fixed`) — constant interval,
    /// * `poisson` — Poisson arrivals,
    /// * `bursty` — on/off bursts of mean length [`DEFAULT_BURST_LEN`],
    /// * `bursty:<len>` — on/off bursts of mean length `<len>`.
    ///
    /// `mean` is the long-run mean inter-arrival gap for every variant
    /// and `seed` feeds the stochastic ones.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for unknown specs or
    /// malformed burst lengths.
    pub fn from_spec(spec: &str, mean: SimDuration, seed: u64) -> Result<Self, String> {
        match spec.trim() {
            "constant" | "uniform" | "fixed" => Ok(ArrivalProcess::constant(mean)),
            "poisson" => Ok(ArrivalProcess::poisson(mean, seed)),
            "bursty" => Ok(ArrivalProcess::bursty(mean, DEFAULT_BURST_LEN, seed)),
            other => {
                if let Some(raw) = other.strip_prefix("bursty:") {
                    let len: f64 = raw
                        .parse()
                        .map_err(|e| format!("bad burst length {raw:?}: {e}"))?;
                    if !len.is_finite() || len < 1.0 {
                        return Err(format!("burst length {len} must be >= 1"));
                    }
                    Ok(ArrivalProcess::bursty(mean, len, seed))
                } else {
                    Err(format!(
                        "unknown arrival process {other:?}; expected \
                         constant | poisson | bursty[:<mean-burst-len>]"
                    ))
                }
            }
        }
    }

    /// The long-run mean inter-arrival gap of this process.
    pub fn mean_interval(&self) -> SimDuration {
        match *self {
            ArrivalProcess::Constant { interval } => interval,
            ArrivalProcess::Poisson { mean_interval, .. } => mean_interval,
            ArrivalProcess::Bursty {
                on_interval,
                off_gap,
                mean_burst_len,
                ..
            } => {
                let extra = off_gap.as_nanos() as f64 / mean_burst_len;
                SimDuration::from_nanos(on_interval.as_nanos() + extra.round() as u64)
            }
        }
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem: stochastic processes need
    /// a positive mean gap, bursty needs a finite burst length >= 1.
    /// (A zero-interval constant process is allowed: it models
    /// replaying a trace as one back-to-back batch.)
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalProcess::Constant { .. } => Ok(()),
            ArrivalProcess::Poisson { mean_interval, .. } => {
                if mean_interval == SimDuration::ZERO {
                    Err("poisson arrivals need a positive mean interval".to_owned())
                } else {
                    Ok(())
                }
            }
            ArrivalProcess::Bursty {
                on_interval,
                off_gap,
                mean_burst_len,
                ..
            } => {
                if !mean_burst_len.is_finite() || mean_burst_len < 1.0 {
                    Err(format!("mean burst length {mean_burst_len} must be >= 1"))
                } else if on_interval == SimDuration::ZERO && off_gap == SimDuration::ZERO {
                    Err("bursty arrivals need a positive on-interval or off-gap".to_owned())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// An infinite iterator of arrival instants, starting at
    /// [`SimTime::ZERO`]. Deterministic: the process (including its
    /// embedded seed) fully determines the stream.
    pub fn times(&self) -> ArrivalTimes {
        let seed = match *self {
            ArrivalProcess::Constant { .. } => 0,
            ArrivalProcess::Poisson { seed, .. } | ArrivalProcess::Bursty { seed, .. } => seed,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let burst_left = match *self {
            ArrivalProcess::Bursty { mean_burst_len, .. } => {
                geometric_burst(mean_burst_len, &mut rng) - 1
            }
            _ => 0,
        };
        ArrivalTimes {
            process: *self,
            rng,
            index: 0,
            next: SimTime::ZERO,
            burst_left,
        }
    }

    /// Stamps every record's [`TraceRecord::arrival`] with this
    /// process's arrival instants, in order.
    pub fn stamp(&self, records: &mut [TraceRecord]) {
        let mut times = self.times();
        for record in records {
            record.arrival = Some(times.next_time());
        }
    }
}

impl core::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ArrivalProcess::Constant { interval } => write!(f, "constant({interval})"),
            ArrivalProcess::Poisson { mean_interval, .. } => {
                write!(f, "poisson(mean {mean_interval})")
            }
            ArrivalProcess::Bursty {
                on_interval,
                off_gap,
                mean_burst_len,
                ..
            } => write!(
                f,
                "bursty(on {on_interval}, off {off_gap}, mean burst {mean_burst_len})"
            ),
        }
    }
}

/// Samples an exponential gap with the given mean via inversion.
fn exponential_gap(mean: SimDuration, rng: &mut SmallRng) -> SimDuration {
    let u: f64 = rng.random();
    // u in [0, 1), so 1 - u in (0, 1] and the log is finite and <= 0.
    let nanos = -(mean.as_nanos() as f64) * (1.0 - u).ln();
    SimDuration::from_nanos(nanos.round() as u64)
}

/// Samples a geometric burst length with the given mean (>= 1).
fn geometric_burst(mean_len: f64, rng: &mut SmallRng) -> u64 {
    if mean_len <= 1.0 {
        return 1;
    }
    let continue_p = 1.0 - 1.0 / mean_len;
    let mut len = 1u64;
    while len < MAX_BURST_LEN && rng.random::<f64>() < continue_p {
        len += 1;
    }
    len
}

/// The infinite arrival-instant stream of an [`ArrivalProcess`]; see
/// [`ArrivalProcess::times`].
#[derive(Debug, Clone)]
pub struct ArrivalTimes {
    process: ArrivalProcess,
    rng: SmallRng,
    index: u64,
    next: SimTime,
    burst_left: u64,
}

impl ArrivalTimes {
    /// The next arrival instant (the stream never ends).
    pub fn next_time(&mut self) -> SimTime {
        match self.process {
            ArrivalProcess::Constant { interval } => {
                // Exact integer multiples: request i arrives at
                // i * interval, bit-identical to the legacy replay.
                let t = SimTime::ZERO + interval.mul(self.index);
                self.index += 1;
                t
            }
            ArrivalProcess::Poisson { mean_interval, .. } => {
                let t = self.next;
                self.next = t + exponential_gap(mean_interval, &mut self.rng);
                t
            }
            ArrivalProcess::Bursty {
                on_interval,
                off_gap,
                mean_burst_len,
                ..
            } => {
                let t = self.next;
                let gap = if self.burst_left > 0 {
                    self.burst_left -= 1;
                    on_interval
                } else {
                    self.burst_left = geometric_burst(mean_burst_len, &mut self.rng) - 1;
                    on_interval + off_gap
                };
                self.next = t + gap;
                t
            }
        }
    }
}

impl Iterator for ArrivalTimes {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        Some(self.next_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zssd_types::Lpn;
    use zssd_types::ValueId;

    const MEAN: SimDuration = SimDuration::from_micros(1000);

    fn mean_gap_of(process: &ArrivalProcess, n: u64) -> f64 {
        let times: Vec<SimTime> = process.times().take(n as usize).collect();
        let span = times[times.len() - 1].saturating_since(times[0]);
        span.as_nanos() as f64 / (n - 1) as f64
    }

    #[test]
    fn constant_matches_integer_multiples() {
        let p = ArrivalProcess::constant(MEAN);
        for (i, t) in p.times().take(10).enumerate() {
            assert_eq!(t, SimTime::ZERO + MEAN.mul(i as u64));
        }
    }

    #[test]
    fn all_processes_start_at_zero_and_are_monotone() {
        for p in [
            ArrivalProcess::constant(MEAN),
            ArrivalProcess::poisson(MEAN, 7),
            ArrivalProcess::bursty(MEAN, 8.0, 7),
        ] {
            p.validate().expect("valid");
            let times: Vec<SimTime> = p.times().take(500).collect();
            assert_eq!(times[0], SimTime::ZERO, "{p}");
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{p}: monotone");
        }
    }

    #[test]
    fn stochastic_processes_are_seed_deterministic() {
        for p in [
            ArrivalProcess::poisson(MEAN, 9),
            ArrivalProcess::bursty(MEAN, 4.0, 9),
        ] {
            let a: Vec<SimTime> = p.times().take(200).collect();
            let b: Vec<SimTime> = p.times().take(200).collect();
            assert_eq!(a, b, "{p}: same process, same stream");
        }
        let a: Vec<SimTime> = ArrivalProcess::poisson(MEAN, 1).times().take(50).collect();
        let b: Vec<SimTime> = ArrivalProcess::poisson(MEAN, 2).times().take(50).collect();
        assert_ne!(a, b, "different seeds differ");
    }

    #[test]
    fn empirical_means_match_the_target() {
        for p in [
            ArrivalProcess::poisson(MEAN, 11),
            ArrivalProcess::bursty(MEAN, 16.0, 11),
        ] {
            let got = mean_gap_of(&p, 20_000);
            let want = MEAN.as_nanos() as f64;
            assert!(
                (got - want).abs() / want < 0.1,
                "{p}: empirical mean {got} vs target {want}"
            );
        }
    }

    #[test]
    fn bursty_gaps_are_bimodal() {
        let p = ArrivalProcess::bursty(MEAN, 8.0, 3);
        let ArrivalProcess::Bursty {
            on_interval,
            off_gap,
            ..
        } = p
        else {
            unreachable!()
        };
        let times: Vec<SimTime> = p.times().take(1000).collect();
        let mut on = 0u64;
        let mut off = 0u64;
        for w in times.windows(2) {
            let gap = w[1].saturating_since(w[0]);
            if gap == on_interval {
                on += 1;
            } else if gap == on_interval + off_gap {
                off += 1;
            } else {
                panic!("unexpected gap {gap}");
            }
        }
        assert!(on > 0 && off > 0, "both burst phases must occur");
        assert!(on > off, "most gaps are intra-burst");
    }

    #[test]
    fn mean_interval_is_consistent() {
        assert_eq!(ArrivalProcess::constant(MEAN).mean_interval(), MEAN);
        assert_eq!(ArrivalProcess::poisson(MEAN, 0).mean_interval(), MEAN);
        let b = ArrivalProcess::bursty(MEAN, 16.0, 0).mean_interval();
        let err = (b.as_nanos() as f64 - MEAN.as_nanos() as f64).abs() / MEAN.as_nanos() as f64;
        assert!(err < 0.001, "bursty mean {b} vs {MEAN}");
    }

    #[test]
    fn stamp_fills_every_record() {
        let mut records = vec![
            TraceRecord::write(0, Lpn::new(0), ValueId::new(1)),
            TraceRecord::read(1, Lpn::new(0), ValueId::new(1)),
            TraceRecord::trim(2, Lpn::new(0)),
        ];
        ArrivalProcess::constant(MEAN).stamp(&mut records);
        assert_eq!(records[0].arrival, Some(SimTime::ZERO));
        assert_eq!(records[1].arrival, Some(SimTime::ZERO + MEAN));
        assert_eq!(records[2].arrival, Some(SimTime::ZERO + MEAN.mul(2)));
    }

    #[test]
    fn spec_parsing_round_trips() {
        let mean = MEAN;
        assert_eq!(
            ArrivalProcess::from_spec("constant", mean, 5).expect("ok"),
            ArrivalProcess::constant(mean)
        );
        assert_eq!(
            ArrivalProcess::from_spec("uniform", mean, 5).expect("ok"),
            ArrivalProcess::constant(mean)
        );
        assert_eq!(
            ArrivalProcess::from_spec("poisson", mean, 5).expect("ok"),
            ArrivalProcess::poisson(mean, 5)
        );
        assert_eq!(
            ArrivalProcess::from_spec("bursty", mean, 5).expect("ok"),
            ArrivalProcess::bursty(mean, DEFAULT_BURST_LEN, 5)
        );
        assert_eq!(
            ArrivalProcess::from_spec("bursty:4", mean, 5).expect("ok"),
            ArrivalProcess::bursty(mean, 4.0, 5)
        );
        assert!(ArrivalProcess::from_spec("bogus", mean, 5).is_err());
        assert!(ArrivalProcess::from_spec("bursty:0.5", mean, 5).is_err());
        assert!(ArrivalProcess::from_spec("bursty:x", mean, 5).is_err());
    }

    #[test]
    fn validation_catches_degenerate_parameters() {
        assert!(ArrivalProcess::constant(SimDuration::ZERO)
            .validate()
            .is_ok());
        assert!(ArrivalProcess::poisson(SimDuration::ZERO, 0)
            .validate()
            .is_err());
        let degenerate = ArrivalProcess::Bursty {
            on_interval: SimDuration::ZERO,
            off_gap: SimDuration::ZERO,
            mean_burst_len: 4.0,
            seed: 0,
        };
        assert!(degenerate.validate().is_err());
        let bad_len = ArrivalProcess::Bursty {
            on_interval: MEAN,
            off_gap: MEAN,
            mean_burst_len: 0.0,
            seed: 0,
        };
        assert!(bad_len.validate().is_err());
    }
}
