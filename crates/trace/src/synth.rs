//! The synthetic content-trace generator.

use zssd_types::FxHashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use zssd_types::{Lpn, ValueId};

use crate::profile::WorkloadProfile;
use crate::record::{initial_value_of, IoOp, TraceRecord};
use crate::zipf::ZipfSampler;

/// Re-orders a multiset of value occurrences into a run-shuffled
/// sequence: each value's `count` occurrences are split into runs of
/// geometric length (mean `burst_len`), and the runs — not the
/// individual occurrences — are placed in random order. `burst_len <=
/// 1` degenerates to a plain uniform shuffle.
fn burstify<R: rand::Rng + ?Sized>(values: Vec<u64>, burst_len: f64, rng: &mut R) -> Vec<u64> {
    if burst_len <= 1.0 {
        let mut values = values;
        values.shuffle(rng);
        return values;
    }
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    for &v in &values {
        *counts.entry(v).or_insert(0) += 1;
    }
    // Sort for a deterministic run order regardless of hasher.
    let mut counts: Vec<(u64, u64)> = counts.into_iter().collect();
    counts.sort_unstable();
    let continue_p = 1.0 - 1.0 / burst_len;
    let mut runs: Vec<(u64, u32)> = Vec::new();
    for (v, mut remaining) in counts {
        while remaining > 0 {
            let mut len = 1u32;
            while u64::from(len) < remaining && rng.random::<f64>() < continue_p {
                len += 1;
            }
            runs.push((v, len));
            remaining -= u64::from(len);
        }
    }
    runs.shuffle(rng);
    let mut out = Vec::with_capacity(values.len());
    for (v, len) in runs {
        out.extend(std::iter::repeat_n(v, len as usize));
    }
    out
}

/// A generated multi-day content trace.
///
/// Generation (deterministic for a given profile + seed):
///
/// 1. The write/read interleaving is an exact-count random shuffle of
///    `write_ratio · total` writes and the remaining reads.
/// 2. Write **contents**: `unique_write_frac · writes` distinct values
///    are each written once (their *creations*); every remaining write
///    repeats an existing value drawn Zipf(`value_alpha`) by rank —
///    this single knob produces the paper's skewed popularity,
///    invalidation, and rebirth distributions (Figs 2–4).
/// 3. Write **addresses** are drawn Zipf(`lpn_alpha`) through a random
///    rank→LPN permutation, so hot addresses and hot values are
///    independent. Overwriting an address kills the value copy it held.
/// 4. Read addresses are drawn Zipf(`read_alpha`); the record carries
///    the content currently held there (pre-trace addresses hold
///    [`initial_value_of`] content).
/// 5. When `trim_ratio > 0`, that fraction of requests are TRIMs
///    aimed at the write-hot region; a trimmed address reads as
///    initial content afterwards. At the default ratio of zero the
///    trace is bit-identical to pre-TRIM versions of the generator.
///
/// # Examples
///
/// ```
/// use zssd_trace::{SyntheticTrace, WorkloadProfile};
/// let trace = SyntheticTrace::generate(&WorkloadProfile::web().scaled(0.01), 1);
/// assert_eq!(trace.num_days(), 3);
/// assert_eq!(trace.records().len(), trace.day(0).len() * 3);
/// // Deterministic: same seed, same trace.
/// let again = SyntheticTrace::generate(&WorkloadProfile::web().scaled(0.01), 1);
/// assert_eq!(trace.records(), again.records());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    name: String,
    records: Vec<TraceRecord>,
    requests_per_day: usize,
    days: u32,
}

impl SyntheticTrace {
    /// Generates a trace from a profile, deterministically in `seed`.
    pub fn generate(profile: &WorkloadProfile, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let total = profile.total_requests() as usize;
        let writes = ((total as f64) * profile.write_ratio).round() as usize;
        let writes = writes.min(total);
        let trims = (((total as f64) * profile.trim_ratio).round() as usize).min(total - writes);
        let reads = total - writes - trims;

        // 1. Exact-count op interleaving. Trims are appended after the
        // other ops so a `trim_ratio` of zero leaves the shuffle — and
        // therefore the whole trace — bit-identical to older versions
        // (Fisher–Yates consumes RNG draws based only on length).
        let mut ops: Vec<IoOp> = Vec::with_capacity(total);
        ops.extend(std::iter::repeat_n(IoOp::Write, writes));
        ops.extend(std::iter::repeat_n(IoOp::Read, reads));
        ops.extend(std::iter::repeat_n(IoOp::Trim, trims));
        ops.shuffle(&mut rng);

        // 2. Write contents: creations + Zipf-ranked repetitions.
        let unique = (((writes as f64) * profile.unique_write_frac).round() as usize)
            .clamp(1.min(writes), writes.max(1));
        let mut values: Vec<u64> = Vec::with_capacity(writes);
        values.extend(0..unique as u64);
        if writes > unique {
            let zipf = ZipfSampler::new(unique as u64, profile.value_alpha);
            values.extend((0..writes - unique).map(|_| zipf.sample(&mut rng)));
        }
        // Burstify: group each value's occurrences into geometric runs
        // and shuffle the *runs*, so a value's writes cluster in time
        // and the value fully dies between bursts.
        let values = burstify(values, profile.burst_len, &mut rng);

        // 3/4. Address selection through a shuffled permutation.
        let mut perm: Vec<u64> = (0..profile.lpn_space).collect();
        perm.shuffle(&mut rng);
        let write_addr = ZipfSampler::new(profile.lpn_space, profile.lpn_alpha);
        let read_addr = ZipfSampler::new(profile.lpn_space, profile.read_alpha);

        let mut content: FxHashMap<Lpn, ValueId> = FxHashMap::default();
        let mut records = Vec::with_capacity(total);
        let mut next_value = 0usize;
        // Each value's "home" address: a fixed pseudo-random spot in
        // the footprint. With probability `home_affinity`, a write of
        // a value lands there — modelling the real-trace correlation
        // between content and address (the same file block rewritten
        // with the same content).
        let home_region = ((profile.lpn_space as f64 * profile.home_region_frac).round() as u64)
            .clamp(1, profile.lpn_space);
        let home_of = |value: u64| -> u64 {
            let mut h = value ^ 0x517c_c1b7_2722_0a95;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            // Homes cluster in a hot region at the front of the
            // (shuffled) address permutation, so recurring values
            // overwrite each other and fully die between bursts.
            perm[(h % home_region) as usize]
        };
        for (seq, op) in ops.into_iter().enumerate() {
            match op {
                IoOp::Write => {
                    let value = ValueId::new(values[next_value]);
                    next_value += 1;
                    let raw_lpn = if rng.random::<f64>() < profile.home_affinity {
                        home_of(value.raw())
                    } else {
                        perm[write_addr.sample(&mut rng) as usize]
                    };
                    let lpn = Lpn::new(raw_lpn);
                    content.insert(lpn, value);
                    records.push(TraceRecord::write(seq as u64, lpn, value));
                }
                IoOp::Read => {
                    let lpn = Lpn::new(perm[read_addr.sample(&mut rng) as usize]);
                    let value = content
                        .get(&lpn)
                        .copied()
                        .unwrap_or_else(|| initial_value_of(lpn));
                    records.push(TraceRecord::read(seq as u64, lpn, value));
                }
                IoOp::Trim => {
                    // Trims target the write-hot region (hosts discard
                    // what they recently wrote), discarding whatever
                    // content is there.
                    let lpn = Lpn::new(perm[write_addr.sample(&mut rng) as usize]);
                    content.remove(&lpn);
                    records.push(TraceRecord::trim(seq as u64, lpn));
                }
            }
        }

        SyntheticTrace {
            name: profile.name.clone(),
            records,
            requests_per_day: profile.requests_per_day as usize,
            days: profile.days,
        }
    }

    /// Wraps externally produced records as a single-day trace (e.g.
    /// records parsed from a text file).
    pub fn from_records(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        let len = records.len().max(1);
        SyntheticTrace {
            name: name.into(),
            records,
            requests_per_day: len,
            days: 1,
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All records, in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the trace, returning its records without copying —
    /// for callers that share the buffer (e.g. `Arc<[TraceRecord]>`).
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of days.
    pub fn num_days(&self) -> u32 {
        self.days
    }

    /// The records of day `i` (0-based). The paper's `m2` is
    /// `mail.day(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_days()`.
    pub fn day(&self, i: u32) -> &[TraceRecord] {
        assert!(i < self.days, "day {i} out of range ({} days)", self.days);
        let start = self.requests_per_day * i as usize;
        let end = (start + self.requests_per_day).min(self.records.len());
        &self.records[start..end]
    }

    /// Records of days `0..=i` — a trace prefix ending at day `i`,
    /// matching how the paper's per-day points accumulate state.
    pub fn through_day(&self, i: u32) -> &[TraceRecord] {
        assert!(i < self.days, "day {i} out of range ({} days)", self.days);
        let end = (self.requests_per_day * (i as usize + 1)).min(self.records.len());
        &self.records[..end]
    }

    /// The day labels the paper uses in Figs 1 and 5: `m1`, `m2`, …
    pub fn day_labels(&self) -> Vec<String> {
        let initial = self.name.chars().next().unwrap_or('x');
        (1..=self.days).map(|d| format!("{initial}{d}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::IoOp;
    use crate::stats::TraceStats;

    fn small(profile: WorkloadProfile) -> SyntheticTrace {
        SyntheticTrace::generate(&profile.scaled(0.02), 7)
    }

    #[test]
    fn request_counts_match_profile() {
        let p = WorkloadProfile::web().scaled(0.02);
        let t = SyntheticTrace::generate(&p, 3);
        assert_eq!(t.records().len() as u64, p.total_requests());
        let writes = t.records().iter().filter(|r| r.is_write()).count();
        let expect = (p.total_requests() as f64 * p.write_ratio).round() as usize;
        assert_eq!(writes, expect);
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let t = small(WorkloadProfile::trans());
        for (i, r) in t.records().iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn unique_write_fraction_is_exact() {
        let p = WorkloadProfile::mail().scaled(0.05);
        let t = SyntheticTrace::generate(&p, 11);
        let stats = TraceStats::measure(t.records());
        let expect = p.unique_write_frac;
        let got = stats.unique_write_frac();
        assert!(
            (got - expect).abs() < 0.01,
            "unique write fraction {got} far from target {expect}"
        );
    }

    #[test]
    fn reads_observe_last_written_content() {
        let t = small(WorkloadProfile::web());
        let mut content: FxHashMap<Lpn, ValueId> = FxHashMap::default();
        for r in t.records() {
            match r.op {
                IoOp::Write => {
                    content.insert(r.lpn, r.value);
                }
                IoOp::Read => {
                    let expect = content
                        .get(&r.lpn)
                        .copied()
                        .unwrap_or_else(|| initial_value_of(r.lpn));
                    assert_eq!(r.value, expect, "read at seq {}", r.seq);
                }
                IoOp::Trim => {
                    content.remove(&r.lpn);
                }
            }
        }
    }

    #[test]
    fn trim_ratio_emits_exact_trim_counts() {
        let p = WorkloadProfile::web().scaled(0.02).with_trim_ratio(0.1);
        let t = SyntheticTrace::generate(&p, 7);
        let trims = t.records().iter().filter(|r| r.is_trim()).count();
        let expect = (p.total_requests() as f64 * p.trim_ratio).round() as usize;
        assert_eq!(trims, expect);
        assert!(trims > 0);
        // Reads still observe the shadow content even across trims.
        let mut content: FxHashMap<Lpn, ValueId> = FxHashMap::default();
        for r in t.records() {
            match r.op {
                IoOp::Write => {
                    content.insert(r.lpn, r.value);
                }
                IoOp::Read => {
                    let expect = content
                        .get(&r.lpn)
                        .copied()
                        .unwrap_or_else(|| initial_value_of(r.lpn));
                    assert_eq!(r.value, expect, "read at seq {}", r.seq);
                }
                IoOp::Trim => {
                    content.remove(&r.lpn);
                }
            }
        }
    }

    #[test]
    fn zero_trim_ratio_is_bit_identical_to_default() {
        let p = WorkloadProfile::web().scaled(0.01);
        let a = SyntheticTrace::generate(&p, 3);
        let b = SyntheticTrace::generate(&p.clone().with_trim_ratio(0.0), 3);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn days_partition_the_trace() {
        let t = small(WorkloadProfile::home());
        let mut reassembled = Vec::new();
        for d in 0..t.num_days() {
            reassembled.extend_from_slice(t.day(d));
        }
        assert_eq!(reassembled, t.records());
        assert_eq!(t.through_day(1).len(), t.day(0).len() + t.day(1).len());
    }

    #[test]
    fn day_labels_match_paper_notation() {
        let t = small(WorkloadProfile::mail());
        assert_eq!(t.day_labels(), vec!["m1", "m2", "m3"]);
    }

    #[test]
    fn different_seeds_differ() {
        let p = WorkloadProfile::web().scaled(0.01);
        let a = SyntheticTrace::generate(&p, 1);
        let b = SyntheticTrace::generate(&p, 2);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = WorkloadProfile::desktop().scaled(0.02);
        let t = SyntheticTrace::generate(&p, 5);
        assert!(t.records().iter().all(|r| r.lpn.index() < p.lpn_space));
    }

    #[test]
    fn from_records_wraps_single_day() {
        let recs = vec![TraceRecord::write(0, Lpn::new(1), ValueId::new(2))];
        let t = SyntheticTrace::from_records("custom", recs.clone());
        assert_eq!(t.name(), "custom");
        assert_eq!(t.num_days(), 1);
        assert_eq!(t.day(0), &recs[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn day_out_of_range_panics() {
        let t = small(WorkloadProfile::web());
        let _ = t.day(99);
    }
}
