//! Workload profiles: the knobs of the synthetic generator plus the
//! six paper presets (Table II).

/// Parameters of a synthetic content workload.
///
/// The three quantities Table II reports — write ratio, % unique write
/// values, % unique read values — are controlled by `write_ratio`,
/// `unique_write_frac`, and `read_alpha` respectively; `value_alpha`
/// sets the popularity skew among duplicated values (Fig 3's 20/80
/// shape at `alpha ≈ 1`). All fields are public: this is a passive
/// configuration record.
///
/// # Examples
///
/// ```
/// use zssd_trace::WorkloadProfile;
/// let mail = WorkloadProfile::mail();
/// assert_eq!(mail.name, "mail");
/// assert!(mail.write_ratio > 0.7);
/// let small = mail.scaled(0.1);
/// assert_eq!(small.requests_per_day, mail.requests_per_day / 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name (used in figure labels: "mail" → `m1`, `m2`, …).
    pub name: String,
    /// Requests issued per simulated day.
    pub requests_per_day: u64,
    /// Number of consecutive days (the paper's `m1`..`mN` series).
    pub days: u32,
    /// Fraction of requests that are writes (Table II "WR %").
    pub write_ratio: f64,
    /// Target fraction of write requests carrying never-seen content
    /// (Table II "Unique Value % — WR").
    pub unique_write_frac: f64,
    /// Zipf exponent of duplicate-value popularity (higher = a few
    /// values dominate rewrites).
    pub value_alpha: f64,
    /// Zipf exponent of write address selection (update locality).
    pub lpn_alpha: f64,
    /// Zipf exponent of read address selection — the main control of
    /// Table II "Unique Value % — RD" (higher = more repeated reads).
    pub read_alpha: f64,
    /// Logical footprint in 4 KB pages.
    pub lpn_space: u64,
    /// Probability that a duplicate write lands on its value's *home*
    /// address instead of a fresh Zipf draw. Real traces correlate
    /// content and address (the same file block is rewritten with the
    /// same content), which is what makes the paper's per-LPN 1-byte
    /// popularity counter a usable proxy for value popularity.
    pub home_affinity: f64,
    /// Mean length of a value's occurrence *burst*: a value's writes
    /// arrive in clustered runs (a circulated attachment lands in many
    /// mailboxes this hour, then goes quiet) rather than spread
    /// uniformly over the trace. Between bursts all copies of a value
    /// typically die — the window in which only the dead-value pool
    /// (not deduplication) can eliminate its rewrites (SVII, Fig 13).
    /// `1.0` disables bursting.
    pub burst_len: f64,
    /// Fraction of the footprint that hosts the values' *home*
    /// addresses. A small region makes recurring content share a hot
    /// set of addresses (a mail spool, a database working set), so
    /// values overwrite each other there and fully die between bursts
    /// — the death/rebirth cycle the paper exploits. `1.0` spreads
    /// homes over the whole footprint.
    pub home_region_frac: f64,
    /// Fraction of requests that are TRIMs (host discards). The FIU
    /// traces predate widespread TRIM, so every paper preset uses
    /// `0.0`; [`WorkloadProfile::with_trim_ratio`] opts a workload in.
    pub trim_ratio: f64,
}

impl WorkloadProfile {
    /// FIU **web** server: WR 77%, unique writes 42%, unique reads 32%.
    pub fn web() -> Self {
        WorkloadProfile {
            name: "web".to_owned(),
            requests_per_day: 600_000,
            days: 3,
            write_ratio: 0.77,
            unique_write_frac: 0.42,
            value_alpha: 0.95,
            lpn_alpha: 1.1,
            read_alpha: 1.35,
            lpn_space: 160_000,
            home_affinity: 0.8,
            burst_len: 4.0,
            home_region_frac: 0.03,
            trim_ratio: 0.0,
        }
    }

    /// FIU **home** directories: WR 96%, unique writes 66%, unique
    /// reads 80%.
    pub fn home() -> Self {
        WorkloadProfile {
            name: "home".to_owned(),
            requests_per_day: 600_000,
            days: 3,
            write_ratio: 0.96,
            unique_write_frac: 0.66,
            value_alpha: 1.05,
            lpn_alpha: 1.0,
            read_alpha: 1.0,
            lpn_space: 240_000,
            home_affinity: 0.75,
            burst_len: 3.0,
            home_region_frac: 0.05,
            trim_ratio: 0.0,
        }
    }

    /// FIU **mail** server: WR 77%, unique writes 8%, unique reads 80%.
    /// The paper's best case: massive write redundancy (circulated
    /// attachments, SPAM) and the largest footprint.
    pub fn mail() -> Self {
        WorkloadProfile {
            name: "mail".to_owned(),
            requests_per_day: 1_000_000,
            days: 3,
            write_ratio: 0.77,
            unique_write_frac: 0.08,
            value_alpha: 1.05,
            lpn_alpha: 1.3,
            read_alpha: 0.15,
            lpn_space: 2_100_000,
            home_affinity: 0.9,
            burst_len: 6.0,
            home_region_frac: 0.02,
            trim_ratio: 0.0,
        }
    }

    /// OSU **hadoop**: WR 30%, unique writes 63.9%, unique reads 17.5%.
    pub fn hadoop() -> Self {
        WorkloadProfile {
            name: "hadoop".to_owned(),
            requests_per_day: 300_000,
            days: 3,
            write_ratio: 0.30,
            unique_write_frac: 0.639,
            value_alpha: 1.0,
            lpn_alpha: 0.9,
            read_alpha: 1.12,
            lpn_space: 60_000,
            home_affinity: 0.65,
            burst_len: 2.5,
            home_region_frac: 0.1,
            trim_ratio: 0.0,
        }
    }

    /// OSU **trans** (transactional/TPC-like): WR 55%, unique writes
    /// 77.4%, unique reads 13.8%.
    pub fn trans() -> Self {
        WorkloadProfile {
            name: "trans".to_owned(),
            requests_per_day: 300_000,
            days: 3,
            write_ratio: 0.55,
            unique_write_frac: 0.774,
            value_alpha: 1.3,
            lpn_alpha: 0.8,
            read_alpha: 1.52,
            lpn_space: 30_000,
            home_affinity: 0.5,
            burst_len: 2.0,
            home_region_frac: 0.1,
            trim_ratio: 0.0,
        }
    }

    /// OSU **desktop** (office system): WR 42%, unique writes 74.7%,
    /// unique reads 49.7%. Small footprint, low redundancy — the
    /// paper's worst case.
    pub fn desktop() -> Self {
        WorkloadProfile {
            name: "desktop".to_owned(),
            requests_per_day: 300_000,
            days: 3,
            write_ratio: 0.42,
            unique_write_frac: 0.747,
            value_alpha: 1.2,
            lpn_alpha: 0.8,
            read_alpha: 0.8,
            lpn_space: 96_000,
            home_affinity: 0.5,
            burst_len: 2.0,
            home_region_frac: 0.25,
            trim_ratio: 0.0,
        }
    }

    /// All six paper workloads, in the order of the evaluation figures.
    pub fn paper_set() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::web(),
            WorkloadProfile::home(),
            WorkloadProfile::mail(),
            WorkloadProfile::hadoop(),
            WorkloadProfile::trans(),
            WorkloadProfile::desktop(),
        ]
    }

    /// The three FIU day-series workloads of Figs 1 and 5 (mail, home,
    /// web).
    pub fn fiu_set() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::mail(),
            WorkloadProfile::home(),
            WorkloadProfile::web(),
        ]
    }

    /// Shrinks (or grows) the workload: request count and footprint
    /// scale by `factor`, all ratios stay fixed. Useful for tests and
    /// examples.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> WorkloadProfile {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let mut scaled = self.clone();
        scaled.requests_per_day = ((self.requests_per_day as f64 * factor).round() as u64).max(10);
        scaled.lpn_space = ((self.lpn_space as f64 * factor).round() as u64).max(64);
        scaled
    }

    /// Same profile with a different number of days.
    pub fn with_days(mut self, days: u32) -> WorkloadProfile {
        assert!(days > 0, "at least one day");
        self.days = days;
        self
    }

    /// Same profile with `ratio` of its requests issued as TRIMs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= ratio < 1`.
    pub fn with_trim_ratio(mut self, ratio: f64) -> WorkloadProfile {
        assert!(
            ratio.is_finite() && (0.0..1.0).contains(&ratio),
            "trim ratio must be in [0, 1)"
        );
        self.trim_ratio = ratio;
        self
    }

    /// Total requests across all days.
    pub fn total_requests(&self) -> u64 {
        self.requests_per_day * u64::from(self.days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_table2_targets() {
        let set = WorkloadProfile::paper_set();
        assert_eq!(set.len(), 6);
        let names: Vec<&str> = set.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["web", "home", "mail", "hadoop", "trans", "desktop"]);
        let mail = &set[2];
        assert_eq!(mail.write_ratio, 0.77);
        assert_eq!(mail.unique_write_frac, 0.08);
        let home = &set[1];
        assert_eq!(home.write_ratio, 0.96);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let base = WorkloadProfile::web();
        let s = base.scaled(0.1);
        assert_eq!(s.write_ratio, base.write_ratio);
        assert_eq!(s.unique_write_frac, base.unique_write_frac);
        assert_eq!(s.requests_per_day, base.requests_per_day / 10);
        assert_eq!(s.lpn_space, base.lpn_space / 10);
    }

    #[test]
    fn scaling_clamps_to_minimums() {
        let tiny = WorkloadProfile::web().scaled(1e-9);
        assert!(tiny.requests_per_day >= 10);
        assert!(tiny.lpn_space >= 64);
    }

    #[test]
    fn with_days_and_totals() {
        let p = WorkloadProfile::mail().with_days(5);
        assert_eq!(p.days, 5);
        assert_eq!(p.total_requests(), 5 * p.requests_per_day);
    }

    #[test]
    fn trim_ratio_defaults_off_and_opts_in() {
        for p in WorkloadProfile::paper_set() {
            assert_eq!(p.trim_ratio, 0.0, "{}", p.name);
        }
        let p = WorkloadProfile::web().with_trim_ratio(0.1);
        assert_eq!(p.trim_ratio, 0.1);
    }

    #[test]
    #[should_panic(expected = "trim ratio")]
    fn bad_trim_ratio_rejected() {
        let _ = WorkloadProfile::web().with_trim_ratio(1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_rejected() {
        let _ = WorkloadProfile::web().scaled(0.0);
    }
}
