//! Monotone event counters.

use core::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use zssd_metrics::Counter;
/// let mut writes = Counter::new();
/// writes.add(3);
/// writes.incr();
/// assert_eq!(writes.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Fraction of this counter relative to `total`, or 0 when `total`
    /// is zero.
    pub fn fraction_of(self, total: Counter) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Relative reduction of `candidate` with respect to `baseline`, as a
/// percentage in `[−∞, 100]`: `100 · (baseline − candidate) / baseline`.
///
/// This is the quantity every evaluation figure of the paper plots
/// ("reduction in the number of writes", "latency improvement"). A
/// zero baseline yields 0.
///
/// # Examples
///
/// ```
/// use zssd_metrics::reduction_pct;
/// assert_eq!(reduction_pct(200.0, 140.0), 30.0);
/// assert_eq!(reduction_pct(0.0, 10.0), 0.0);
/// ```
pub fn reduction_pct(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        100.0 * (baseline - candidate) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn fraction_handles_zero_total() {
        let c = Counter::new();
        assert_eq!(Counter::new().fraction_of(c), 0.0);
        let mut total = Counter::new();
        total.add(4);
        let mut part = Counter::new();
        part.add(1);
        assert_eq!(part.fraction_of(total), 0.25);
    }

    #[test]
    fn reduction_pct_basic() {
        assert_eq!(reduction_pct(100.0, 71.0), 29.0);
        assert_eq!(reduction_pct(100.0, 100.0), 0.0);
        assert!(reduction_pct(100.0, 130.0) < 0.0);
    }
}
