//! Popularity share curves (Fig 3 of the paper).
//!
//! Figure 3 sorts unique values by write count (descending) and plots
//! the cumulative share of writes / invalidations / rebirths they
//! account for — a Lorenz-style curve showing, e.g., that "around 20%
//! of the values account for almost 80% of the writes".

use core::fmt;

/// One point on a [`ShareCurve`]: the top `item_frac` of items account
/// for `event_frac` of all events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharePoint {
    /// Fraction of items considered (top-k by weight), in `(0, 1]`.
    pub item_frac: f64,
    /// Fraction of total events those items account for, in `[0, 1]`.
    pub event_frac: f64,
}

/// A cumulative-share curve over weighted items.
///
/// # Examples
///
/// ```
/// use zssd_metrics::ShareCurve;
/// // 4 values with write counts 8, 1, 1, 0.
/// let curve = ShareCurve::from_weights([8u64, 1, 1, 0]);
/// // The single most-written value (top 25%) has 80% of the writes.
/// assert_eq!(curve.share_of_top(0.25), 0.8);
/// assert_eq!(curve.share_of_top(1.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShareCurve {
    /// Weights sorted descending.
    sorted_desc: Vec<u64>,
    total: u128,
}

impl ShareCurve {
    /// Builds a curve from per-item event counts. Items are sorted by
    /// weight descending internally (the paper's x-axis ordering).
    pub fn from_weights<I: IntoIterator<Item = u64>>(weights: I) -> Self {
        let mut sorted_desc: Vec<u64> = weights.into_iter().collect();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        let total = sorted_desc.iter().map(|&w| u128::from(w)).sum();
        ShareCurve { sorted_desc, total }
    }

    /// Builds a curve from per-item counts keyed by the *same* item
    /// order as another curve's descending-weight order. Used when
    /// Fig 3(b)/(c) plot invalidations/rebirths but keep the x-axis
    /// sorted by write count: pass `(write_count, event_count)` pairs.
    pub fn from_keyed_weights<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        let mut keyed: Vec<(u64, u64)> = pairs.into_iter().collect();
        keyed.sort_unstable_by_key(|&(writes, _)| std::cmp::Reverse(writes));
        let sorted_desc: Vec<u64> = keyed.into_iter().map(|(_, e)| e).collect();
        let total = sorted_desc.iter().map(|&w| u128::from(w)).sum();
        ShareCurve { sorted_desc, total }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.sorted_desc.len()
    }

    /// Whether the curve holds no items.
    pub fn is_empty(&self) -> bool {
        self.sorted_desc.is_empty()
    }

    /// Share of all events accounted for by the top `item_frac` of
    /// items (by the curve's ordering). Returns 0 for an empty curve.
    ///
    /// # Panics
    ///
    /// Panics if `item_frac` is outside `[0, 1]`.
    pub fn share_of_top(&self, item_frac: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&item_frac),
            "item fraction {item_frac} outside [0, 1]"
        );
        if self.sorted_desc.is_empty() || self.total == 0 {
            return 0.0;
        }
        let k = ((item_frac * self.sorted_desc.len() as f64).round() as usize)
            .min(self.sorted_desc.len());
        let top: u128 = self.sorted_desc[..k].iter().map(|&w| u128::from(w)).sum();
        top as f64 / self.total as f64
    }

    /// Samples the curve at `n` evenly spaced item fractions,
    /// returning `(item_frac, event_frac)` points.
    pub fn sample(&self, n: usize) -> Vec<SharePoint> {
        (1..=n)
            .map(|i| {
                let item_frac = i as f64 / n as f64;
                SharePoint {
                    item_frac,
                    event_frac: self.share_of_top(item_frac),
                }
            })
            .collect()
    }

    /// Smallest item fraction whose share reaches `event_frac`
    /// (e.g. "what fraction of values produce 80% of writes?").
    /// Returns 1.0 if never reached (all-zero weights).
    pub fn items_for_share(&self, event_frac: f64) -> f64 {
        if self.sorted_desc.is_empty() || self.total == 0 {
            return 1.0;
        }
        let target = event_frac * self.total as f64;
        let mut acc: u128 = 0;
        for (i, &w) in self.sorted_desc.iter().enumerate() {
            acc += u128::from(w);
            if acc as f64 >= target {
                return (i + 1) as f64 / self.sorted_desc.len() as f64;
            }
        }
        1.0
    }
}

impl fmt::Display for ShareCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.sample(10) {
            writeln!(
                f,
                "top {:>5.1}% -> {:>5.1}%",
                p.item_frac * 100.0,
                p.event_frac * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_weights_show_pareto_shape() {
        let curve = ShareCurve::from_weights([80u64, 10, 5, 3, 2]);
        assert_eq!(curve.share_of_top(0.2), 0.8);
        assert_eq!(curve.share_of_top(1.0), 1.0);
        assert_eq!(curve.items_for_share(0.8), 0.2);
    }

    #[test]
    fn uniform_weights_are_diagonal() {
        let curve = ShareCurve::from_weights(vec![5u64; 10]);
        assert!((curve.share_of_top(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keyed_weights_keep_write_ordering() {
        // Item A: 10 writes, 1 rebirth. Item B: 1 write, 9 rebirths.
        // Sorted by writes, the top-50% item contributes 1 of 10 rebirths.
        let curve = ShareCurve::from_keyed_weights([(10u64, 1u64), (1, 9)]);
        assert_eq!(curve.share_of_top(0.5), 0.1);
    }

    #[test]
    fn empty_and_zero_total_curves() {
        let empty = ShareCurve::default();
        assert!(empty.is_empty());
        assert_eq!(empty.share_of_top(0.5), 0.0);
        assert_eq!(empty.items_for_share(0.5), 1.0);
        let zeros = ShareCurve::from_weights([0u64, 0]);
        assert_eq!(zeros.share_of_top(1.0), 0.0);
    }

    #[test]
    fn sample_is_monotone_nondecreasing() {
        let curve = ShareCurve::from_weights([9u64, 4, 4, 2, 1, 0]);
        let pts = curve.sample(6);
        assert_eq!(pts.len(), 6);
        for w in pts.windows(2) {
            assert!(w[1].event_frac >= w[0].event_frac);
        }
        assert_eq!(pts.last().expect("nonempty").event_frac, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn share_of_top_validates_fraction() {
        let _ = ShareCurve::from_weights([1u64]).share_of_top(1.5);
    }
}
