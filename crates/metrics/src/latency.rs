//! Exact latency statistics.

use core::fmt;

use zssd_types::SimDuration;

/// Records every request latency and answers exact mean / percentile
/// queries.
///
/// The simulator runs bounded trace lengths (≤ a few million requests),
/// so exact storage is cheap and avoids the bias of streaming sketches.
/// Percentile queries sort lazily and cache the sorted order until the
/// next insertion.
///
/// # Examples
///
/// ```
/// use zssd_metrics::LatencyRecorder;
/// use zssd_types::SimDuration;
///
/// let mut lat = LatencyRecorder::new();
/// for us in 1..=100u64 {
///     lat.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(lat.percentile(0.99).as_nanos(), 99_000);
/// assert_eq!(lat.count(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sum: u128,
    max: u64,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            samples: Vec::new(),
            sum: 0,
            max: 0,
            sorted: true,
        }
    }

    /// Creates an empty recorder with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        LatencyRecorder {
            samples: Vec::with_capacity(capacity),
            sum: 0,
            max: 0,
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        self.sum += u128::from(ns);
        self.max = self.max.max(ns);
        if let Some(&last) = self.samples.last() {
            if ns < last {
                self.sorted = false;
            }
        }
        self.samples.push(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean latency; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / self.samples.len() as u128) as u64)
    }

    /// Exact percentile via the nearest-rank method; zero when empty.
    ///
    /// `q` is a fraction in `[0, 1]`, e.g. `0.99` for the tail latency
    /// the paper reports.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        SimDuration::from_nanos(self.samples[rank - 1])
    }

    /// Maximum recorded latency; zero when empty. O(1): the running
    /// maximum is maintained at [`record`](Self::record) time rather
    /// than rescanning the sample vector per query.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// Snapshot of the headline statistics (count, mean, p50/p99/max).
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }

    /// Merges all samples of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A point-in-time digest of a [`LatencyRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile (the paper's "tail latency").
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let mut lat = LatencyRecorder::new();
        assert!(lat.is_empty());
        assert_eq!(lat.mean(), SimDuration::ZERO);
        assert_eq!(lat.percentile(0.99), SimDuration::ZERO);
        assert_eq!(lat.max(), SimDuration::ZERO);
    }

    #[test]
    fn mean_and_percentiles_exact() {
        let mut lat = LatencyRecorder::with_capacity(4);
        for v in [400, 100, 300, 200] {
            lat.record(us(v));
        }
        assert_eq!(lat.mean(), us(250));
        assert_eq!(lat.percentile(0.5), us(200));
        assert_eq!(lat.percentile(1.0), us(400));
        assert_eq!(lat.percentile(0.0), us(100));
        assert_eq!(lat.max(), us(400));
    }

    #[test]
    fn p99_is_nearest_rank() {
        let mut lat = LatencyRecorder::new();
        for v in 1..=1000u64 {
            lat.record(SimDuration::from_nanos(v));
        }
        assert_eq!(lat.percentile(0.99).as_nanos(), 990);
    }

    #[test]
    fn interleaved_record_and_query_stay_consistent() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(10));
        lat.record(us(5));
        assert_eq!(lat.percentile(1.0), us(10));
        lat.record(us(1));
        assert_eq!(lat.percentile(0.0), us(1));
        assert_eq!(lat.count(), 3);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(us(1));
        let mut b = LatencyRecorder::new();
        b.record(us(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), us(2));
    }

    #[test]
    fn running_max_tracks_record_and_merge() {
        // Regression for the O(n)-per-call rescan: `max()` must stay
        // exact through out-of-order records and merges in both
        // directions, since it only sees values at insertion time.
        let mut a = LatencyRecorder::new();
        for v in [7, 2, 9, 3] {
            a.record(us(v));
        }
        assert_eq!(a.max(), us(9));
        let mut b = LatencyRecorder::new();
        b.record(us(4));
        b.merge(&a);
        assert_eq!(b.max(), us(9));
        a.merge(&b);
        assert_eq!(a.max(), us(9));
        a.record(us(11));
        assert_eq!(a.max(), us(11));
        assert_eq!(a.summary().max, us(11));
    }

    #[test]
    fn summary_display_mentions_all_fields() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(2));
        let text = lat.summary().to_string();
        assert!(text.contains("n=1") && text.contains("p99="));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(1));
        let _ = lat.percentile(1.5);
    }
}
