//! Empirical cumulative distribution functions.

use core::fmt;

/// An empirical CDF over integer samples.
///
/// Figure 2 of the paper plots "the fraction of values with less than
/// or equal number of invalidations" — exactly [`Cdf::fraction_le`].
///
/// # Examples
///
/// ```
/// use zssd_metrics::Cdf;
/// let cdf = Cdf::from_samples([0u64, 0, 1, 3]);
/// assert_eq!(cdf.fraction_le(0), 0.5);
/// assert_eq!(cdf.fraction_le(2), 0.75);
/// assert_eq!(cdf.fraction_le(3), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from any iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let mut sorted: Vec<u64> = samples.into_iter().collect();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`; 0 for an empty CDF.
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample value `v` with `fraction_le(v) ≥ q`; zero
    /// when empty, matching
    /// [`LatencyRecorder::percentile`](crate::LatencyRecorder::percentile)
    /// so a zero-read or all-trim workload never crashes report
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.sorted.is_empty() {
            return 0;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Minimum sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// Maximum sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }

    /// Evaluation points covering the full support: each distinct
    /// sample value paired with its cumulative fraction. Suitable for
    /// plotting or text tables.
    pub fn steps(&self) -> Vec<(u64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

impl FromIterator<u64> for Cdf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Cdf::from_samples(iter)
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "<empty cdf>");
        }
        for (v, frac) in self.steps() {
            writeln!(f, "{:>10}  {:.4}", v, frac)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_le_matches_hand_count() {
        let cdf = Cdf::from_samples([5u64, 1, 1, 2, 9]);
        assert_eq!(cdf.fraction_le(0), 0.0);
        assert_eq!(cdf.fraction_le(1), 0.4);
        assert_eq!(cdf.fraction_le(2), 0.6);
        assert_eq!(cdf.fraction_le(8), 0.8);
        assert_eq!(cdf.fraction_le(100), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let cdf: Cdf = (1..=10u64).collect();
        assert_eq!(cdf.quantile(0.1), 1);
        assert_eq!(cdf.quantile(0.5), 5);
        assert_eq!(cdf.quantile(1.0), 10);
        assert_eq!(cdf.min(), Some(1));
        assert_eq!(cdf.max(), Some(10));
    }

    #[test]
    fn steps_collapse_duplicates() {
        let cdf = Cdf::from_samples([2u64, 2, 2, 7]);
        assert_eq!(cdf.steps(), vec![(2, 0.75), (7, 1.0)]);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_le(5), 0.0);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.to_string(), "<empty cdf>");
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        // Regression: used to panic, crashing report generation for
        // workloads with no samples (e.g. zero reads). The empty case
        // now mirrors `LatencyRecorder::percentile`'s ZERO convention.
        let cdf = Cdf::default();
        assert_eq!(cdf.quantile(0.0), 0);
        assert_eq!(cdf.quantile(0.5), 0);
        assert_eq!(cdf.quantile(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range_even_when_empty() {
        let _ = Cdf::default().quantile(1.5);
    }
}
