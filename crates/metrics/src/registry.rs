//! Per-component counter registries and phase timers.
//!
//! A [`CounterRegistry`] flattens a run's scalar counters into one
//! name → value map; a [`PhaseTimers`] accumulates how much simulated
//! time each named phase (GC relocation, erase, scrub, …) consumed.
//! Both store their entries in `BTreeMap`s so iteration — and hence
//! every export built on it — has a deterministic order regardless of
//! insertion order or thread count.

use std::collections::BTreeMap;

use zssd_types::SimDuration;

/// A deterministic name → value counter map.
///
/// # Examples
///
/// ```
/// use zssd_metrics::CounterRegistry;
/// let mut reg = CounterRegistry::new();
/// reg.add("host_writes", 10);
/// reg.incr("gc_collections");
/// assert_eq!(reg.get("host_writes"), 10);
/// assert_eq!(reg.get("missing"), 0);
/// let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
/// assert_eq!(names, vec!["gc_collections", "host_writes"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `value` to the counter `name` (creating it at 0).
    pub fn add(&mut self, name: &'static str, value: u64) {
        *self.counters.entry(name).or_insert(0) += value;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name`; 0 if never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the registry holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

/// Accumulated simulated time and invocation count of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Total simulated time spent in the phase.
    pub total: SimDuration,
    /// Number of phase executions accumulated.
    pub count: u64,
}

impl PhaseTotal {
    /// Mean duration per execution; zero when never executed.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_nanos(self.total.as_nanos().checked_div(self.count).unwrap_or(0))
    }
}

/// Named phase timers with deterministic iteration order.
///
/// # Examples
///
/// ```
/// use zssd_metrics::PhaseTimers;
/// use zssd_types::SimDuration;
///
/// let mut timers = PhaseTimers::new();
/// timers.add("gc_erase", SimDuration::from_micros(3800));
/// timers.add("gc_erase", SimDuration::from_micros(3800));
/// assert_eq!(timers.get("gc_erase").count, 2);
/// assert_eq!(timers.get("gc_erase").mean(), SimDuration::from_micros(3800));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimers {
    phases: BTreeMap<&'static str, PhaseTotal>,
}

impl PhaseTimers {
    /// Creates an empty set of timers.
    pub fn new() -> Self {
        PhaseTimers::default()
    }

    /// Accumulates one execution of `name` lasting `elapsed`.
    pub fn add(&mut self, name: &'static str, elapsed: SimDuration) {
        let entry = self.phases.entry(name).or_default();
        entry.total += elapsed;
        entry.count += 1;
    }

    /// Totals for `name`; all-zero if the phase never ran.
    pub fn get(&self, name: &str) -> PhaseTotal {
        self.phases.get(name).copied().unwrap_or_default()
    }

    /// Number of distinct phases observed.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phase has been timed.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates `(name, totals)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, PhaseTotal)> + '_ {
        self.phases.iter().map(|(&name, &total)| (name, total))
    }

    /// Accumulates every phase of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimers) {
        for (name, total) in other.iter() {
            let entry = self.phases.entry(name).or_default();
            entry.total += total.total;
            entry.count += total.count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_orders_and_merges() {
        let mut a = CounterRegistry::new();
        a.add("zeta", 1);
        a.add("alpha", 2);
        let mut b = CounterRegistry::new();
        b.add("alpha", 3);
        b.incr("mid");
        a.merge(&b);
        let entries: Vec<(&str, u64)> = a.iter().collect();
        assert_eq!(entries, vec![("alpha", 5), ("mid", 1), ("zeta", 1)]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(CounterRegistry::new().is_empty());
    }

    #[test]
    fn phase_timers_accumulate_and_average() {
        let mut timers = PhaseTimers::new();
        timers.add("relocate", SimDuration::from_micros(10));
        timers.add("relocate", SimDuration::from_micros(30));
        timers.add("erase", SimDuration::from_micros(5));
        let relocate = timers.get("relocate");
        assert_eq!(relocate.total, SimDuration::from_micros(40));
        assert_eq!(relocate.count, 2);
        assert_eq!(relocate.mean(), SimDuration::from_micros(20));
        assert_eq!(timers.get("nothing"), PhaseTotal::default());
        assert_eq!(PhaseTotal::default().mean(), SimDuration::ZERO);

        let mut merged = PhaseTimers::new();
        merged.add("erase", SimDuration::from_micros(5));
        merged.merge(&timers);
        assert_eq!(merged.get("erase").count, 2);
        assert_eq!(merged.get("relocate").total, SimDuration::from_micros(40));
        let names: Vec<&str> = merged.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["erase", "relocate"], "deterministic order");
        assert_eq!(merged.len(), 2);
        assert!(!merged.is_empty());
    }
}
