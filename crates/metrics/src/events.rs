//! Typed simulator events and the zero-cost-when-disabled sink.
//!
//! The observability layer (DESIGN.md §13) threads an [`EventSink`]
//! through the simulator's hot paths. When tracing is off the sink is
//! `None` and every emission site reduces to a single branch on an
//! always-false flag — no allocation, no formatting, no clock reads.
//! When tracing is on, each site records a small `Copy` payload tagged
//! with its simulated timestamp and a global sequence number, so the
//! full causal order of a run can be replayed, filtered, or exported.
//!
//! Determinism: events carry only simulated time and typed payloads —
//! never wall-clock time or addresses of host memory — so the event
//! stream of a run is a pure function of (config, trace, seed) and is
//! byte-identical across `ZSSD_THREADS` settings when exported.

use core::fmt;

use zssd_types::{Lpn, Ppn, SimDuration, SimTime};

/// Which injected NAND fault a [`Event::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A program-status failure; the target page went bad.
    Program,
    /// An erase failure; the block survived unchanged.
    Erase,
    /// An uncorrectable-ECC read that was resolved by a retry.
    ReadRetry,
}

impl FaultEvent {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultEvent::Program => "program",
            FaultEvent::Erase => "erase",
            FaultEvent::ReadRetry => "read_retry",
        }
    }
}

/// One typed simulator event.
///
/// Block-granularity payloads carry raw block indexes (`u64`) rather
/// than the flash crate's `BlockId` — this crate sits below `zssd-flash`
/// in the dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A host write completed (any path: program, revive, or dedup).
    HostWrite {
        /// Logical page written.
        lpn: Lpn,
        /// End-to-end request latency.
        latency: SimDuration,
    },
    /// A host read completed.
    HostRead {
        /// Logical page read.
        lpn: Lpn,
        /// End-to-end request latency.
        latency: SimDuration,
    },
    /// A dead-value-pool hit revived a zombie page in place.
    Revive {
        /// Logical page whose write was short-circuited.
        lpn: Lpn,
        /// The garbage page flipped back to valid.
        ppn: Ppn,
    },
    /// A dedup hit added a reference to an already-stored value.
    DedupHit {
        /// Logical page whose write was deduplicated.
        lpn: Lpn,
        /// The live page now shared.
        ppn: Ppn,
    },
    /// A GC pass started on a plane.
    GcStart {
        /// The plane collected.
        plane: u64,
        /// Whether this was the emergency (no-free-block) path.
        emergency: bool,
    },
    /// GC chose a victim block.
    GcVictim {
        /// The victim block index.
        block: u64,
        /// Valid pages that must be relocated.
        valid: u32,
        /// Invalid (garbage) pages reclaimed by the erase.
        invalid: u32,
    },
    /// GC relocated one valid page out of the victim.
    GcRelocate {
        /// Source page in the victim block.
        src: Ppn,
        /// Destination page.
        dest: Ppn,
    },
    /// GC erased the victim block.
    GcErase {
        /// The erased block index.
        block: u64,
    },
    /// A read-retry scrub relocated data off a suspect page.
    Scrub {
        /// The suspect source page.
        src: Ppn,
        /// The fresh destination page.
        dest: Ppn,
    },
    /// An injected NAND fault fired.
    Fault {
        /// Which operation failed.
        kind: FaultEvent,
        /// The page (program/read) or block (erase) index involved.
        unit: u64,
    },
    /// A block was permanently retired after repeated erase failures.
    Retire {
        /// The retired block index.
        block: u64,
    },
}

impl Event {
    /// Stable snake_case kind tag used by the JSON and CSV exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::HostWrite { .. } => "host_write",
            Event::HostRead { .. } => "host_read",
            Event::Revive { .. } => "revive",
            Event::DedupHit { .. } => "dedup_hit",
            Event::GcStart { .. } => "gc_start",
            Event::GcVictim { .. } => "gc_victim",
            Event::GcRelocate { .. } => "gc_relocate",
            Event::GcErase { .. } => "gc_erase",
            Event::Scrub { .. } => "scrub",
            Event::Fault { .. } => "fault",
            Event::Retire { .. } => "retire",
        }
    }

    /// The event's payload as ordered `(name, value)` pairs — the
    /// single source of truth both exporters render from, so JSON and
    /// CSV can never disagree on field names.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            Event::HostWrite { lpn, latency } | Event::HostRead { lpn, latency } => {
                vec![("lpn", lpn.index()), ("latency_ns", latency.as_nanos())]
            }
            Event::Revive { lpn, ppn } | Event::DedupHit { lpn, ppn } => {
                vec![("lpn", lpn.index()), ("ppn", ppn.index())]
            }
            Event::GcStart { plane, emergency } => {
                vec![("plane", plane), ("emergency", u64::from(emergency))]
            }
            Event::GcVictim {
                block,
                valid,
                invalid,
            } => vec![
                ("block", block),
                ("valid", u64::from(valid)),
                ("invalid", u64::from(invalid)),
            ],
            Event::GcRelocate { src, dest } | Event::Scrub { src, dest } => {
                vec![("src", src.index()), ("dest", dest.index())]
            }
            Event::GcErase { block } | Event::Retire { block } => vec![("block", block)],
            Event::Fault { kind: _, unit } => vec![("unit", unit)],
        }
    }
}

/// An [`Event`] tagged with its simulated timestamp and a run-global
/// sequence number (total order, even among same-instant events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Position in the run's total event order, starting at 0.
    pub seq: u64,
    /// Simulated time the event occurred.
    pub at: SimTime,
    /// The typed payload.
    pub event: Event,
}

impl fmt::Display for TracedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>8}  {:>14}  {:<11}",
            self.seq,
            self.at,
            self.event.kind()
        )?;
        for (name, value) in self.event.fields() {
            write!(f, "  {name}={value}")?;
        }
        Ok(())
    }
}

/// Destination for simulator events.
///
/// Emission sites guard on [`enabled`](EventSink::enabled) before
/// assembling payloads, so a disabled sink costs one predictable
/// branch per site.
pub trait EventSink {
    /// Whether emissions will be recorded; `false` lets hot paths skip
    /// payload assembly entirely.
    fn enabled(&self) -> bool;
    /// Records one event at simulated time `at`.
    fn emit(&mut self, at: SimTime, event: Event);
}

/// The disabled sink: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&mut self, _at: SimTime, _event: Event) {}
}

/// An in-memory, sequence-numbered event recorder.
///
/// # Examples
///
/// ```
/// use zssd_metrics::{Event, EventLog, EventSink};
/// use zssd_types::{Lpn, SimDuration, SimTime};
///
/// let mut log = EventLog::new();
/// log.emit(SimTime::from_nanos(5), Event::HostWrite {
///     lpn: Lpn::new(1),
///     latency: SimDuration::from_micros(100),
/// });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.events()[0].seq, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<TracedEvent>,
    next_seq: u64,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// The last `n` events (fewer if the log is shorter).
    pub fn tail(&self, n: usize) -> &[TracedEvent] {
        let start = self.events.len().saturating_sub(n);
        &self.events[start..]
    }

    /// Consumes the log, returning its events.
    pub fn into_events(self) -> Vec<TracedEvent> {
        self.events
    }

    /// Clears all events and resets the sequence counter (used when a
    /// preconditioning phase should not appear in the measured trace).
    pub fn clear(&mut self) {
        self.events.clear();
        self.next_seq = 0;
    }
}

impl EventSink for EventLog {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, at: SimTime, event: Event) {
        self.events.push(TracedEvent {
            seq: self.next_seq,
            at,
            event,
        });
        self.next_seq += 1;
    }
}

impl EventSink for Option<EventLog> {
    fn enabled(&self) -> bool {
        self.is_some()
    }

    fn emit(&mut self, at: SimTime, event: Event) {
        if let Some(log) = self {
            log.emit(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_numbers_events_in_order() {
        let mut log = EventLog::new();
        log.emit(SimTime::from_nanos(1), Event::GcErase { block: 3 });
        log.emit(SimTime::from_nanos(1), Event::Retire { block: 3 });
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(log.tail(1)[0].event, Event::Retire { block: 3 });
        assert_eq!(log.tail(10).len(), 2);
        log.clear();
        assert!(log.is_empty());
        log.emit(SimTime::ZERO, Event::GcErase { block: 0 });
        assert_eq!(log.events()[0].seq, 0, "clear resets sequencing");
    }

    #[test]
    fn null_and_option_sinks_gate_on_enabled() {
        let mut null = NullSink;
        assert!(!null.enabled());
        null.emit(SimTime::ZERO, Event::GcErase { block: 0 });

        let mut off: Option<EventLog> = None;
        assert!(!off.enabled());
        off.emit(SimTime::ZERO, Event::GcErase { block: 0 });
        assert!(off.is_none());

        let mut on = Some(EventLog::new());
        assert!(on.enabled());
        on.emit(SimTime::ZERO, Event::GcErase { block: 0 });
        assert_eq!(on.as_ref().map(EventLog::len), Some(1));
    }

    #[test]
    fn kinds_and_fields_cover_every_variant() {
        let events = [
            Event::HostWrite {
                lpn: Lpn::new(1),
                latency: SimDuration::from_nanos(9),
            },
            Event::HostRead {
                lpn: Lpn::new(2),
                latency: SimDuration::from_nanos(8),
            },
            Event::Revive {
                lpn: Lpn::new(3),
                ppn: Ppn::new(30),
            },
            Event::DedupHit {
                lpn: Lpn::new(4),
                ppn: Ppn::new(40),
            },
            Event::GcStart {
                plane: 0,
                emergency: true,
            },
            Event::GcVictim {
                block: 5,
                valid: 1,
                invalid: 3,
            },
            Event::GcRelocate {
                src: Ppn::new(50),
                dest: Ppn::new(51),
            },
            Event::GcErase { block: 5 },
            Event::Scrub {
                src: Ppn::new(60),
                dest: Ppn::new(61),
            },
            Event::Fault {
                kind: FaultEvent::Program,
                unit: 70,
            },
            Event::Retire { block: 7 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "kind tags are distinct");
        for event in &events {
            assert!(!event.fields().is_empty(), "{} has fields", event.kind());
        }
        assert_eq!(FaultEvent::ReadRetry.name(), "read_retry");
        assert_eq!(FaultEvent::Erase.name(), "erase");
    }

    #[test]
    fn traced_event_display_lists_fields() {
        let traced = TracedEvent {
            seq: 7,
            at: SimTime::from_nanos(1000),
            event: Event::GcVictim {
                block: 2,
                valid: 1,
                invalid: 3,
            },
        };
        let text = traced.to_string();
        assert!(text.contains("gc_victim"));
        assert!(text.contains("block=2"));
        assert!(text.contains("invalid=3"));
    }
}
