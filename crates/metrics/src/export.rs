//! Deterministic JSON/CSV export of metrics and events.
//!
//! The workspace is dependency-free, so this module carries a minimal
//! JSON value type with a renderer and a recursive-descent parser —
//! enough to write export files and to round-trip them in tests.
//! Object keys keep their insertion order (a `Vec` of pairs, not a
//! hash map), so rendering is a pure function of the value and the
//! same report always serializes to the same bytes.

use core::fmt;

use zssd_types::{SimDuration, SimTime};

use crate::events::TracedEvent;
use crate::timeline::WindowStat;

/// A JSON value with deterministic rendering.
///
/// # Examples
///
/// ```
/// use zssd_metrics::Json;
/// let value = Json::Obj(vec![
///     ("name".into(), Json::Str("mail".into())),
///     ("count".into(), Json::U64(3)),
/// ]);
/// let text = value.to_string();
/// assert_eq!(text, r#"{"name":"mail","count":3}"#);
/// assert_eq!(Json::parse(&text).unwrap(), value);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the simulator's counters and times).
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// Non-negative integers without fraction or exponent parse as
    /// [`Json::U64`]; every other number parses as [`Json::F64`].
    ///
    /// # Errors
    ///
    /// Returns a description and byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            // Rust's shortest-round-trip float formatting is itself
            // deterministic; normalize the non-finite values JSON
            // cannot carry.
            Json::F64(v) if v.is_finite() => write!(f, "{v}"),
            Json::F64(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            core::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if integral && !text.starts_with('-') {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("malformed number"))
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Serializes a windowed time series (the GC-episode view) with its
/// window length, so [`windows_from_json`] can reconstruct it exactly.
pub fn windows_to_json(window: SimDuration, windows: &[WindowStat]) -> Json {
    Json::Obj(vec![
        ("window_ns".into(), Json::U64(window.as_nanos())),
        (
            "windows".into(),
            Json::Arr(
                windows
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("start_ns".into(), Json::U64(w.start.as_nanos())),
                            ("count".into(), Json::U64(w.count)),
                            ("mean_ns".into(), Json::U64(w.mean.as_nanos())),
                            ("max_ns".into(), Json::U64(w.max.as_nanos())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Reconstructs a windowed time series serialized by
/// [`windows_to_json`]. Returns `None` if the value does not have that
/// shape.
pub fn windows_from_json(value: &Json) -> Option<(SimDuration, Vec<WindowStat>)> {
    let window = SimDuration::from_nanos(value.get("window_ns")?.as_u64()?);
    let windows = value
        .get("windows")?
        .as_arr()?
        .iter()
        .map(|w| {
            Some(WindowStat {
                start: SimTime::from_nanos(w.get("start_ns")?.as_u64()?),
                count: w.get("count")?.as_u64()?,
                mean: SimDuration::from_nanos(w.get("mean_ns")?.as_u64()?),
                max: SimDuration::from_nanos(w.get("max_ns")?.as_u64()?),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some((window, windows))
}

/// Renders a windowed time series as CSV
/// (`start_ns,count,mean_ns,max_ns`).
pub fn windows_to_csv(windows: &[WindowStat]) -> String {
    let mut out = String::from("start_ns,count,mean_ns,max_ns\n");
    for w in windows {
        out.push_str(&format!(
            "{},{},{},{}\n",
            w.start.as_nanos(),
            w.count,
            w.mean.as_nanos(),
            w.max.as_nanos()
        ));
    }
    out
}

/// Serializes an event stream: one object per event with `seq`,
/// `at_ns`, `kind`, and the payload fields of
/// [`Event::fields`](crate::Event::fields).
pub fn events_to_json(events: &[TracedEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("seq".into(), Json::U64(e.seq)),
                    ("at_ns".into(), Json::U64(e.at.as_nanos())),
                    ("kind".into(), Json::Str(e.event.kind().into())),
                ];
                if let crate::Event::Fault { kind, .. } = e.event {
                    pairs.push(("fault".into(), Json::Str(kind.name().into())));
                }
                for (name, value) in e.event.fields() {
                    pairs.push((name.into(), Json::U64(value)));
                }
                Json::Obj(pairs)
            })
            .collect(),
    )
}

/// Renders an event stream as CSV (`seq,at_ns,kind,fields`), packing
/// the per-kind payload into a `;`-joined `name=value` list so all
/// kinds share one header.
pub fn events_to_csv(events: &[TracedEvent]) -> String {
    let mut out = String::from("seq,at_ns,kind,fields\n");
    for e in events {
        let mut fields: Vec<String> = Vec::new();
        if let crate::Event::Fault { kind, .. } = e.event {
            fields.push(format!("fault={}", kind.name()));
        }
        fields.extend(
            e.event
                .fields()
                .into_iter()
                .map(|(name, value)| format!("{name}={value}")),
        );
        out.push_str(&format!(
            "{},{},{},{}\n",
            e.seq,
            e.at.as_nanos(),
            e.event.kind(),
            fields.join(";")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, FaultEvent};
    use zssd_types::Lpn;

    #[test]
    fn render_and_parse_round_trip() {
        let value = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("int".into(), Json::U64(u64::MAX)),
            ("float".into(), Json::F64(0.125)),
            ("text".into(), Json::Str("a \"b\"\\\n\tc".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::U64(1), Json::Bool(false), Json::Obj(vec![])]),
            ),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).expect("parses"), value);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let value =
            Json::parse(" { \"a\" : [ 1 , -2.5 ] , \"b\" : \"\\u0041\\n\" } ").expect("parses");
        assert_eq!(value.get("a").unwrap().as_arr().unwrap()[0], Json::U64(1));
        assert_eq!(
            value.get("a").unwrap().as_arr().unwrap()[1],
            Json::F64(-2.5)
        );
        assert_eq!(value.get("b").unwrap().as_str(), Some("A\n"));
        assert_eq!(value.get("b").unwrap().as_f64(), None);
        assert_eq!(Json::U64(3).as_f64(), Some(3.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("[1,}").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn windows_round_trip_exactly() {
        let windows = vec![
            WindowStat {
                start: SimTime::ZERO,
                count: 2,
                mean: SimDuration::from_micros(10),
                max: SimDuration::from_micros(30),
            },
            WindowStat {
                start: SimTime::from_nanos(250_000_000),
                count: 0,
                mean: SimDuration::ZERO,
                max: SimDuration::ZERO,
            },
        ];
        let window = SimDuration::from_millis(250);
        let json = windows_to_json(window, &windows);
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("parses");
        let (rt_window, rt_windows) = windows_from_json(&parsed).expect("shape");
        assert_eq!(rt_window, window);
        assert_eq!(rt_windows, windows);
        let csv = windows_to_csv(&windows);
        assert!(csv.starts_with("start_ns,count,mean_ns,max_ns\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn events_export_includes_kind_and_fields() {
        let events = vec![
            TracedEvent {
                seq: 0,
                at: SimTime::from_nanos(10),
                event: Event::HostWrite {
                    lpn: Lpn::new(7),
                    latency: SimDuration::from_nanos(99),
                },
            },
            TracedEvent {
                seq: 1,
                at: SimTime::from_nanos(20),
                event: Event::Fault {
                    kind: FaultEvent::Erase,
                    unit: 3,
                },
            },
        ];
        let json = events_to_json(&events);
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("parses");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr[0].get("kind").unwrap().as_str(), Some("host_write"));
        assert_eq!(arr[0].get("lpn").unwrap().as_u64(), Some(7));
        assert_eq!(arr[0].get("latency_ns").unwrap().as_u64(), Some(99));
        assert_eq!(arr[1].get("fault").unwrap().as_str(), Some("erase"));
        assert_eq!(arr[1].get("unit").unwrap().as_u64(), Some(3));

        let csv = events_to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seq,at_ns,kind,fields");
        assert_eq!(lines[1], "0,10,host_write,lpn=7;latency_ns=99");
        assert_eq!(lines[2], "1,20,fault,fault=erase;unit=3");
    }
}
