//! Fixed-width integer histograms.

use core::fmt;

/// A histogram over `u64` samples with fixed-width buckets and an
/// overflow bucket.
///
/// Used by the harness to render distribution figures as text (e.g. the
/// per-popularity-degree miss breakdown of Fig 6).
///
/// # Examples
///
/// ```
/// use zssd_metrics::Histogram;
/// let mut h = Histogram::new(10, 5); // 5 buckets of width 10
/// h.observe(3);
/// h.observe(27);
/// h.observe(999); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.overflow_count(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `buckets` is zero.
    pub fn new(width: u64, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be nonzero");
        assert!(buckets > 0, "bucket count must be nonzero");
        Histogram {
            width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, sample: u64) {
        let idx = (sample / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += u128::from(sample);
    }

    /// Number of samples in bucket `idx` (covering
    /// `[idx·width, (idx+1)·width)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of samples beyond the last bucket.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all observed samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Number of buckets (excluding overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates `(bucket_lower_bound, count)` pairs, excluding overflow.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.width, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (lo, count) in self.iter() {
            writeln!(f, "[{:>8}, {:>8}) {}", lo, lo + self.width, count)?;
        }
        write!(f, "overflow {}", self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_samples() {
        let mut h = Histogram::new(5, 3);
        for v in 0..15 {
            h.observe(v);
        }
        assert_eq!(h.bucket_count(0), 5);
        assert_eq!(h.bucket_count(1), 5);
        assert_eq!(h.bucket_count(2), 5);
        assert_eq!(h.overflow_count(), 0);
        h.observe(15);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.total(), 16);
    }

    #[test]
    fn mean_tracks_raw_samples() {
        let mut h = Histogram::new(100, 2);
        h.observe(10);
        h.observe(30);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(Histogram::new(1, 1).mean(), 0.0);
    }

    #[test]
    fn iter_yields_lower_bounds() {
        let h = Histogram::new(4, 3);
        let bounds: Vec<u64> = h.iter().map(|(lo, _)| lo).collect();
        assert_eq!(bounds, vec![0, 4, 8]);
        assert_eq!(h.num_buckets(), 3);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Histogram::new(0, 1);
    }

    #[test]
    fn display_lists_every_bucket() {
        let mut h = Histogram::new(2, 2);
        h.observe(1);
        let text = h.to_string();
        assert!(text.contains("overflow 0"));
        assert!(text.lines().count() == 3);
    }
}
