//! Measurement utilities for the `zombie-ssd` simulator.
//!
//! The experiment harness reports exactly what the paper reports:
//! request counts, erase counts, mean latency, and tail (99th
//! percentile) latency, plus the CDF/share curves of the
//! characterization section. This crate provides those primitives:
//!
//! * [`Counter`] — a monotone event counter,
//! * [`LatencyRecorder`] — exact mean/percentile statistics over
//!   recorded request latencies,
//! * [`Histogram`] — fixed-width bucketing for distribution displays,
//! * [`Cdf`] — empirical cumulative distribution over integer samples
//!   (Fig 2-style "fraction of values with ≤ k invalidations"),
//! * [`ShareCurve`] — Lorenz-style "top x% of values account for y% of
//!   events" curves (Fig 3-style, values sorted by popularity).
//!
//! On top of those sits the run-wide observability layer (DESIGN.md
//! §13):
//!
//! * [`Event`] / [`EventSink`] / [`EventLog`] — typed, timestamped,
//!   zero-cost-when-disabled event tracing through the simulator's hot
//!   paths,
//! * [`CounterRegistry`] / [`PhaseTimers`] — deterministic name → value
//!   counter maps and per-phase simulated-time accumulators,
//! * [`Json`] plus the `*_to_json` / `*_to_csv` exporters — dependency
//!   free, byte-deterministic export of reports, windowed time series,
//!   and event streams.
//!
//! # Examples
//!
//! ```
//! use zssd_metrics::LatencyRecorder;
//! use zssd_types::SimDuration;
//!
//! let mut lat = LatencyRecorder::new();
//! for us in [100u64, 200, 300, 400] {
//!     lat.record(SimDuration::from_micros(us));
//! }
//! assert_eq!(lat.mean().as_nanos(), 250_000);
//! assert_eq!(lat.percentile(0.99).as_nanos(), 400_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod counter;
mod events;
mod export;
mod histogram;
mod latency;
mod registry;
mod share;
mod timeline;

pub use cdf::Cdf;
pub use counter::{reduction_pct, Counter};
pub use events::{Event, EventLog, EventSink, FaultEvent, NullSink, TracedEvent};
pub use export::{
    events_to_csv, events_to_json, windows_from_json, windows_to_csv, windows_to_json, Json,
    JsonParseError,
};
pub use histogram::Histogram;
pub use latency::{LatencyRecorder, LatencySummary};
pub use registry::{CounterRegistry, PhaseTimers, PhaseTotal};
pub use share::{ShareCurve, SharePoint};
pub use timeline::{Timeline, WindowStat};
