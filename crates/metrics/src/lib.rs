//! Measurement utilities for the `zombie-ssd` simulator.
//!
//! The experiment harness reports exactly what the paper reports:
//! request counts, erase counts, mean latency, and tail (99th
//! percentile) latency, plus the CDF/share curves of the
//! characterization section. This crate provides those primitives:
//!
//! * [`Counter`] — a monotone event counter,
//! * [`LatencyRecorder`] — exact mean/percentile statistics over
//!   recorded request latencies,
//! * [`Histogram`] — fixed-width bucketing for distribution displays,
//! * [`Cdf`] — empirical cumulative distribution over integer samples
//!   (Fig 2-style "fraction of values with ≤ k invalidations"),
//! * [`ShareCurve`] — Lorenz-style "top x% of values account for y% of
//!   events" curves (Fig 3-style, values sorted by popularity).
//!
//! # Examples
//!
//! ```
//! use zssd_metrics::LatencyRecorder;
//! use zssd_types::SimDuration;
//!
//! let mut lat = LatencyRecorder::new();
//! for us in [100u64, 200, 300, 400] {
//!     lat.record(SimDuration::from_micros(us));
//! }
//! assert_eq!(lat.mean().as_nanos(), 250_000);
//! assert_eq!(lat.percentile(0.99).as_nanos(), 400_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod counter;
mod histogram;
mod latency;
mod share;
mod timeline;

pub use cdf::Cdf;
pub use counter::{reduction_pct, Counter};
pub use histogram::Histogram;
pub use latency::{LatencyRecorder, LatencySummary};
pub use share::{ShareCurve, SharePoint};
pub use timeline::{Timeline, WindowStat};
