//! Latency over simulated time: the "episode" view.
//!
//! The paper motivates the dead-value pool partly through performance
//! *consistency*: GC "imposes frequent short episodes of high
//! latencies during the operation time". A [`Timeline`] records
//! (arrival, latency) pairs and aggregates them into fixed wall-clock
//! windows so those episodes are visible.

use zssd_types::{SimDuration, SimTime};

/// Aggregate of one wall-clock window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStat {
    /// Window start time.
    pub start: SimTime,
    /// Requests arriving in the window.
    pub count: u64,
    /// Mean latency of those requests.
    pub mean: SimDuration,
    /// Worst latency of those requests.
    pub max: SimDuration,
}

/// A time-ordered record of per-request latencies.
///
/// # Examples
///
/// ```
/// use zssd_metrics::Timeline;
/// use zssd_types::{SimDuration, SimTime};
///
/// let mut tl = Timeline::new();
/// tl.record(SimTime::from_nanos(100), SimDuration::from_micros(10));
/// tl.record(SimTime::from_nanos(1_500), SimDuration::from_micros(30));
/// let windows = tl.windows(SimDuration::from_nanos(1_000));
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[1].max, SimDuration::from_micros(30));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    samples: Vec<(SimTime, SimDuration)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records the latency of a request that arrived at `at`.
    pub fn record(&mut self, at: SimTime, latency: SimDuration) {
        self.samples.push((at, latency));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Aggregates into consecutive windows of length `window`,
    /// covering `[0, last arrival]`. Empty windows are included with
    /// zero counts so episode gaps stay visible.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn windows(&self, window: SimDuration) -> Vec<WindowStat> {
        assert!(window.as_nanos() > 0, "window must be nonzero");
        let Some(last) = self.samples.iter().map(|&(at, _)| at).max() else {
            return Vec::new();
        };
        let n = (last.as_nanos() / window.as_nanos() + 1) as usize;
        let mut counts = vec![0u64; n];
        let mut sums = vec![0u128; n];
        let mut maxes = vec![0u64; n];
        for &(at, latency) in &self.samples {
            let idx = (at.as_nanos() / window.as_nanos()) as usize;
            counts[idx] += 1;
            sums[idx] += u128::from(latency.as_nanos());
            maxes[idx] = maxes[idx].max(latency.as_nanos());
        }
        (0..n)
            .map(|i| WindowStat {
                start: SimTime::from_nanos(i as u64 * window.as_nanos()),
                count: counts[i],
                mean: if counts[i] == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_nanos((sums[i] / u128::from(counts[i])) as u64)
                },
                max: SimDuration::from_nanos(maxes[i]),
            })
            .collect()
    }

    /// Fraction of windows whose worst latency exceeds `threshold` —
    /// a scalar "episode frequency" for comparisons.
    pub fn episode_fraction(&self, window: SimDuration, threshold: SimDuration) -> f64 {
        let windows = self.windows(window);
        if windows.is_empty() {
            return 0.0;
        }
        let episodes = windows.iter().filter(|w| w.max > threshold).count();
        episodes as f64 / windows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn windows_partition_by_arrival_time() {
        let mut tl = Timeline::new();
        tl.record(SimTime::from_nanos(0), us(1));
        tl.record(SimTime::from_nanos(999), us(3));
        tl.record(SimTime::from_nanos(2_500), us(7));
        let w = tl.windows(SimDuration::from_nanos(1_000));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].count, 2);
        assert_eq!(w[0].mean, us(2));
        assert_eq!(w[0].max, us(3));
        assert_eq!(w[1].count, 0);
        assert_eq!(w[1].max, SimDuration::ZERO);
        assert_eq!(w[2].count, 1);
        assert_eq!(w[2].mean, us(7));
    }

    #[test]
    fn episode_fraction_counts_bad_windows() {
        let mut tl = Timeline::new();
        for i in 0..10u64 {
            let latency = if i == 3 || i == 7 { us(100) } else { us(1) };
            tl.record(SimTime::from_nanos(i * 1_000), latency);
        }
        let frac = tl.episode_fraction(SimDuration::from_nanos(1_000), us(50));
        assert!((frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_benign() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert!(tl.windows(us(1)).is_empty());
        assert_eq!(tl.episode_fraction(us(1), us(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_rejected() {
        let mut tl = Timeline::new();
        tl.record(SimTime::ZERO, us(1));
        let _ = tl.windows(SimDuration::ZERO);
    }
}
