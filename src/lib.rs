//! `zombie-ssd` — a reproduction of *Reviving Zombie Pages on SSDs*
//! (Elyasi, Sivasubramaniam, Kandemir, Das — IISWC 2018).
//!
//! This facade crate re-exports the whole workspace so examples,
//! integration tests, and downstream users need a single dependency:
//!
//! * [`types`] — shared identifiers, fingerprints, clocks,
//! * [`metrics`] — counters, latency recorders, CDF/share curves,
//! * [`flash`] — the NAND array model (geometry, timing, page state),
//! * [`ftl`] — the page-mapped FTL, GC, and the [`ftl::Ssd`] device,
//! * [`core`] — the dead-value pools (MQ, LRU, Ideal, LX-SSD),
//! * [`dedup`] — the CAFTL-style content-addressed store,
//! * [`trace`] — synthetic content traces (six paper workloads),
//! * [`analysis`] — value life-cycle characterization (Figs 1-6),
//! * [`oracle`] — the differential-testing harness: executable
//!   specification, trace fuzzer, shrinker, regression corpus.
//!
//! # Quickstart
//!
//! ```
//! use zombie_ssd::core::SystemKind;
//! use zombie_ssd::ftl::{Ssd, SsdConfig};
//! use zombie_ssd::trace::{SyntheticTrace, WorkloadProfile};
//!
//! // A small drive running the paper's proposal on a mail-like trace.
//! let profile = WorkloadProfile::mail().scaled(0.005);
//! let trace = SyntheticTrace::generate(&profile, 0xB10B);
//! let config = SsdConfig::for_footprint(profile.lpn_space)
//!     .with_system(SystemKind::MqDvp { entries: 4096 });
//! let report = Ssd::new(config)?.run_trace(trace.records())?;
//! assert!(report.host_programs <= report.host_writes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use zssd_analysis as analysis;
pub use zssd_core as core;
pub use zssd_dedup as dedup;
pub use zssd_flash as flash;
pub use zssd_ftl as ftl;
pub use zssd_metrics as metrics;
pub use zssd_oracle as oracle;
pub use zssd_trace as trace;
pub use zssd_types as types;
